// Cost-model bake-off + serve-path refresh demo (docs/cost_models.md).
//
// Arm 1 — offline bake-off, per workload (job, job_complex, tpch): generate
// the candidate-plan sweep for every query (costmodel::GenerateCandidatePlans,
// Bao hint sets + Lero selectivity perturbations), execute every candidate
// under deterministic replay to get ground-truth latencies, then score the
// analytic cost model (calibrated on the training split) against the
// plan-featurized MLP (trained on the same split) on held-out queries:
// median/p95 q-error, plus the downstream metric that actually matters —
// plan-quality regret when each model ranks the candidate sweep.
//
// Arm 2 — the production loop, end to end: a kLqo QueryServer with an
// attached costmodel::OnlineRefresher harvests per-plan actuals from live
// traffic into the replay buffer (mirrored to a JSONL trace), retrains a
// candidate, shadow-scores it against the analytic incumbent and promotes it
// through the HotSwapSlot; then the gate is shown refusing a deliberately
// poisoned candidate, the trace mirror is round-tripped through the hardened
// ingester (3 corrupt lines injected, skipped and counted), refresh
// determinism is checked 1-worker-vs-N (bit-identical weight digests), and
// a drift storm is fed to the detector until it trips the serving breaker.
//
// Emits one JSON document (stdout, or the file given as argv[1]); the
// committed artifact is BENCH_costmodel.json at the repo root, floored by
// tests/check_bench_gates.sh. --quick restricts to the job workload (the
// `bench` ctest label runs that mode).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "costmodel/cost_model.h"
#include "costmodel/features.h"
#include "costmodel/guided_optimizer.h"
#include "costmodel/learned_model.h"
#include "costmodel/online_refresh.h"
#include "costmodel/trace_ingest.h"
#include "serve/query_server.h"
#include "util/statistics.h"

namespace {

using namespace lqolab;
using costmodel::CostSample;
using costmodel::LearnedCostModel;
using costmodel::OnlineRefresher;
using costmodel::PlanCandidate;
using costmodel::PlanCostModel;
using costmodel::PlanFeaturizer;
using costmodel::QError;
using costmodel::RefreshOutcome;

/// Ground truth for one query's candidate sweep.
struct QuerySweep {
  const query::Query* query = nullptr;
  std::vector<CostSample> samples;  // one per candidate, same order
  size_t best = 0;                  // argmin actual_ns
};

struct ModelScore {
  double median_qerror = 0.0;
  double p95_qerror = 0.0;
  double mean_regret = 0.0;
  double p95_regret = 0.0;
  int64_t picked_best = 0;
};

struct WorkloadResult {
  std::string workload;
  int64_t queries = 0;
  int64_t samples = 0;
  int64_t train_samples = 0;
  int64_t test_samples = 0;
  double train_loss = 0.0;
  uint64_t weights_digest = 0;
  ModelScore analytic;
  ModelScore learned;
  bool learned_beats_analytic = false;
};

/// Q-error over every test-sweep sample + regret over every test sweep.
ModelScore Score(const PlanCostModel& model,
                 const std::vector<const QuerySweep*>& test) {
  ModelScore score;
  std::vector<double> qerrors;
  std::vector<double> regrets;
  for (const QuerySweep* sweep : test) {
    size_t pick = 0;
    double pick_ns = 0.0;
    for (size_t i = 0; i < sweep->samples.size(); ++i) {
      const CostSample& s = sweep->samples[i];
      const double predicted = model.PredictSampleNs(s);
      qerrors.push_back(QError(predicted, static_cast<double>(s.actual_ns)));
      if (i == 0 || predicted < pick_ns) {
        pick = i;
        pick_ns = predicted;
      }
    }
    const double best_ns =
        static_cast<double>(sweep->samples[sweep->best].actual_ns);
    const double picked_ns =
        static_cast<double>(sweep->samples[pick].actual_ns);
    const double regret = best_ns > 0.0 ? picked_ns / best_ns : 1.0;
    regrets.push_back(regret);
    if (picked_ns <= best_ns) ++score.picked_best;
  }
  score.median_qerror = util::Percentile(qerrors, 50.0);
  score.p95_qerror = util::Percentile(qerrors, 95.0);
  score.mean_regret = util::Mean(regrets);
  score.p95_regret = util::Percentile(regrets, 95.0);
  return score;
}

WorkloadResult RunBakeoff(const std::string& workload) {
  WorkloadResult result;
  result.workload = workload;
  auto db = bench::MakeWorkloadDatabase(workload, 0.25);
  const std::vector<query::Query> queries =
      bench::LoadWorkloadQueries(workload, db->schema());
  result.queries = static_cast<int64_t>(queries.size());
  const PlanFeaturizer featurizer(&db->context(), &db->planner().estimator());

  // Ground truth: execute every candidate of every query under replay
  // (salted by candidate index — each candidate gets the same cold start).
  std::vector<QuerySweep> sweeps;
  sweeps.reserve(queries.size());
  uint64_t sequence = 0;
  for (const query::Query& q : queries) {
    const std::vector<PlanCandidate> candidates =
        costmodel::GenerateCandidatePlans(db.get(), q);
    QuerySweep sweep;
    sweep.query = &q;
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      db->BeginQueryReplay(bench::kSeed, q, /*salt=*/ci);
      const engine::QueryRun run = db->ExecutePlan(q, candidates[ci].plan);
      CostSample sample;
      sample.sequence = sequence++;
      sample.query_id = q.id;
      sample.features = featurizer.Featurize(q, candidates[ci].plan);
      sample.actual_ns = run.execution_ns;
      sample.analytic_cost = db->planner().EstimatePlanCost(q, candidates[ci].plan);
      sweep.samples.push_back(std::move(sample));
      if (sweep.samples.back().actual_ns <
          sweep.samples[sweep.best].actual_ns) {
        sweep.best = sweep.samples.size() - 1;
      }
    }
    result.samples += static_cast<int64_t>(sweep.samples.size());
    sweeps.push_back(std::move(sweep));
  }

  // Even-index queries train, odd-index queries test: the held-out queries
  // are unseen, so q-error and regret measure generalization, not memory.
  std::vector<CostSample> train;
  std::vector<const QuerySweep*> test;
  for (size_t i = 0; i < sweeps.size(); ++i) {
    if (i % 2 == 0) {
      for (const CostSample& s : sweeps[i].samples) train.push_back(s);
    } else {
      test.push_back(&sweeps[i]);
    }
  }
  result.train_samples = static_cast<int64_t>(train.size());
  for (const QuerySweep* sweep : test) {
    result.test_samples += static_cast<int64_t>(sweep->samples.size());
  }

  costmodel::AnalyticCostModel analytic(&db->planner());
  analytic.Calibrate(train);
  LearnedCostModel learned(&featurizer, costmodel::LearnedModelOptions{});
  result.train_loss = learned.Train(train);
  result.weights_digest = learned.WeightsDigest();

  result.analytic = Score(analytic, test);
  result.learned = Score(learned, test);
  result.learned_beats_analytic =
      result.learned.median_qerror < result.analytic.median_qerror;
  return result;
}

// ---------------------------------------------------------------------------
// Arm 2: the serve-path production loop.

struct ServeResult {
  int64_t harvested = 0;
  bool first_refresh_promoted = false;
  double candidate_median_qerror = 0.0;
  double incumbent_median_qerror = 0.0;
  double train_loss = 0.0;
  uint64_t published_version = 0;
  uint64_t weights_digest = 0;
  int64_t post_promotion_queries = 0;
  bool post_promotion_ok = false;
  bool poisoned_candidate_rejected = false;
  int64_t trace_lines = 0;
  int64_t trace_ingested = 0;
  int64_t trace_skipped = 0;
  bool trace_round_trip = false;
  bool refresh_deterministic = false;
  int64_t drift_alarms = 0;
  bool drift_tripped_breaker = false;
};

costmodel::RefreshOptions MakeRefreshOptions(obs::TraceWriter* trace) {
  costmodel::RefreshOptions options;
  options.buffer.capacity = 4096;
  options.min_samples = 32;
  options.refresh_every = 1 << 30;  // manual Refresh() only
  options.drift_window = 32;
  options.trace = trace;
  return options;
}

serve::ServerOptions MakeServerOptions(int32_t workers,
                                       serve::ServedPlanObserver* observer) {
  serve::ServerOptions options;
  options.workers = workers;
  options.route = serve::RouteMode::kLqo;
  options.observer = observer;
  // The arm measures the refresh loop, not breaker dynamics; failures here
  // would make which queries short-circuit scheduling-dependent.
  options.breaker.failure_threshold = std::numeric_limits<int32_t>::max();
  return options;
}

/// Drives `epochs` of the workload through a kLqo server with `refresher`
/// observing; returns the served rows in future order. Struct-route Submit
/// on purpose: per-query plan-cache keys make the executed plan (and so the
/// harvested features) independent of worker scheduling, which the
/// 1-vs-N-worker determinism probe relies on. (The SQL route's
/// template-shared plans are scheduling-dependent by design — see
/// bench/serve_throughput.cpp.)
std::vector<int64_t> Harvest(engine::Database* db,
                             const std::vector<query::Query>& workload,
                             serve::QueryServer* server, int epochs) {
  (void)db;
  std::vector<std::future<serve::ServedQuery>> futures;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const query::Query& q : workload) {
      futures.push_back(server->Submit(q));
    }
  }
  std::vector<int64_t> rows;
  rows.reserve(futures.size());
  for (auto& f : futures) {
    const serve::ServedQuery served = f.get();
    rows.push_back(served.status.ok() ? served.result_rows : -1);
  }
  return rows;
}

/// One full harvest+refresh cycle at the given worker count (no trace);
/// the determinism probe.
RefreshOutcome HarvestAndRefresh(engine::Database* db,
                                 const std::vector<query::Query>& workload,
                                 int32_t workers) {
  OnlineRefresher refresher(db, MakeRefreshOptions(nullptr));
  serve::QueryServer server(db, MakeServerOptions(workers, &refresher));
  refresher.AttachServer(&server);
  Harvest(db, workload, &server, /*epochs=*/2);
  server.Drain();
  return refresher.Refresh();
}

ServeResult RunServeLoop(engine::Database* db,
                         const std::vector<query::Query>& workload,
                         const std::string& trace_path) {
  ServeResult result;

  // Determinism probe first (fresh refresher per worker count; same
  // admitted workload -> same buffer -> bit-identical retrained weights).
  const RefreshOutcome serial = HarvestAndRefresh(db, workload, /*workers=*/1);
  const RefreshOutcome parallel =
      HarvestAndRefresh(db, workload, /*workers=*/4);
  result.refresh_deterministic =
      serial.attempted && parallel.attempted &&
      serial.weights_digest == parallel.weights_digest &&
      serial.promoted == parallel.promoted;

  int64_t harvested_total = 0;
  {
    obs::TraceWriter trace(trace_path);
    OnlineRefresher refresher(db, MakeRefreshOptions(&trace));
    serve::QueryServer server(db, MakeServerOptions(4, &refresher));
    refresher.AttachServer(&server);

    // Phase 1: harvest live traffic (no model published yet -> native
    // plans; the observer sees every successful execution).
    const std::vector<int64_t> before =
        Harvest(db, workload, &server, /*epochs=*/2);
    server.Drain();
    result.harvested = refresher.buffer().size();

    // Phase 2: retrain + shadow-score + gated promotion through the
    // HotSwapSlot.
    const RefreshOutcome outcome = refresher.Refresh();
    result.first_refresh_promoted = outcome.promoted;
    result.candidate_median_qerror = outcome.candidate_median_qerror;
    result.incumbent_median_qerror = outcome.incumbent_median_qerror;
    result.train_loss = outcome.train_loss;
    result.published_version = outcome.published_version;
    result.weights_digest = outcome.weights_digest;

    // Phase 3: serve on the promoted model; answers must match the native
    // phase query-for-query (same queries, same database).
    const std::vector<int64_t> after =
        Harvest(db, workload, &server, /*epochs=*/1);
    server.Drain();
    result.post_promotion_queries = static_cast<int64_t>(after.size());
    result.post_promotion_ok = !after.empty();
    for (size_t i = 0; i < after.size(); ++i) {
      result.post_promotion_ok &= after[i] >= 0 && after[i] == before[i];
    }

    // Phase 4: the gate must refuse a poisoned candidate — same
    // architecture, trained on garbage targets.
    std::vector<CostSample> poisoned = refresher.buffer().SnapshotSorted();
    for (CostSample& s : poisoned) {
      s.actual_ns = static_cast<util::VirtualNanos>(
          1e15 / static_cast<double>(std::max<int64_t>(1, s.actual_ns)));
    }
    auto bad = std::make_shared<LearnedCostModel>(
        &refresher.featurizer(), costmodel::LearnedModelOptions{});
    bad->Train(poisoned);
    const uint64_t version_before = server.model_version();
    const RefreshOutcome refusal = refresher.ScoreAndMaybePromote(bad);
    result.poisoned_candidate_rejected =
        refusal.attempted && !refusal.promoted &&
        server.model_version() == version_before;

    // Phase 5: drift storm — feed the detector observations the incumbent
    // is wildly wrong about until the alarm trips the serving breaker.
    const engine::Database::Planned planned =
        db->PlanQuery(workload.front());
    for (int i = 0; i < 64 && refresher.drift_alarms() == 0; ++i) {
      refresher.OnPlanExecuted(workload.front(), planned.plan,
                               /*execution_ns=*/1, (1ull << 40) + i);
    }
    result.drift_alarms = refresher.drift_alarms();
    result.drift_tripped_breaker =
        server.breaker().state() == serve::CircuitBreaker::State::kOpen;
    harvested_total = refresher.buffer().added();
    result.trace_lines = trace.records_written();
  }

  // Phase 6: round-trip the trace mirror through the hardened ingester,
  // with 3 corrupt lines injected (a pre-fix bare-nan line, truncated
  // JSON, and a bad plan hint) — skipped and counted, never fatal.
  {
    std::FILE* f = std::fopen(trace_path.c_str(), "a");
    if (f != nullptr) {
      std::fputs(
          "{\"type\":\"serve_sample\",\"seq\":1,\"query\":\"1a\","
          "\"plan\":\"x\",\"execution_ns\":nan,\"analytic_cost\":nan}\n",
          f);
      std::fputs("{\"type\":\"serve_sample\",\"seq\":2,\"que\n", f);
      std::fputs(
          "{\"type\":\"serve_sample\",\"seq\":3,\"query\":\"1a\","
          "\"plan\":\"Leading(bogus)\",\"execution_ns\":5,"
          "\"analytic_cost\":1.0}\n",
          f);
      std::fclose(f);
    }
    std::unordered_map<std::string, query::Query> by_id;
    for (const query::Query& q : workload) by_id.emplace(q.id, q);
    const PlanFeaturizer featurizer(&db->context(),
                                    &db->planner().estimator());
    costmodel::ReplayBufferOptions buffer_options;
    buffer_options.capacity = 1 << 20;
    costmodel::ReplayBuffer replay(buffer_options);
    const costmodel::IngestStats stats = costmodel::IngestServeTrace(
        trace_path, by_id, featurizer, &replay);
    result.trace_ingested = stats.ingested;
    result.trace_skipped = stats.skipped();
    result.trace_round_trip =
        stats.ingested == harvested_total && stats.skipped() == 3;
  }
  std::remove(trace_path.c_str());
  return result;
}

std::string ModelScoreJson(const ModelScore& score) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"median_qerror\": %.4f, \"p95_qerror\": %.4f, "
                "\"mean_regret\": %.4f, \"p95_regret\": %.4f, "
                "\"picked_best\": %lld}",
                score.median_qerror, score.p95_qerror, score.mean_regret,
                score.p95_regret, static_cast<long long>(score.picked_best));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lqolab;

  bool quick = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }

  std::vector<std::string> workloads = {"job"};
  if (!quick) {
    workloads.push_back("job_complex");
    workloads.push_back("tpch");
  }

  std::vector<WorkloadResult> results;
  int64_t wins = 0;
  for (const std::string& workload : workloads) {
    std::fprintf(stderr, "bake-off: %s...\n", workload.c_str());
    results.push_back(RunBakeoff(workload));
    const WorkloadResult& r = results.back();
    wins += r.learned_beats_analytic ? 1 : 0;
    std::fprintf(stderr,
                 "  %-12s analytic med-q=%.2f learned med-q=%.2f "
                 "regret %.3f vs %.3f  %s\n",
                 r.workload.c_str(), r.analytic.median_qerror,
                 r.learned.median_qerror, r.analytic.mean_regret,
                 r.learned.mean_regret,
                 r.learned_beats_analytic ? "[learned wins]" : "");
  }

  std::fprintf(stderr, "serve loop (harvest -> refresh -> promote)...\n");
  auto db = bench::MakeDatabase(0.25);
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  const ServeResult serve =
      RunServeLoop(db.get(), workload, "BENCH_costmodel_trace.jsonl");
  std::fprintf(stderr,
               "  harvested=%lld promoted=%s cand-q=%.2f inc-q=%.2f "
               "poisoned_rejected=%s deterministic=%s drift_trip=%s\n",
               static_cast<long long>(serve.harvested),
               serve.first_refresh_promoted ? "yes" : "NO",
               serve.candidate_median_qerror, serve.incumbent_median_qerror,
               serve.poisoned_candidate_rejected ? "yes" : "NO",
               serve.refresh_deterministic ? "yes" : "NO",
               serve.drift_tripped_breaker ? "yes" : "NO");

  std::string json = "{\n";
  json += "  \"bench\": \"cost_model_bakeoff\",\n";
  json += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  json += "  \"workloads\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"workload\": \"%s\", \"queries\": %lld, \"samples\": %lld, "
        "\"train_samples\": %lld, \"test_samples\": %lld, "
        "\"train_loss\": %.6f, \"weights_digest\": \"%016llx\", "
        "\"analytic\": %s, \"learned\": %s, "
        "\"learned_beats_analytic\": %s}%s\n",
        r.workload.c_str(), static_cast<long long>(r.queries),
        static_cast<long long>(r.samples),
        static_cast<long long>(r.train_samples),
        static_cast<long long>(r.test_samples), r.train_loss,
        static_cast<unsigned long long>(r.weights_digest),
        ModelScoreJson(r.analytic).c_str(), ModelScoreJson(r.learned).c_str(),
        r.learned_beats_analytic ? "true" : "false",
        i + 1 < results.size() ? "," : "");
    json += buffer;
  }
  json += "  ],\n";
  json += "  \"learned_beats_analytic_workloads\": " + std::to_string(wins) +
          ",\n";
  {
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "  \"serve\": {\"harvested\": %lld, "
        "\"candidate_median_qerror\": %.4f, "
        "\"incumbent_median_qerror\": %.4f, \"train_loss\": %.6f, "
        "\"published_version\": %llu, \"weights_digest\": \"%016llx\", "
        "\"post_promotion_queries\": %lld, \"post_promotion_ok\": %s, "
        "\"trace_lines\": %lld, \"trace_ingested\": %lld, "
        "\"trace_skipped\": %lld, \"trace_round_trip\": %s, "
        "\"drift_alarms\": %lld, \"drift_tripped_breaker\": %s},\n",
        static_cast<long long>(serve.harvested),
        serve.candidate_median_qerror, serve.incumbent_median_qerror,
        serve.train_loss,
        static_cast<unsigned long long>(serve.published_version),
        static_cast<unsigned long long>(serve.weights_digest),
        static_cast<long long>(serve.post_promotion_queries),
        serve.post_promotion_ok ? "true" : "false",
        static_cast<long long>(serve.trace_lines),
        static_cast<long long>(serve.trace_ingested),
        static_cast<long long>(serve.trace_skipped),
        serve.trace_round_trip ? "true" : "false",
        static_cast<long long>(serve.drift_alarms),
        serve.drift_tripped_breaker ? "true" : "false");
    json += buffer;
  }
  json += std::string("  \"first_refresh_promoted\": ") +
          (serve.first_refresh_promoted ? "true" : "false") + ",\n";
  json += std::string("  \"poisoned_candidate_rejected\": ") +
          (serve.poisoned_candidate_rejected ? "true" : "false") + ",\n";
  json += std::string("  \"refresh_deterministic\": ") +
          (serve.refresh_deterministic ? "true" : "false") + "\n";
  json += "}\n";

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path);
  } else {
    std::fputs(json.c_str(), stdout);
  }

  bool ok = wins >= 1;
  ok &= serve.first_refresh_promoted;
  ok &= serve.post_promotion_ok;
  ok &= serve.poisoned_candidate_rejected;
  ok &= serve.trace_round_trip;
  ok &= serve.refresh_deterministic;
  ok &= serve.drift_tripped_breaker;
  return ok ? 0 : 1;
}
