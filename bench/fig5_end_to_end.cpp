// Figure 5 (the headline experiment): end-to-end comparison of PostgreSQL
// (pglite) vs Neo, Bao, Balsa, LEON on the TEST sets of 9 train/test splits
// (3 samplers x 3 splits, shared across methods). Reports the paper's
// decomposition: inference+planning time and execution time, with 95% CIs
// and timeout counts. The paper finds pglite generally best, Bao
// competitive, Neo/Balsa behind, and LEON dominated by inference time.
//
// Environment knobs: LQOLAB_SCALE (default 0.25), LQOLAB_SPLITS (default 9).
// Flags: --trace <path> writes a JSONL trace (workload/query/episode/train
// records per measurement plus a final engine-metrics record; schema in
// docs/observability.md). --workload job|job_complex|tpch picks the query
// set (default job); job_complex loads workloads/job_complex_lite.sql over
// the same IMDB database, tpch loads workloads/tpch_lite.sql over the
// TPC-H-lite database.

#include <memory>

#include "bench_common.h"
#include "benchkit/parallel_runner.h"
#include "benchkit/splits.h"
#include "lqo/balsa.h"
#include "lqo/bao.h"
#include "lqo/leon.h"
#include "lqo/neo.h"

namespace {

using namespace lqolab;

std::unique_ptr<lqo::LearnedOptimizer> MakeMethod(const std::string& name,
                                                  uint64_t seed) {
  if (name == "neo") {
    lqo::NeoOptimizer::Options options;
    options.iterations = 2;
    options.train_epochs = 12;
    options.seed = seed;
    options.parallelism = bench::TrainParallelism();
    return std::make_unique<lqo::NeoOptimizer>(options);
  }
  if (name == "bao") {
    lqo::BaoOptimizer::Options options;
    options.epochs = 3;
    options.train_epochs = 12;
    options.seed = seed;
    options.parallelism = bench::TrainParallelism();
    return std::make_unique<lqo::BaoOptimizer>(options);
  }
  if (name == "balsa") {
    lqo::BalsaOptimizer::Options options;
    options.pretrain_samples_per_query = 8;
    options.pretrain_epochs = 2;
    options.iterations = 3;
    options.train_epochs = 8;
    options.seed = seed;
    options.parallelism = bench::TrainParallelism();
    return std::make_unique<lqo::BalsaOptimizer>(options);
  }
  if (name == "leon") {
    lqo::LeonOptimizer::Options options;
    options.beam_masks = 10;
    options.topk_per_mask = 2;
    options.exec_per_query = 2;
    options.pair_epochs = 4;
    options.seed = seed;
    options.parallelism = bench::TrainParallelism();
    return std::make_unique<lqo::LeonOptimizer>(options);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 5", "paper §8.2.1",
      "End-to-end performance of pglite vs Neo/Bao/Balsa/LEON on the test "
      "sets of 9 shared train/test splits.");
  bench::BenchTrace trace(argc, argv);

  const std::string workload_name = bench::WorkloadFlag(argc, argv);
  auto db = bench::MakeWorkloadDatabase(workload_name, 0.25);
  const auto workload =
      bench::LoadWorkloadQueries(workload_name, db->schema());
  std::printf("workload: %s (%zu queries)\n\n", workload_name.c_str(),
              workload.size());
  auto splits = benchkit::PaperSplits(workload);
  const char* env_splits = std::getenv("LQOLAB_SPLITS");
  if (env_splits != nullptr) {
    const size_t limit = static_cast<size_t>(std::atoi(env_splits));
    if (limit > 0 && limit < splits.size()) splits.resize(limit);
  }

  benchkit::Protocol protocol;
  protocol.runs = 5;  // extra runs give the CI
  protocol.take = 2;

  util::TablePrinter table({"split", "method", "inference", "planning",
                            "execution", "+/-95%", "end-to-end", "timeouts"});
  const std::vector<std::string> methods = {"pglite", "bao", "neo", "balsa",
                                            "leon"};
  // Per-method sums over splits for the summary.
  std::map<std::string, util::VirtualNanos> total_e2e;
  std::map<std::string, util::VirtualNanos> total_exec;
  std::map<std::string, int> total_timeouts;

  for (const auto& split : splits) {
    const auto train = benchkit::SelectQueries(workload, split.train_indices);
    const auto test = benchkit::SelectQueries(workload, split.test_indices);
    for (const auto& method : methods) {
      benchkit::WorkloadMeasurement result;
      if (method == "pglite") {
        result = benchkit::MeasureWorkload(db.get(), nullptr, test, protocol,
                                           bench::MeasureOptions());
      } else {
        auto lqo = MakeMethod(method, bench::kSeed);
        lqo::TrainReport report = lqo->Train(train, db.get());
        result = benchkit::MeasureWorkload(db.get(), lqo.get(), test, protocol,
                                           bench::MeasureOptions());
        result.train_report = std::move(report);
      }
      result.split = split.name;
      trace.Write(result);
      table.AddRow(
          {split.name, method,
           util::FormatDuration(result.total_inference_ns()),
           util::FormatDuration(result.total_planning_ns()),
           util::FormatDuration(result.total_execution_ns()),
           util::FormatDuration(
               static_cast<util::VirtualNanos>(result.execution_ci95_ns())),
           util::FormatDuration(result.total_end_to_end_ns()),
           std::to_string(result.timeout_count())});
      total_e2e[method] += result.total_end_to_end_ns();
      total_exec[method] += result.total_execution_ns();
      total_timeouts[method] += result.timeout_count();
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf(" %s done\n", split.name.c_str());
  }
  std::printf("\n");
  table.Print();

  std::printf("\nSummary over all splits (end-to-end / execution-only):\n");
  util::TablePrinter summary({"method", "end-to-end", "execution", "timeouts",
                              "vs pglite e2e"});
  const double pg_e2e = static_cast<double>(total_e2e["pglite"]);
  for (const auto& method : methods) {
    summary.AddRow({method, util::FormatDuration(total_e2e[method]),
                    util::FormatDuration(total_exec[method]),
                    std::to_string(total_timeouts[method]),
                    util::FormatFactor(static_cast<double>(total_e2e[method]) /
                                       pg_e2e)});
  }
  summary.Print();
  std::printf(
      "\npaper shape: pglite best end-to-end on most splits; Bao competitive "
      "(sometimes better on execution alone, never after planning); "
      "Neo/Balsa behind; LEON's inference time dominates everything.\n");
  trace.Finish();
  return 0;
}
