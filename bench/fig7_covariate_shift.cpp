// Figure 7 / §8.3: covariate shift. Two Bao models are trained on the same
// "base query split 1": Bao-Full on the full IMDB, Bao-50 on IMDB-50%
// (Bernoulli-sampled `title`, cascaded). Both are then evaluated on the
// FULL database. Because Bao's encoding carries only cardinalities/costs
// (no table identity), the model trained under the smaller cardinality
// regime misjudges plans on the full data: the paper sees up to 24x
// regressions (31c) next to a few improvements.
//
// --workload job|job_complex|tpch picks the query set (default job). The
// 50% database cascades from the workload's fact table: IMDB subsamples
// `title`, TPC-H-lite subsamples `orders`.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "benchkit/parallel_runner.h"
#include "benchkit/splits.h"
#include "datagen/imdb_generator.h"
#include "lqo/bao.h"
#include "util/statistics.h"

int main(int argc, char** argv) {
  using namespace lqolab;
  bench::PrintHeader(
      "Figure 7", "paper §8.3",
      "Bao trained on the full database vs on a 50% cascade-subsample, "
      "both evaluated on the full database (base query split 1).");

  const std::string workload_name = bench::WorkloadFlag(argc, argv);
  auto full = bench::MakeWorkloadDatabase(workload_name, 0.25);
  // Build the 50% database by Bernoulli-sampling the fact table with
  // CASCADE (IMDB: title; TPC-H-lite: orders).
  const catalog::TableId root =
      workload_name == "tpch"
          ? static_cast<catalog::TableId>(catalog::tpch::kOrders)
          : static_cast<catalog::TableId>(catalog::imdb::kTitle);
  auto half_tables =
      datagen::SubsampleCascade(full->schema(), full->context().tables(),
                                root, 0.5, bench::kSeed + 1);
  engine::Database::Options half_options;
  half_options.seed = bench::kSeed;
  auto half = engine::Database::FromTables(half_options, full->schema(),
                                           std::move(half_tables));
  std::printf("workload: %s; full: %lld pages, 50%%: %lld pages\n\n",
              workload_name.c_str(),
              static_cast<long long>(full->TotalPages()),
              static_cast<long long>(half->TotalPages()));

  const auto workload =
      bench::LoadWorkloadQueries(workload_name, full->schema());
  const auto splits = benchkit::PaperSplits(workload);
  const auto& split = splits[6];  // base_query_1
  const auto train = benchkit::SelectQueries(workload, split.train_indices);
  const auto test = benchkit::SelectQueries(workload, split.test_indices);

  lqo::BaoOptimizer::Options options;
  options.epochs = 3;
  options.train_epochs = 12;
  options.parallelism = bench::TrainParallelism();
  lqo::BaoOptimizer bao_full(options);
  lqo::BaoOptimizer bao_50(options);
  bao_full.Train(train, full.get());
  bao_50.Train(train, half.get());  // different cardinality regime

  // Both evaluated against the FULL database; one runner (and its worker
  // replicas) serves both measurements.
  benchkit::Protocol protocol;
  protocol.runs = 5;
  benchkit::ParallelRunner runner(full.get(), bench::MeasureOptions());
  const auto full_result =
      benchkit::MeasureWorkload(&runner, &bao_full, test, protocol);
  const auto shifted_result =
      benchkit::MeasureWorkload(&runner, &bao_50, test, protocol);

  util::TablePrinter table({"query", "Bao-Full", "Bao-50", "factor",
                            "significant"});
  double worst_regression = 1.0;
  double best_improvement = 1.0;
  int regressions = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const auto& a = full_result.queries[i];
    const auto& b = shifted_result.queries[i];
    const double fa = static_cast<double>(a.execution_ns);
    const double fb = static_cast<double>(b.execution_ns);
    const double factor = fb / std::max(1.0, fa);
    // Per-run significance from the measured repetitions.
    std::vector<double> runs_a;
    std::vector<double> runs_b;
    for (size_t r = 2; r < a.run_execution_ns.size(); ++r) {
      runs_a.push_back(static_cast<double>(a.run_execution_ns[r]));
      runs_b.push_back(static_cast<double>(b.run_execution_ns[r]));
    }
    const auto sig = util::WelchTTest(runs_a, runs_b);
    if (factor > 1.05) {
      ++regressions;
      worst_regression = std::max(worst_regression, factor);
    }
    best_improvement = std::min(best_improvement, factor);
    table.AddRow({a.query_id, util::FormatDuration(a.execution_ns),
                  util::FormatDuration(b.execution_ns),
                  util::FormatFactor(factor), sig.significant ? "yes" : "no"});
  }
  table.Print();

  std::printf("\ntotals: Bao-Full %s vs Bao-50 %s (%.2fx)\n",
              util::FormatDuration(full_result.total_execution_ns()).c_str(),
              util::FormatDuration(shifted_result.total_execution_ns()).c_str(),
              static_cast<double>(shifted_result.total_execution_ns()) /
                  static_cast<double>(full_result.total_execution_ns()));
  std::printf("regressions on %d/%zu queries; worst %.1fx slower, best "
              "%.2fx (improvement)\n",
              regressions, test.size(), worst_regression, best_improvement);
  std::printf("\npaper shape: large per-query regressions (24x on 31c, 4.5x "
              "on 17a) with a few improvements (1.9x on 7c) => updated "
              "cardinality estimates alone cannot keep a trained model "
              "current. %s\n",
              worst_regression > 1.5 ? "[REPRODUCED]" : "[NOT reproduced]");
  return 0;
}
