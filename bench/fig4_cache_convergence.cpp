// Figure 4 + §7.3: hot/cold cache convergence. Every JOB query is executed
// 50 times in succession and in order (1a x50, 1b x50, ...) from a cold
// start; we report the mean normalized difference between the k-th and
// (k+1)-th execution. The paper measures -14.6% at k=1, -1.03% at k=2, and
// no trend afterwards, concluding that taking the 3rd execution is the
// sweet spot. A second section compares the paper's measurement-protocol
// alternatives (take-3rd vs averaging n runs).

#include <cmath>

#include "bench_common.h"
#include "util/statistics.h"

int main() {
  using namespace lqolab;
  bench::PrintHeader(
      "Figure 4", "paper §7.3",
      "Normalized execution-time difference between successive runs "
      "(50 consecutive executions per query, cold start).");

  auto db = bench::MakeDatabase();
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  db->DropCaches();

  constexpr int kRuns = 50;
  // per-query normalized diffs: diff[k] = (t_k - t_{k+1}) / t_1.
  std::vector<std::vector<double>> diffs(kRuns - 1);
  std::vector<std::vector<double>> run_times(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const auto planned = db->PlanQuery(workload[i]);
    std::vector<double> times;
    times.reserve(kRuns);
    for (int r = 0; r < kRuns; ++r) {
      times.push_back(static_cast<double>(
          db->ExecutePlan(workload[i], planned.plan).execution_ns));
    }
    for (int k = 0; k + 1 < kRuns; ++k) {
      diffs[static_cast<size_t>(k)].push_back((times[static_cast<size_t>(k)] -
                                               times[static_cast<size_t>(k) + 1]) /
                                              times[0]);
    }
    run_times[i] = std::move(times);
  }

  util::TablePrinter table({"k", "mean diff (k -> k+1)", "paper"});
  for (int k = 0; k < 8; ++k) {
    const double mean = util::Mean(diffs[static_cast<size_t>(k)]);
    const char* paper = k == 0 ? "-14.6%" : (k == 1 ? "-1.03%" : "~0%");
    table.AddRow({std::to_string(k + 1),
                  util::FormatDouble(mean * 100.0, 2) + "%", paper});
  }
  table.Print();
  const double d1 = util::Mean(diffs[0]);
  const double d2 = util::Mean(diffs[1]);
  std::printf("\nshape check: drop(1->2)=%.1f%%, drop(2->3)=%.2f%%  %s\n",
              d1 * 100, d2 * 100,
              (d1 > 0.05 && d2 < d1 / 3 && d2 > -0.01)
                  ? "[REPRODUCED]"
                  : "[NOT reproduced]");

  // --- §7.3: protocol comparison -------------------------------------------
  std::printf("\nMeasurement-protocol comparison (paper §7.3):\n");
  // Reference latency: median of runs 10..50 (steady state).
  double take3_err = 0.0;
  double avg3_err = 0.0;
  double avg5_err = 0.0;
  double take3_cost = 0.0;
  double avg5_cost = 0.0;
  for (const auto& times : run_times) {
    std::vector<double> steady(times.begin() + 9, times.end());
    const double reference = util::Percentile(steady, 50);
    take3_err += std::fabs(times[2] - reference) / reference;
    avg3_err += std::fabs((times[0] + times[1] + times[2]) / 3 - reference) /
                reference;
    avg5_err +=
        std::fabs((times[0] + times[1] + times[2] + times[3] + times[4]) / 5 -
                  reference) /
        reference;
    take3_cost += times[0] + times[1] + times[2];
    avg5_cost += times[0] + times[1] + times[2] + times[3] + times[4];
  }
  const double n = static_cast<double>(run_times.size());
  util::TablePrinter protocol_table(
      {"protocol", "mean |error| vs steady state", "relative cost"});
  protocol_table.AddRow({"take 3rd of 3", util::FormatDouble(take3_err / n * 100, 2) + "%",
                         "1.00x"});
  protocol_table.AddRow({"average of 3", util::FormatDouble(avg3_err / n * 100, 2) + "%",
                         "1.00x"});
  protocol_table.AddRow({"average of 5", util::FormatDouble(avg5_err / n * 100, 2) + "%",
                         util::FormatDouble(avg5_cost / take3_cost, 2) + "x"});
  protocol_table.Print();
  std::printf("\npaper: the 3rd execution is ~40%% cheaper than five runs and "
              "more robust than averaging three (the first, cold run skews "
              "averages).\n");
  return 0;
}
