// Ablation of the cardinality-estimator design choices called out in
// DESIGN.md (design decision 2): the full estimator (MCV-aware eqjoinsel +
// stepwise clamped join sizes, the PostgreSQL-style default) vs (a) no
// MCV join matching (plain 1/max(nd)) and (b) the naive full-product
// formula whose deep-chain collapse degenerates plan choice. The planner
// plans the whole workload under each estimator variant; the shared
// virtual-time executor (ground truth) scores the resulting plans.

#include "bench_common.h"
#include "benchkit/parallel_runner.h"

int main() {
  using namespace lqolab;
  bench::PrintHeader(
      "Estimator ablation", "DESIGN.md §4, design decision 2",
      "Plan quality under three estimator variants, identical execution "
      "ground truth.");

  auto db = bench::MakeDatabase();
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  benchkit::Protocol protocol;

  struct Variant {
    const char* name;
    engine::EstimatorMode mode;
  };
  const Variant variants[] = {
      {"full (MCV eqjoinsel + stepwise)", engine::EstimatorMode::kFull},
      {"no MCV join matching", engine::EstimatorMode::kNoMcvJoins},
      {"naive full product", engine::EstimatorMode::kNaiveProduct},
  };

  util::TablePrinter table({"estimator", "execution", "end-to-end",
                            "timeouts", "slowest query"});
  for (const Variant& variant : variants) {
    engine::DbConfig config = engine::DbConfig::OurFramework();
    config.estimator_mode = variant.mode;
    db->SetConfig(config);
    db->DropCaches();
    // A fresh runner per variant: worker replicas snapshot the parent's
    // configuration when created.
    const auto result = benchkit::MeasureWorkload(db.get(), nullptr, workload,
                                                  protocol,
                                                  bench::MeasureOptions());
    util::VirtualNanos slowest = 0;
    std::string slowest_id;
    for (const auto& m : result.queries) {
      if (m.execution_ns > slowest) {
        slowest = m.execution_ns;
        slowest_id = m.query_id;
      }
    }
    table.AddRow({variant.name,
                  util::FormatDuration(result.total_execution_ns()),
                  util::FormatDuration(result.total_end_to_end_ns()),
                  std::to_string(result.timeout_count()),
                  slowest_id + " (" + util::FormatDuration(slowest) + ")"});
  }
  table.Print();
  std::printf(
      "\nThe estimator quality feeds straight into plan quality: removing "
      "the MCV equi-join selectivities blinds the planner to Zipf-skewed "
      "join keys, and the naive product formula collapses every deep join "
      "estimate to ~1 row, making large-query join orders near-arbitrary. "
      "This gap between estimates and truth is exactly the opportunity the "
      "learned methods compete over.\n");
  return 0;
}
