// Table 2 / §7.1: DBMS configurations used across the LQO literature, and
// their measurable consequences: (a) the full-workload runtime under each
// preset, and (b) the paper's effective_cache_size planning-time
// experiment (multi-second planning outliers at the default 4 GB that
// vanish at 32 GB).

#include <algorithm>
#include <functional>

#include "bench_common.h"
#include "benchkit/parallel_runner.h"

int main() {
  using namespace lqolab;
  bench::PrintHeader(
      "Table 2", "paper §7.1",
      "PostgreSQL configurations of the LQO literature, replayed on pglite: "
      "parameter overview, workload impact, and the effective_cache_size "
      "planning-time effect.");

  // --- Parameter overview ---------------------------------------------------
  const auto presets = engine::DbConfig::Table2Presets();
  util::TablePrinter params({"parameter", "default", "job", "bao",
                             "balsa/leon", "loger", "lero", "ours"});
  auto add = [&](const char* name,
                 const std::function<std::string(const engine::DbConfig&)>& f) {
    std::vector<std::string> row = {name};
    for (const auto& preset : presets) row.push_back(f(preset));
    params.AddRow(row);
  };
  add("geqo", [](const auto& c) { return c.geqo ? "on" : "off"; });
  add("geqo_threshold",
      [](const auto& c) { return std::to_string(c.geqo_threshold); });
  add("work_mem (MB)",
      [](const auto& c) { return std::to_string(c.work_mem_mb); });
  add("shared_buffers (MB)",
      [](const auto& c) { return std::to_string(c.shared_buffers_mb); });
  add("temp_buffers (MB)",
      [](const auto& c) { return std::to_string(c.temp_buffers_mb); });
  add("effective_cache_size (MB)",
      [](const auto& c) { return std::to_string(c.effective_cache_size_mb); });
  add("max_parallel_workers",
      [](const auto& c) { return std::to_string(c.max_parallel_workers); });
  add("max_parallel_workers_per_gather", [](const auto& c) {
    return std::to_string(c.max_parallel_workers_per_gather);
  });
  add("max_worker_processes",
      [](const auto& c) { return std::to_string(c.max_worker_processes); });
  add("enable_bitmapscan",
      [](const auto& c) { return c.enable_bitmapscan ? "on" : "off"; });
  add("enable_tidscan",
      [](const auto& c) { return c.enable_tidscan ? "on" : "off"; });
  add("RAM (MB)", [](const auto& c) { return std::to_string(c.ram_mb); });
  params.Print();

  // --- Workload impact per preset -------------------------------------------
  std::printf("\nFull JOB-lite workload under each configuration "
              "(3-run protocol, cold start per preset):\n");
  auto db = bench::MakeDatabase();
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  benchkit::Protocol protocol;
  util::TablePrinter impact({"config", "planning", "execution", "end-to-end",
                             "timeouts"});
  for (const auto& preset : presets) {
    db->SetConfig(preset);
    db->DropCaches();
    // A fresh runner per preset: worker replicas snapshot the parent's
    // configuration when created.
    const auto result = benchkit::MeasureWorkload(db.get(), nullptr, workload,
                                                  protocol,
                                                  bench::MeasureOptions());
    impact.AddRow({preset.name,
                   util::FormatDuration(result.total_planning_ns()),
                   util::FormatDuration(result.total_execution_ns()),
                   util::FormatDuration(result.total_end_to_end_ns()),
                   std::to_string(result.timeout_count())});
  }
  impact.Print();

  // --- effective_cache_size planning-time experiment ------------------------
  std::printf("\neffective_cache_size planning-time experiment (paper §7.1: "
              "default 4 GB gives multi-second planning outliers; 32 GB "
              "removes them):\n");
  util::TablePrinter planning({"effective_cache_size", "max planning time",
                               "planning outliers (> 50 ms)"});
  for (int64_t cache_mb : {4096, 32768}) {
    engine::DbConfig config = engine::DbConfig::OurFramework();
    config.effective_cache_size_mb = cache_mb;
    db->SetConfig(config);
    util::VirtualNanos max_planning = 0;
    int over_threshold = 0;
    // Outlier threshold scaled to our smaller database (the paper uses
    // 100 ms / 1 s on the full IMDB).
    const util::VirtualNanos threshold = 50 * util::kNanosPerMilli;
    for (const auto& q : workload) {
      const auto planned = db->PlanQuery(q);
      max_planning = std::max(max_planning, planned.planning_ns);
      if (planned.planning_ns > threshold) ++over_threshold;
    }
    planning.AddRow({std::to_string(cache_mb) + " MB",
                     util::FormatDuration(max_planning),
                     std::to_string(over_threshold)});
  }
  planning.Print();
  std::printf("\npaper shape: raising effective_cache_size removes the "
              "planning-time outliers entirely.\n");
  return 0;
}
