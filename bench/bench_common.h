#ifndef LQOLAB_BENCH_BENCH_COMMON_H_
#define LQOLAB_BENCH_BENCH_COMMON_H_

// Shared setup for the per-figure/table bench binaries. Every binary
// regenerates one experiment of the paper; the database scale can be
// reduced for quick runs via the LQOLAB_SCALE environment variable
// (default 1.0 = the standard ~0.7M-row database; training-heavy benches
// pick their own default).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchkit/parallel_runner.h"
#include "catalog/imdb_schema.h"
#include "catalog/tpch_schema.h"
#include "datagen/tpch_generator.h"
#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/job_workload.h"
#include "query/sql_workload.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

// Directory holding the .sql workload files (workloads/ at the repo root);
// the bench CMakeLists bakes in the absolute path.
#ifndef LQOLAB_WORKLOADS_DIR
#define LQOLAB_WORKLOADS_DIR "workloads"
#endif

namespace lqolab::bench {

/// Standard experiment seed (shared by all binaries, like the paper's fixed
/// setup).
inline constexpr uint64_t kSeed = 42;

inline double EnvScale(double default_scale) {
  const char* env = std::getenv("LQOLAB_SCALE");
  if (env == nullptr) return default_scale;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : default_scale;
}

/// Measurement/training worker count from LQOLAB_PARALLELISM; 0 (the
/// default) lets the runner pick hardware_concurrency. Results are
/// identical for every value — the parallel runner's determinism contract
/// (docs/parallelism.md) — so this only trades wall-clock time.
inline int32_t EnvParallelism() {
  const char* env = std::getenv("LQOLAB_PARALLELISM");
  if (env == nullptr) return 0;
  const int32_t workers = std::atoi(env);
  return workers > 0 ? workers : 0;
}

/// Shared RunnerOptions for the bench drivers.
inline benchkit::RunnerOptions MeasureOptions() {
  benchkit::RunnerOptions options;
  options.parallelism = EnvParallelism();
  options.seed = kSeed;
  return options;
}

/// Parses `--trace <path>` / `--trace=<path>` from the binary's argv.
/// Returns the path, or "" when tracing was not requested.
inline std::string TraceFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--trace=", 0) == 0) return arg.substr(8);
  }
  return "";
}

/// Structured-trace sink for a bench driver: a JSONL TraceWriter plus a
/// MetricsRegistry collecting on the main thread (the parallel runners
/// merge worker counters into it). Inactive — and metrics stay disabled,
/// costing nothing — when no --trace path was given.
class BenchTrace {
 public:
  BenchTrace(int argc, char** argv) : path_(TraceFlag(argc, argv)) {
    if (path_.empty()) return;
    writer_ = std::make_unique<obs::TraceWriter>(path_);
    if (!writer_->ok()) {
      std::fprintf(stderr, "cannot open trace file %s\n", path_.c_str());
      std::exit(1);
    }
    scope_ = std::make_unique<obs::MetricsScope>(&metrics_);
  }

  bool enabled() const { return writer_ != nullptr; }
  obs::TraceWriter* writer() { return writer_.get(); }

  /// Appends one workload's records when tracing is enabled.
  void Write(const benchkit::WorkloadMeasurement& workload) {
    if (enabled()) benchkit::WriteWorkloadTrace(workload, writer_.get());
  }

  /// Appends the aggregated engine metrics and reports where the trace
  /// went. Call once at the end of main.
  void Finish() {
    if (!enabled()) return;
    obs::WriteMetricsTrace(metrics_, writer_.get());
    std::printf("\ntrace: %lld records -> %s\n",
                static_cast<long long>(writer_->records_written()),
                path_.c_str());
  }

 private:
  std::string path_;
  std::unique_ptr<obs::TraceWriter> writer_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::MetricsScope> scope_;
};

/// Training worker count for the LQO Options::parallelism knob: at least 1
/// so benches always use the deterministic replay path.
inline int32_t TrainParallelism() {
  const int32_t workers = EnvParallelism();
  return workers > 0 ? workers : util::ThreadPool::DefaultParallelism();
}

/// Creates the standard benchmark database.
inline std::unique_ptr<engine::Database> MakeDatabase(
    double default_scale = 1.0,
    engine::DbConfig config = engine::DbConfig::OurFramework()) {
  engine::Database::Options options;
  options.profile =
      datagen::ScaleProfile::Medium().Scaled(EnvScale(default_scale));
  options.seed = kSeed;
  options.config = config;
  return engine::Database::CreateImdb(options);
}

/// Parses `--workload <job|job_complex|tpch>` / `--workload=<name>` from
/// the binary's argv. Returns "job" (the built-in JOB-lite templates) when
/// the flag is absent.
inline std::string WorkloadFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workload" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--workload=", 0) == 0) return arg.substr(11);
  }
  return "job";
}

/// Schema the named workload binds against: IMDB for job/job_complex,
/// TPC-H-lite for tpch.
inline catalog::Schema WorkloadSchema(const std::string& workload) {
  return workload == "tpch" ? catalog::BuildTpchSchema()
                            : catalog::BuildImdbSchema();
}

/// Loads the named workload's queries — "job" from the built-in templates,
/// "job_complex"/"tpch" from their workloads/*.sql files through the sql/
/// frontend (parse + bind, ids via sql::AssignQueryId). Exits with the
/// loader's diagnostic on a malformed file or an unknown name.
inline std::vector<query::Query> LoadWorkloadQueries(
    const std::string& workload, const catalog::Schema& schema) {
  if (workload == "job") return query::BuildJobLiteWorkload(schema);
  std::string file;
  if (workload == "job_complex") {
    file = "job_complex_lite.sql";
  } else if (workload == "tpch") {
    file = "tpch_lite.sql";
  } else {
    std::fprintf(stderr,
                 "unknown workload '%s' (expected job, job_complex or "
                 "tpch)\n",
                 workload.c_str());
    std::exit(1);
  }
  const std::string path = std::string(LQOLAB_WORKLOADS_DIR) + "/" + file;
  std::vector<query::Query> queries;
  const util::Status status =
      query::LoadSqlWorkloadFile(path, schema, &queries);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  return queries;
}

/// Creates the benchmark database for the named workload: the standard
/// IMDB database for job/job_complex, the TPC-H-lite database for tpch
/// (same seed, same LQOLAB_SCALE knob).
inline std::unique_ptr<engine::Database> MakeWorkloadDatabase(
    const std::string& workload, double default_scale = 1.0,
    engine::DbConfig config = engine::DbConfig::OurFramework()) {
  if (workload != "tpch") return MakeDatabase(default_scale, config);
  engine::Database::Options options;
  options.seed = kSeed;
  options.config = config;
  return engine::Database::CreateTpch(
      options,
      datagen::TpchScaleProfile::Medium().Scaled(EnvScale(default_scale)));
}

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* summary) {
  std::printf("==============================================================\n");
  std::printf("%s  (%s)\n", experiment, paper_ref);
  std::printf("%s\n", summary);
  std::printf("==============================================================\n\n");
}

}  // namespace lqolab::bench

#endif  // LQOLAB_BENCH_BENCH_COMMON_H_
