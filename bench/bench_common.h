#ifndef LQOLAB_BENCH_BENCH_COMMON_H_
#define LQOLAB_BENCH_BENCH_COMMON_H_

// Shared setup for the per-figure/table bench binaries. Every binary
// regenerates one experiment of the paper; the database scale can be
// reduced for quick runs via the LQOLAB_SCALE environment variable
// (default 1.0 = the standard ~0.7M-row database; training-heavy benches
// pick their own default).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "query/job_workload.h"
#include "util/table_printer.h"

namespace lqolab::bench {

/// Standard experiment seed (shared by all binaries, like the paper's fixed
/// setup).
inline constexpr uint64_t kSeed = 42;

inline double EnvScale(double default_scale) {
  const char* env = std::getenv("LQOLAB_SCALE");
  if (env == nullptr) return default_scale;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : default_scale;
}

/// Creates the standard benchmark database.
inline std::unique_ptr<engine::Database> MakeDatabase(
    double default_scale = 1.0,
    engine::DbConfig config = engine::DbConfig::OurFramework()) {
  engine::Database::Options options;
  options.profile =
      datagen::ScaleProfile::Medium().Scaled(EnvScale(default_scale));
  options.seed = kSeed;
  options.config = config;
  return engine::Database::CreateImdb(options);
}

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* summary) {
  std::printf("==============================================================\n");
  std::printf("%s  (%s)\n", experiment, paper_ref);
  std::printf("%s\n", summary);
  std::printf("==============================================================\n\n");
}

}  // namespace lqolab::bench

#endif  // LQOLAB_BENCH_BENCH_COMMON_H_
