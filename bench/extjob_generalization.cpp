// Extension experiment (paper §6.1): generalization to ENTIRELY UNSEEN
// query templates. The paper's hardest split (base-query sampling) still
// draws train and test from the same 33 JOB templates; Neo's Ext-JOB went
// further with brand-new queries. Here every learned method trains on the
// full 113-query JOB-lite workload and is then evaluated on Ext-JOB-lite:
// 20 queries over 10 join shapes that never occur in training (person-
// centric queries without `title`, two-hop movie-link chains, ...).

#include <memory>

#include "bench_common.h"
#include "benchkit/parallel_runner.h"
#include "lqo/balsa.h"
#include "lqo/bao.h"
#include "lqo/hybridqo.h"
#include "lqo/lero.h"
#include "lqo/loger.h"
#include "lqo/neo.h"
#include "lqo/rtos.h"

int main() {
  using namespace lqolab;
  bench::PrintHeader(
      "Ext-JOB generalization", "extension of paper §6.1 / §7.2",
      "Train on all 113 JOB queries, evaluate on 20 queries over 10 novel "
      "templates (one level harder than base-query sampling).");

  auto db = bench::MakeDatabase(0.25);
  const auto train = query::BuildJobLiteWorkload(db->schema());
  const auto test = query::BuildExtJobWorkload(db->schema());
  std::printf("train: %zu JOB queries; test: %zu Ext-JOB queries\n\n",
              train.size(), test.size());

  benchkit::Protocol protocol;
  protocol.runs = 5;

  util::TablePrinter table({"method", "inference+planning", "execution",
                            "end-to-end", "timeouts", "vs pglite"});
  benchkit::ParallelRunner runner(db.get(), bench::MeasureOptions());
  const auto native =
      benchkit::MeasureWorkload(&runner, nullptr, test, protocol);
  const double pg_e2e = static_cast<double>(native.total_end_to_end_ns());
  table.AddRow({"pglite",
                util::FormatDuration(native.total_inference_ns() +
                                     native.total_planning_ns()),
                util::FormatDuration(native.total_execution_ns()),
                util::FormatDuration(native.total_end_to_end_ns()),
                std::to_string(native.timeout_count()), "1.0x"});

  std::vector<std::unique_ptr<lqo::LearnedOptimizer>> methods;
  {
    lqo::BaoOptimizer::Options bao;
    bao.epochs = 3;
    bao.train_epochs = 12;
    bao.parallelism = bench::TrainParallelism();
    methods.push_back(std::make_unique<lqo::BaoOptimizer>(bao));
    lqo::LeroOptimizer::Options lero;
    lero.epochs = 2;
    lero.pair_epochs = 8;
    methods.push_back(std::make_unique<lqo::LeroOptimizer>(lero));
    lqo::NeoOptimizer::Options neo;
    neo.iterations = 2;
    neo.train_epochs = 12;
    neo.parallelism = bench::TrainParallelism();
    methods.push_back(std::make_unique<lqo::NeoOptimizer>(neo));
    lqo::RtosOptimizer::Options rtos;
    rtos.iterations = 2;
    rtos.train_epochs = 10;
    methods.push_back(std::make_unique<lqo::RtosOptimizer>(rtos));
    lqo::LogerOptimizer::Options loger;
    loger.iterations = 2;
    loger.train_epochs = 8;
    methods.push_back(std::make_unique<lqo::LogerOptimizer>(loger));
    lqo::HybridQoOptimizer::Options hybrid;
    hybrid.epochs = 2;
    hybrid.train_epochs = 8;
    hybrid.mcts_iterations = 40;
    methods.push_back(std::make_unique<lqo::HybridQoOptimizer>(hybrid));
    lqo::BalsaOptimizer::Options balsa;
    balsa.pretrain_samples_per_query = 6;
    balsa.pretrain_epochs = 2;
    balsa.iterations = 2;
    balsa.train_epochs = 8;
    balsa.parallelism = bench::TrainParallelism();
    methods.push_back(std::make_unique<lqo::BalsaOptimizer>(balsa));
  }
  for (auto& method : methods) {
    method->Train(train, db.get());
    const auto result =
        benchkit::MeasureWorkload(&runner, method.get(), test, protocol);
    table.AddRow(
        {method->name(),
         util::FormatDuration(result.total_inference_ns() +
                              result.total_planning_ns()),
         util::FormatDuration(result.total_execution_ns()),
         util::FormatDuration(result.total_end_to_end_ns()),
         std::to_string(result.timeout_count()),
         util::FormatFactor(
             static_cast<double>(result.total_end_to_end_ns()) / pg_e2e)});
    std::printf("%s done\n", method->name().c_str());
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nexpected shape (extrapolating the paper's split-difficulty trend): "
      "the gap to pglite widens further on never-seen templates — the value "
      "networks cannot transfer join structure they never observed, while "
      "the classical optimizer is structure-agnostic by design.\n");
  return 0;
}
