// Figure 3: visualization of the three train/test split samplers on the
// base-query families of JOB (Leave One Out / Random / Base Query).
//
// --workload job|job_complex|tpch picks the query set (default job); the
// .sql workloads load through the sql/ frontend and split exactly like the
// built-in templates because sql::AssignQueryId maps their ids onto
// template/variant.

#include "bench_common.h"
#include "benchkit/splits.h"

int main(int argc, char** argv) {
  using namespace lqolab;
  bench::PrintHeader("Figure 3", "paper §7.2",
                     "Train/Test assignment per sampler over the first five "
                     "base-query families (T = train, * = TEST).");

  const std::string workload_name = bench::WorkloadFlag(argc, argv);
  const catalog::Schema schema = bench::WorkloadSchema(workload_name);
  const auto workload = bench::LoadWorkloadQueries(workload_name, schema);
  std::printf("workload: %s (%zu queries)\n\n", workload_name.c_str(),
              workload.size());
  // Show the first five families whatever the workload's template-id base
  // (JOB-lite counts from 1, the .sql workloads from 101).
  const int32_t family_limit = workload.front().template_id + 5;

  const benchkit::SplitKind kinds[] = {benchkit::SplitKind::kLeaveOneOut,
                                       benchkit::SplitKind::kRandom,
                                       benchkit::SplitKind::kBaseQuery};
  const char* difficulty[] = {"easy", "medium", "hard"};

  // Header row: query ids of the first 5 families.
  std::vector<std::string> headers = {"sampler"};
  for (const auto& q : workload) {
    if (q.template_id >= family_limit) break;
    headers.push_back(q.id);
  }
  util::TablePrinter table(headers);
  for (int k = 0; k < 3; ++k) {
    const auto split = benchkit::SampleSplit(workload, kinds[k], 0.2,
                                             bench::kSeed + static_cast<uint64_t>(k));
    std::vector<char> in_test(workload.size(), 0);
    for (int32_t i : split.test_indices) in_test[static_cast<size_t>(i)] = 1;
    std::vector<std::string> row = {std::string(
        benchkit::SplitKindName(kinds[k])) + " (" + difficulty[k] + ")"};
    for (size_t i = 0; i < workload.size(); ++i) {
      if (workload[i].template_id >= family_limit) break;
      row.push_back(in_test[i] ? "*" : "T");
    }
    table.AddRow(row);
    std::printf("%s: %zu train / %zu test queries\n",
                benchkit::SplitKindName(kinds[k]), split.train_indices.size(),
                split.test_indices.size());
  }
  std::printf("\n");
  table.Print();
  std::printf("\nBase Query Sampling holds out whole families; Leave One Out "
              "holds out exactly one variant per family.\n");
  return 0;
}
