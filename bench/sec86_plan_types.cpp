// §8.6: analysis of query plan types. For JOB queries with at most 5 joins
// we enumerate ALL physical plans (every connected join tree x join
// algorithms, scans chosen by the cost model), execute each one, and
// compare the execution-time distributions of bushy vs linear (left/right-
// deep) trees. The paper finds no significant difference at the means
// (two-sided Mann-Whitney p = 0.285) but significantly better bushy plans
// in the left tail (p = 0.015 at the 7th percentile), with linear plans
// absent from the extreme left tail.

#include <algorithm>
#include <functional>
#include <set>

#include "bench_common.h"
#include "lqo/plan_search.h"
#include "util/statistics.h"

namespace {

using namespace lqolab;

/// Linear = every join has a base relation on at least one side
/// (left-deep and right-deep, per the paper's footnote 5).
bool IsLinear(const optimizer::PhysicalPlan& plan) {
  for (const auto& node : plan.nodes) {
    if (node.type != optimizer::PlanNode::Type::kJoin) continue;
    const bool left_scan = plan.node(node.left).type ==
                           optimizer::PlanNode::Type::kScan;
    const bool right_scan = plan.node(node.right).type ==
                            optimizer::PlanNode::Type::kScan;
    if (!left_scan && !right_scan) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Section 8.6", "paper §8.6",
      "All physical plans of every JOB query with <= 5 joins: bushy vs "
      "linear execution-time distributions (Mann-Whitney U).");

  auto db = bench::MakeDatabase(0.25);
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  constexpr size_t kMaxPlansPerQuery = 8000;
  std::vector<double> bushy_times;
  std::vector<double> linear_times;
  int64_t enumerated = 0;
  int queries_used = 0;

  for (const auto& q : workload) {
    if (q.join_count() > 5) continue;
    ++queries_used;

    // Enumerate all plans: recursive combination of fragments over the
    // connected join graph, deduplicated by canonical rendering.
    std::set<std::string> seen;
    std::vector<optimizer::PhysicalPlan> plans;
    struct Frag {
      optimizer::PhysicalPlan plan;
      query::AliasMask mask;
    };
    std::function<void(const std::vector<Frag>&)> recurse =
        [&](const std::vector<Frag>& frags) {
          if (plans.size() >= kMaxPlansPerQuery) return;
          if (frags.size() == 1) {
            const std::string key = frags[0].plan.ToString(q);
            if (seen.insert(key).second) plans.push_back(frags[0].plan);
            return;
          }
          for (size_t i = 0; i < frags.size(); ++i) {
            for (size_t j = 0; j < frags.size(); ++j) {
              if (i == j) continue;
              if (!q.HasEdgeBetween(frags[i].mask, frags[j].mask)) continue;
              auto combine = [&](optimizer::JoinAlgo algo,
                                 const optimizer::PhysicalPlan& right) {
                std::vector<Frag> next;
                for (size_t k = 0; k < frags.size(); ++k) {
                  if (k != i && k != j) next.push_back(frags[k]);
                }
                Frag combined;
                combined.plan = lqo::CombinePlans(frags[i].plan, right, algo);
                combined.mask = frags[i].mask | frags[j].mask;
                next.push_back(std::move(combined));
                recurse(next);
              };
              for (optimizer::JoinAlgo algo :
                   {optimizer::JoinAlgo::kHash, optimizer::JoinAlgo::kNestLoop,
                    optimizer::JoinAlgo::kMerge}) {
                combine(algo, frags[j].plan);
              }
              // All join methods includes the parameterized index
              // nested-loop when the inner is an indexed base relation.
              if (frags[j].plan.nodes.size() == 1) {
                const query::AliasId inner = frags[j].plan.nodes[0].alias;
                catalog::ColumnId probe = catalog::kInvalidColumn;
                if (db->planner().cost_model().CanIndexNlj(q, frags[i].mask,
                                                           inner, &probe)) {
                  optimizer::PhysicalPlan leaf;
                  leaf.AddScan(inner, optimizer::ScanType::kIndex, probe);
                  combine(optimizer::JoinAlgo::kIndexNlj, leaf);
                }
              }
            }
          }
        };
    std::vector<Frag> leaves;
    for (query::AliasId a = 0; a < q.relation_count(); ++a) {
      Frag frag;
      const auto scan = db->planner().cost_model().BestScan(q, a);
      frag.plan.AddScan(a, scan.type, scan.index_column);
      frag.mask = query::MaskOf(a);
      leaves.push_back(std::move(frag));
    }
    recurse(leaves);
    enumerated += static_cast<int64_t>(plans.size());

    for (const auto& plan : plans) {
      const auto run = db->ExecutePlan(q, plan);
      if (run.timed_out) continue;
      const double secs = static_cast<double>(run.execution_ns) /
                          static_cast<double>(util::kNanosPerSecond);
      (IsLinear(plan) ? linear_times : bushy_times).push_back(secs);
    }
    std::printf("%s: %zu plans\n", q.id.c_str(), plans.size());
  }

  std::printf("\n%lld plans executed over %d queries: %zu linear, %zu "
              "bushy\n\n",
              static_cast<long long>(enumerated), queries_used,
              linear_times.size(), bushy_times.size());

  // --- Means: two-sided Mann-Whitney (paper: p = 0.285, no difference) ---
  const auto mean_test = util::MannWhitneyU(bushy_times, linear_times);
  std::printf("two-sided Mann-Whitney at the means: p = %.3f (paper: 0.285 "
              "=> bushy ~ linear on average) %s\n",
              mean_test.p_value,
              mean_test.p_value > 0.05 ? "[REPRODUCED]" : "[differs]");
  std::printf("mean execution: bushy %.4fs vs linear %.4fs\n\n",
              util::Mean(bushy_times), util::Mean(linear_times));

  // --- Left tail: per-class share of plans below combined percentiles ---
  std::vector<double> combined = bushy_times;
  combined.insert(combined.end(), linear_times.begin(), linear_times.end());
  util::TablePrinter table({"percentile", "threshold", "bushy share below",
                            "linear share below", "fastest class"});
  for (double pct : {1.0, 2.0, 5.0, 7.0, 10.0, 25.0}) {
    const double threshold = util::Percentile(combined, pct);
    int64_t bushy_below = 0;
    int64_t linear_below = 0;
    for (double t : bushy_times) bushy_below += t <= threshold ? 1 : 0;
    for (double t : linear_times) linear_below += t <= threshold ? 1 : 0;
    const double bushy_share =
        static_cast<double>(bushy_below) / static_cast<double>(bushy_times.size());
    const double linear_share = static_cast<double>(linear_below) /
                                static_cast<double>(linear_times.size());
    table.AddRow({util::FormatDouble(pct, 0) + "th",
                  util::FormatDouble(threshold * 1000.0, 3) + " ms",
                  util::FormatDouble(bushy_share * 100.0, 2) + "%",
                  util::FormatDouble(linear_share * 100.0, 2) + "%",
                  bushy_share > linear_share ? "bushy" : "linear"});
  }
  table.Print();
  const auto one_sided = util::MannWhitneyULess(bushy_times, linear_times);
  std::printf("\none-sided Mann-Whitney (bushy stochastically faster): "
              "p = %.3f\n",
              one_sided.p_value);
  std::printf("fastest plan overall: bushy %.4fs vs linear %.4fs\n",
              util::Percentile(bushy_times, 0),
              util::Percentile(linear_times, 0));
  std::printf(
      "\npaper: means indistinguishable (p = 0.285), bushy significantly "
      "better in the left tail (p = 0.015 at the 7th percentile). Here the "
      "tail dominance of bushy trees reproduces from the ~5th percentile "
      "up; at the means our bushy plans are outright better — on the "
      "smaller, more skewed synthetic data, deep linear chains accumulate "
      "large intermediates more often than on real IMDB (recorded as a "
      "deviation in EXPERIMENTS.md). The qualitative conclusion stands: "
      "omitting bushy plans (RTOS/LOGER/HybridQO) sacrifices the best "
      "plans.\n");
  return 0;
}
