// Figure 2: execution time vs number of joins for all 113 JOB queries, plus
// the regression analysis showing that the join count is a poor proxy for
// runtime (the paper reports a cross-validated R^2 of -0.11).

#include <algorithm>
#include <cmath>
#include <map>

#include "bench_common.h"
#include "benchkit/measurement.h"
#include "util/statistics.h"

int main() {
  using namespace lqolab;
  bench::PrintHeader("Figure 2", "paper §6.1",
                     "Execution time per number of joins for all JOB queries; "
                     "OLS + leave-one-out R^2 of joins -> time.");

  auto db = bench::MakeDatabase();
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  benchkit::Protocol protocol;  // 3 runs, take the 3rd (hot cache)
  std::vector<double> joins;
  std::vector<double> seconds;
  std::map<int32_t, std::vector<double>> by_joins;
  for (const auto& q : workload) {
    const auto m = benchkit::MeasureNative(db.get(), q, protocol);
    const double secs = static_cast<double>(m.execution_ns) /
                        static_cast<double>(util::kNanosPerSecond);
    joins.push_back(q.join_count());
    seconds.push_back(secs);
    by_joins[q.join_count()].push_back(secs);
  }

  // The scatter, aggregated per join count (the figure's x-axis).
  util::TablePrinter table({"joins", "queries", "min", "median", "max"});
  for (const auto& [j, times] : by_joins) {
    table.AddRow({std::to_string(j), std::to_string(times.size()),
                  util::FormatDuration(static_cast<util::VirtualNanos>(
                      util::Percentile(times, 0) * 1e9)),
                  util::FormatDuration(static_cast<util::VirtualNanos>(
                      util::Percentile(times, 50) * 1e9)),
                  util::FormatDuration(static_cast<util::VirtualNanos>(
                      util::Percentile(times, 100) * 1e9))});
  }
  table.Print();

  // Top-10 slowest queries (the tail the figure shows).
  std::vector<std::pair<double, std::string>> slowest;
  for (size_t i = 0; i < workload.size(); ++i) {
    slowest.emplace_back(seconds[i], workload[i].id);
  }
  std::sort(slowest.rbegin(), slowest.rend());
  std::printf("\nslowest queries: ");
  for (int i = 0; i < 10; ++i) {
    std::printf("%s (%.2fs)%s", slowest[static_cast<size_t>(i)].second.c_str(),
                slowest[static_cast<size_t>(i)].first, i < 9 ? ", " : "\n");
  }

  const util::OlsFit fit = util::OrdinaryLeastSquares(joins, seconds);
  const double loo_r2 = util::LeaveOneOutR2(joins, seconds);
  std::printf("\nOLS fit: time = %.3f * joins + %.3f (in-sample R^2 = %.3f)\n",
              fit.slope, fit.intercept, fit.r_squared);
  std::printf("leave-one-out R^2 = %.3f   (paper: -0.11)\n", loo_r2);
  std::printf("=> the number of joins is an irrelevant proxy for execution "
              "time%s\n",
              loo_r2 < 0.3 ? " [REPRODUCED]" : " [NOT reproduced]");
  return 0;
}
