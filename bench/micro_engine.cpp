// google-benchmark microbenchmarks for the engine components: planning
// (DP and GEQO), virtual-time execution, ANALYZE, the true-cardinality
// oracle, and value-network forward/backward passes.
//
// `--engine-json [path]` instead runs the execution-engine throughput
// comparison (scalar vs vectorized vs vectorized+predicate-transfer oracle
// hot path over the JOB-lite workload) and emits one JSON document; the
// recorded run lives at BENCH_engine.json. Exit code 1 if the batched
// engine falls below the 3x speedup floor docs/execution.md documents.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "lqo/encoding.h"
#include "lqo/value_net.h"
#include "ml/nn.h"
#include "stats/column_stats.h"

namespace {

using namespace lqolab;

engine::Database* SharedDb() {
  static engine::Database* db = [] {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Medium().Scaled(0.1);
    options.seed = bench::kSeed;
    return engine::Database::CreateImdb(options).release();
  }();
  return db;
}

const std::vector<query::Query>& SharedWorkload() {
  static const std::vector<query::Query> workload =
      query::BuildJobLiteWorkload(SharedDb()->schema());
  return workload;
}

void BM_PlannerDpSmall(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query q = query::BuildJobQuery(db->schema(), 3, 'a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->planner().PlanDynamicProgramming(q, true));
  }
}
BENCHMARK(BM_PlannerDpSmall);

void BM_PlannerDpMedium(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query q = query::BuildJobQuery(db->schema(), 22, 'a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->planner().PlanDynamicProgramming(q, true));
  }
}
BENCHMARK(BM_PlannerDpMedium);

void BM_PlannerGeqo17Relations(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query q = query::BuildJobQuery(db->schema(), 29, 'a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->planner().PlanGenetic(q, optimizer::GeqoParams{}));
  }
}
BENCHMARK(BM_PlannerGeqo17Relations);

void BM_ExecuteWarmQuery(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query& q = SharedWorkload()[0];
  const auto planned = db->PlanQuery(q);
  db->ExecutePlan(q, planned.plan);  // warm caches & oracle memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->ExecutePlan(q, planned.plan));
  }
}
BENCHMARK(BM_ExecuteWarmQuery);

void BM_AnalyzeCastInfo(benchmark::State& state) {
  auto* db = SharedDb();
  const auto& table = db->context().table(catalog::imdb::kCastInfo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::Analyze(table));
  }
}
BENCHMARK(BM_AnalyzeCastInfo);

void BM_EstimateJoinRows(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query& q = SharedWorkload()[70];
  const auto& estimator = db->planner().estimator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.EstimateJoinRows(q, q.FullMask()));
  }
}
BENCHMARK(BM_EstimateJoinRows);

void BM_OracleColdPairJoin(benchmark::State& state) {
  auto* db = SharedDb();
  // A fresh query fingerprint each iteration forces an unmemoized join.
  const query::Query base = query::BuildJobQuery(db->schema(), 3, 'a');
  int64_t counter = 0;
  for (auto _ : state) {
    query::Query q = base;
    q.id = "micro_" + std::to_string(counter++);
    const query::AliasMask mask = query::MaskOf(0) | query::MaskOf(1);
    benchmark::DoNotOptimize(db->oracle().TrueJoinRows(q, mask));
  }
}
BENCHMARK(BM_OracleColdPairJoin);

void BM_ValueNetForward(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query& q = SharedWorkload()[20];
  const auto planned = db->PlanQuery(q);
  lqo::QueryEncoder qenc(&db->context(), &db->planner().estimator());
  lqo::PlanEncoder penc(&db->context(), &db->planner().estimator(),
                        lqo::PlanEncodingStyle::kWithTableIdentity);
  lqo::TreeValueNet net(penc.node_dim(), qenc.dim(), 64, 1);
  const auto features = qenc.Encode(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Score(features, q, planned.plan, penc));
  }
}
BENCHMARK(BM_ValueNetForward);

void BM_ValueNetTrainStep(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query& q = SharedWorkload()[20];
  const auto planned = db->PlanQuery(q);
  lqo::QueryEncoder qenc(&db->context(), &db->planner().estimator());
  lqo::PlanEncoder penc(&db->context(), &db->planner().estimator(),
                        lqo::PlanEncodingStyle::kWithTableIdentity);
  lqo::TreeValueNet net(penc.node_dim(), qenc.dim(), 64, 1);
  ml::Adam adam(net.Params());
  const auto features = qenc.Encode(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.TrainRegression(features, q, planned.plan, penc, 0.5f, &adam));
  }
}
BENCHMARK(BM_ValueNetTrainStep);

void BM_GenerateSmallImdb(benchmark::State& state) {
  const catalog::Schema schema = catalog::BuildImdbSchema();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        datagen::GenerateImdb(schema, datagen::ScaleProfile::Small(), 1));
  }
}
BENCHMARK(BM_GenerateSmallImdb);

// --- Execution-engine throughput comparison (--engine-json) ----------------

/// One cold pass of the oracle hot path over the whole workload: filter
/// every base relation and materialize every connected 2-alias join. Fresh
/// query ids defeat the oracle's memoization, so each round re-runs the
/// selection and join kernels; the returned row count (identical for every
/// engine, by the byte-identity contract) is the throughput numerator.
int64_t OracleSweep(engine::Database* db,
                    const std::vector<query::Query>& workload, int round) {
  int64_t rows = 0;
  for (const query::Query& base : workload) {
    query::Query q = base;
    q.id += "_sweep" + std::to_string(round);
    for (query::AliasId a = 0; a < q.relation_count(); ++a) {
      rows += static_cast<int64_t>(db->oracle().FilteredRows(q, a).size());
    }
    for (query::AliasId a = 0; a < q.relation_count(); ++a) {
      for (query::AliasId b = static_cast<query::AliasId>(a + 1);
           b < q.relation_count(); ++b) {
        const query::AliasMask mask = query::MaskOf(a) | query::MaskOf(b);
        if (!q.IsConnected(mask)) continue;
        const auto card = db->oracle().TrueJoinRows(q, mask);
        if (!card.overflow) rows += card.rows;
      }
    }
    db->oracle().ReleaseMaterializations();
  }
  return rows;
}

int EngineComparison(const char* path) {
  struct Spec {
    const char* name;
    bool vectorized;
    bool transfer;
  };
  const Spec specs[] = {{"scalar", false, false},
                        {"vectorized", true, false},
                        {"vectorized_transfer", true, true}};
  constexpr int kRounds = 5;

  struct Result {
    const char* name;
    int64_t rows = 0;       // rows produced by one sweep round
    double wall_ms = 0.0;   // best (min) round wall time
    double rows_per_sec = 0.0;
  };
  std::vector<Result> results;
  for (const Spec& spec : specs) {
    const auto replica = SharedDb()->CloneContextForWorker();
    engine::DbConfig config = replica->config();
    config.vectorized_exec = spec.vectorized;
    config.predicate_transfer = spec.transfer;
    replica->SetConfig(config);
    // Warm-up round: page first-touch, predicate binding, scratch sizing.
    OracleSweep(replica.get(), SharedWorkload(), 0);

    // Each round is timed separately and the best round is reported:
    // min-of-N is robust to scheduler interference, which only ever slows
    // a round down, so the minimum is the cleanest estimate of the
    // engine's actual throughput.
    Result result;
    result.name = spec.name;
    for (int round = 1; round <= kRounds; ++round) {
      const auto t0 = std::chrono::steady_clock::now();
      result.rows = OracleSweep(replica.get(), SharedWorkload(), round);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (round == 1 || ms < result.wall_ms) result.wall_ms = ms;
    }
    result.rows_per_sec = 1000.0 * static_cast<double>(result.rows) /
                          result.wall_ms;
    std::fprintf(stderr,
                 "%s: %lld rows/round, best round %.1f ms (%.3g rows/s)\n",
                 result.name, static_cast<long long>(result.rows),
                 result.wall_ms, result.rows_per_sec);
    results.push_back(result);
  }

  const double speedup_vectorized =
      results[1].rows_per_sec / results[0].rows_per_sec;
  const double speedup_transfer =
      results[2].rows_per_sec / results[0].rows_per_sec;

  std::string json = "{\n";
  json += "  \"bench\": \"micro_engine\",\n";
  json += "  \"seed\": " + std::to_string(bench::kSeed) + ",\n";
  char buffer[256];
  json += "  \"configs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"config\": \"%s\", \"rows\": %lld, "
                  "\"wall_ms\": %.1f, \"rows_per_sec\": %.1f}%s\n",
                  results[i].name, static_cast<long long>(results[i].rows),
                  results[i].wall_ms, results[i].rows_per_sec,
                  i + 1 < results.size() ? "," : "");
    json += buffer;
  }
  json += "  ],\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"speedup_vectorized\": %.2f,\n"
                "  \"speedup_vectorized_transfer\": %.2f\n}\n",
                speedup_vectorized, speedup_transfer);
  json += buffer;

  if (path != nullptr) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path);
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return speedup_transfer >= 3.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--engine-json") {
      return EngineComparison(i + 1 < argc ? argv[i + 1] : nullptr);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
