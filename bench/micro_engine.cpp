// google-benchmark microbenchmarks for the engine components: planning
// (DP and GEQO), virtual-time execution, ANALYZE, the true-cardinality
// oracle, and value-network forward/backward passes.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lqo/encoding.h"
#include "lqo/value_net.h"
#include "ml/nn.h"
#include "stats/column_stats.h"

namespace {

using namespace lqolab;

engine::Database* SharedDb() {
  static engine::Database* db = [] {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Medium().Scaled(0.1);
    options.seed = bench::kSeed;
    return engine::Database::CreateImdb(options).release();
  }();
  return db;
}

const std::vector<query::Query>& SharedWorkload() {
  static const std::vector<query::Query> workload =
      query::BuildJobLiteWorkload(SharedDb()->schema());
  return workload;
}

void BM_PlannerDpSmall(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query q = query::BuildJobQuery(db->schema(), 3, 'a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->planner().PlanDynamicProgramming(q, true));
  }
}
BENCHMARK(BM_PlannerDpSmall);

void BM_PlannerDpMedium(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query q = query::BuildJobQuery(db->schema(), 22, 'a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->planner().PlanDynamicProgramming(q, true));
  }
}
BENCHMARK(BM_PlannerDpMedium);

void BM_PlannerGeqo17Relations(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query q = query::BuildJobQuery(db->schema(), 29, 'a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->planner().PlanGenetic(q, optimizer::GeqoParams{}));
  }
}
BENCHMARK(BM_PlannerGeqo17Relations);

void BM_ExecuteWarmQuery(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query& q = SharedWorkload()[0];
  const auto planned = db->PlanQuery(q);
  db->ExecutePlan(q, planned.plan);  // warm caches & oracle memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->ExecutePlan(q, planned.plan));
  }
}
BENCHMARK(BM_ExecuteWarmQuery);

void BM_AnalyzeCastInfo(benchmark::State& state) {
  auto* db = SharedDb();
  const auto& table = db->context().table(catalog::imdb::kCastInfo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::Analyze(table));
  }
}
BENCHMARK(BM_AnalyzeCastInfo);

void BM_EstimateJoinRows(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query& q = SharedWorkload()[70];
  const auto& estimator = db->planner().estimator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.EstimateJoinRows(q, q.FullMask()));
  }
}
BENCHMARK(BM_EstimateJoinRows);

void BM_OracleColdPairJoin(benchmark::State& state) {
  auto* db = SharedDb();
  // A fresh query fingerprint each iteration forces an unmemoized join.
  const query::Query base = query::BuildJobQuery(db->schema(), 3, 'a');
  int64_t counter = 0;
  for (auto _ : state) {
    query::Query q = base;
    q.id = "micro_" + std::to_string(counter++);
    const query::AliasMask mask = query::MaskOf(0) | query::MaskOf(1);
    benchmark::DoNotOptimize(db->oracle().TrueJoinRows(q, mask));
  }
}
BENCHMARK(BM_OracleColdPairJoin);

void BM_ValueNetForward(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query& q = SharedWorkload()[20];
  const auto planned = db->PlanQuery(q);
  lqo::QueryEncoder qenc(&db->context(), &db->planner().estimator());
  lqo::PlanEncoder penc(&db->context(), &db->planner().estimator(),
                        lqo::PlanEncodingStyle::kWithTableIdentity);
  lqo::TreeValueNet net(penc.node_dim(), qenc.dim(), 64, 1);
  const auto features = qenc.Encode(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Score(features, q, planned.plan, penc));
  }
}
BENCHMARK(BM_ValueNetForward);

void BM_ValueNetTrainStep(benchmark::State& state) {
  auto* db = SharedDb();
  const query::Query& q = SharedWorkload()[20];
  const auto planned = db->PlanQuery(q);
  lqo::QueryEncoder qenc(&db->context(), &db->planner().estimator());
  lqo::PlanEncoder penc(&db->context(), &db->planner().estimator(),
                        lqo::PlanEncodingStyle::kWithTableIdentity);
  lqo::TreeValueNet net(penc.node_dim(), qenc.dim(), 64, 1);
  ml::Adam adam(net.Params());
  const auto features = qenc.Encode(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.TrainRegression(features, q, planned.plan, penc, 0.5f, &adam));
  }
}
BENCHMARK(BM_ValueNetTrainStep);

void BM_GenerateSmallImdb(benchmark::State& state) {
  const catalog::Schema schema = catalog::BuildImdbSchema();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        datagen::GenerateImdb(schema, datagen::ScaleProfile::Small(), 1));
  }
}
BENCHMARK(BM_GenerateSmallImdb);

}  // namespace

BENCHMARK_MAIN();
