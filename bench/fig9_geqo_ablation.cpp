// Figure 9 / §8.5: ablation of the genetic query optimizer. With GEQO off,
// queries at or above the threshold (12 FROM items) are planned by
// exhaustive DP instead. The paper finds a handful of significant deltas in
// both directions (disabling GEQO slows 24b down 9.9x yet speeds 30a up
// 1.6x) and concludes pglite should run at full capacity.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "benchkit/measurement.h"
#include "util/statistics.h"

int main() {
  using namespace lqolab;
  bench::PrintHeader(
      "Figure 9", "paper §8.5",
      "pglite execution times with GEQO enabled vs disabled (exhaustive DP "
      "for large queries); deltas above the report threshold.");

  auto db = bench::MakeDatabase();
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  benchkit::Protocol protocol;
  protocol.runs = 6;
  protocol.take = 2;

  auto measure_all = [&](const engine::DbConfig& config) {
    db->SetConfig(config);
    db->DropCaches();
    std::vector<benchkit::QueryMeasurement> measurements;
    for (const auto& q : workload) {
      measurements.push_back(benchkit::MeasureNative(db.get(), q, protocol));
    }
    return measurements;
  };

  const auto with_geqo = measure_all(engine::DbConfig::OurFramework());
  engine::DbConfig no_geqo = engine::DbConfig::OurFramework();
  no_geqo.geqo = false;
  const auto without_geqo = measure_all(no_geqo);

  util::VirtualNanos total = 0;
  for (const auto& m : with_geqo) total += m.execution_ns;
  const util::VirtualNanos threshold = std::max<util::VirtualNanos>(
      total / 1000, util::kNanosPerMilli);

  util::TablePrinter table({"query", "joins", "geqo on", "geqo off",
                            "disable effect", "significant", "planning on",
                            "planning off"});
  int significant = 0;
  int reported = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    const auto& on = with_geqo[i];
    const auto& off = without_geqo[i];
    if (std::llabs(on.execution_ns - off.execution_ns) < threshold) continue;
    ++reported;
    std::vector<double> runs_on;
    std::vector<double> runs_off;
    for (size_t r = 2; r < on.run_execution_ns.size(); ++r) {
      runs_on.push_back(static_cast<double>(on.run_execution_ns[r]));
      runs_off.push_back(static_cast<double>(off.run_execution_ns[r]));
    }
    const auto sig = util::WelchTTest(runs_on, runs_off);
    if (sig.significant) ++significant;
    const double factor = static_cast<double>(off.execution_ns) /
                          static_cast<double>(std::max<util::VirtualNanos>(
                              1, on.execution_ns));
    table.AddRow({on.query_id, std::to_string(workload[i].join_count()),
                  util::FormatDuration(on.execution_ns),
                  util::FormatDuration(off.execution_ns),
                  factor < 1.0
                      ? util::FormatFactor(1.0 / factor) + " faster"
                      : util::FormatFactor(factor) + " slower",
                  sig.significant ? "yes" : "no",
                  util::FormatDuration(on.planning_ns),
                  util::FormatDuration(off.planning_ns)});
  }
  table.Print();

  // Planning-time effect: exhaustive DP on >= 12-relation queries costs
  // far more planning time than GEQO.
  util::VirtualNanos plan_on = 0;
  util::VirtualNanos plan_off = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (workload[i].relation_count() < 12) continue;
    plan_on += with_geqo[i].planning_ns;
    plan_off += without_geqo[i].planning_ns;
  }
  std::printf("\n%d of %d reported deltas are statistically significant.\n",
              significant, reported);
  std::printf("planning time on >=12-relation queries: GEQO %s vs "
              "exhaustive DP %s\n",
              util::FormatDuration(plan_on).c_str(),
              util::FormatDuration(plan_off).c_str());
  std::printf("\npaper shape: GEQO matters for a handful of queries in both "
              "directions; when the LQO merely guides the optimizer, pglite "
              "should run at full capacity (GEQO on).\n");
  return 0;
}
