// Fuzz soak: runs the differential plan-correctness oracle (src/fuzz/) over
// a rotation of engine configurations — bushy/left-deep, GEQO seeds, a
// lowered GEQO threshold, the scalar reference engine, the batched engine
// without predicate transfer and hash-sharded storage (table_shards=8,
// on top of the sharded-twin arm every configuration already runs) — with
// the native-passthrough and Bao
// arms in the execution cross-check. Every configuration also runs the SQL
// round-trip arm (DifferentialOptions::sql_round_trip, on by default):
// each generated query renders to SQL, re-binds through the sql/ frontend,
// and must fingerprint, render and DP-plan byte-identically. Emits one JSON document (stdout, or the file given
// as argv[1]) with queries/sec, checks/sec and the discrepancy count, which
// must be zero; the recorded run lives at BENCH_fuzz.json.
//
// Knobs (environment):
//   LQOLAB_FUZZ_QUERIES   queries per configuration (default 250)
//   LQOLAB_FUZZ_SEED      generator seed (default 42)
//   LQOLAB_FUZZ_BUDGET_MS wall-clock budget per configuration (default 0 =
//                         run all queries)
//
// Replay a reproducer against the default configuration:
//   ./build/bench/fuzz_soak --replay tests/fuzz_corpus/<name>.repro

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "lqo/bao.h"
#include "lqo/native_passthrough.h"

namespace {

using namespace lqolab;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atoll(value);
}

std::unique_ptr<engine::Database> MakeFuzzDatabase(
    const engine::DbConfig& config) {
  engine::Database::Options options;
  // Same quarter-scale profile as tests/test_fuzz.cc: the oracle's
  // execution check is linear in table size.
  options.profile = datagen::ScaleProfile::Small().Scaled(0.25);
  options.seed = 42;
  options.config = config;
  return engine::Database::CreateImdb(options);
}

struct ConfigSpec {
  std::string name;
  engine::DbConfig config;
};

std::vector<ConfigSpec> ConfigRotation() {
  std::vector<ConfigSpec> specs;
  specs.push_back({"default", engine::DbConfig::OurFramework()});

  engine::DbConfig left_deep = engine::DbConfig::OurFramework();
  left_deep.enable_bushy = false;
  specs.push_back({"left_deep", left_deep});

  engine::DbConfig geqo_seeded = engine::DbConfig::OurFramework();
  geqo_seeded.geqo_seed = 0xfeed;
  specs.push_back({"geqo_seed_feed", geqo_seeded});

  engine::DbConfig geqo_heavy = engine::DbConfig::OurFramework();
  geqo_heavy.geqo_threshold = 4;  // GEQO plans most generated queries
  geqo_heavy.geqo_seed = 7;
  specs.push_back({"geqo_threshold_4", geqo_heavy});

  // Scalar reference engine: together with the oracle's built-in
  // engine-differential arm (which re-runs one plan with vectorized_exec
  // flipped per query), this rotates the full soak across both engines.
  engine::DbConfig scalar_exec = engine::DbConfig::OurFramework();
  scalar_exec.vectorized_exec = false;
  specs.push_back({"scalar_exec", scalar_exec});

  // Batched engine without the Bloom pre-test: exercises the exact
  // membership path that predicate transfer normally short-circuits.
  engine::DbConfig no_transfer = engine::DbConfig::OurFramework();
  no_transfer.predicate_transfer = false;
  specs.push_back({"vectorized_no_transfer", no_transfer});

  // Hash-sharded storage as the MAIN database (the oracle also runs its
  // sharded-twin arm inside every other configuration): every check —
  // execution cross-check, reference counts, estimator sweeps — runs
  // against the sharded scan path and the per-shard buffer pools.
  engine::DbConfig sharded = engine::DbConfig::OurFramework();
  sharded.table_shards = 8;
  specs.push_back({"sharded_8", sharded});
  return specs;
}

struct ConfigResult {
  std::string name;
  fuzz::FuzzStats stats;
};

int Replay(const char* path) {
  const auto db = MakeFuzzDatabase(engine::DbConfig::OurFramework());
  fuzz::Fuzzer fuzzer(db.get(), {});
  lqo::NativePassthroughOptimizer passthrough;
  fuzzer.AddLqoArm(&passthrough);
  std::string error;
  const fuzz::CheckReport report = fuzzer.Replay(path, &error);
  for (const auto& d : report.discrepancies) {
    std::printf("DISCREPANCY %s: %s\n", d.check.c_str(), d.detail.c_str());
  }
  std::printf("%s: %lld checks, %zu discrepancies\n", path,
              static_cast<long long>(report.checks.total()),
              report.discrepancies.size());
  return report.failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--replay") return Replay(argv[i + 1]);
  }

  const int64_t queries = EnvInt("LQOLAB_FUZZ_QUERIES", 250);
  const uint64_t seed =
      static_cast<uint64_t>(EnvInt("LQOLAB_FUZZ_SEED", 42));
  const int64_t budget_ms = EnvInt("LQOLAB_FUZZ_BUDGET_MS", 0);

  std::vector<ConfigResult> results;
  const auto t0 = std::chrono::steady_clock::now();
  for (const ConfigSpec& spec : ConfigRotation()) {
    const auto db = MakeFuzzDatabase(spec.config);
    fuzz::FuzzOptions options;
    options.seed = seed;
    options.num_queries = queries;
    options.time_budget_ms = budget_ms;
    options.corpus_dir = "fuzz_soak_found";
    fuzz::Fuzzer fuzzer(db.get(), options);
    lqo::NativePassthroughOptimizer passthrough;
    lqo::BaoOptimizer bao;
    fuzzer.AddLqoArm(&passthrough);
    fuzzer.AddLqoArm(&bao);
    ConfigResult result;
    result.name = spec.name;
    result.stats = fuzzer.Run();
    std::fprintf(stderr,
                 "%s: %lld queries, %lld checks, %zu discrepancies, "
                 "%lld ms\n",
                 result.name.c_str(),
                 static_cast<long long>(result.stats.queries),
                 static_cast<long long>(result.stats.checks.total()),
                 result.stats.discrepancies.size(),
                 static_cast<long long>(result.stats.elapsed_ms));
    for (const auto& d : result.stats.discrepancies) {
      std::fprintf(stderr, "  DISCREPANCY %s: %s\n", d.check.c_str(),
                   d.detail.c_str());
    }
    results.push_back(std::move(result));
  }
  const double wall_ms =
      static_cast<double>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count());

  int64_t total_queries = 0;
  int64_t total_checks = 0;
  int64_t total_sql_round_trips = 0;
  int64_t total_discrepancies = 0;
  for (const ConfigResult& r : results) {
    total_queries += r.stats.queries;
    total_checks += r.stats.checks.total();
    total_sql_round_trips += r.stats.checks.sql_round_trip;
    total_discrepancies += static_cast<int64_t>(r.stats.discrepancies.size());
  }

  std::string json = "{\n";
  json += "  \"bench\": \"fuzz_soak\",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"queries\": " + std::to_string(total_queries) + ",\n";
  json += "  \"checks\": " + std::to_string(total_checks) + ",\n";
  json += "  \"sql_round_trips\": " + std::to_string(total_sql_round_trips) +
          ",\n";
  json += "  \"discrepancies\": " + std::to_string(total_discrepancies) +
          ",\n";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  \"queries_per_sec\": %.1f,\n  \"checks_per_sec\": %.1f,\n",
                1000.0 * static_cast<double>(total_queries) / wall_ms,
                1000.0 * static_cast<double>(total_checks) / wall_ms);
  json += buffer;
  json += "  \"configs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"config\": \"%s\", \"queries\": %lld, \"checks\": %lld, "
        "\"plans_executed\": %lld, \"timeouts\": %lld, "
        "\"discrepancies\": %zu, \"wall_ms\": %lld}%s\n",
        r.name.c_str(), static_cast<long long>(r.stats.queries),
        static_cast<long long>(r.stats.checks.total()),
        static_cast<long long>(r.stats.plans_executed),
        static_cast<long long>(r.stats.timeouts),
        r.stats.discrepancies.size(),
        static_cast<long long>(r.stats.elapsed_ms),
        i + 1 < results.size() ? "," : "");
    json += buffer;
  }
  json += "  ]\n}\n";

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", argv[1]);
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return total_discrepancies == 0 ? 0 : 1;
}
