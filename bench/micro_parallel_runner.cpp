// Microbenchmark for benchkit::ParallelRunner: measures the JOB-lite
// workload across a scale-factor sweep (--scale-factors=1,4,16 by default;
// sf 16 is a 10M+-row database), checks byte-level determinism of the
// parallel path against the serial baseline, and reports the virtual-time
// work-stealing speedup per worker count. Emits one JSON document (stdout,
// or the file given as argv[1]) so CI can archive the numbers — see
// BENCH_parallel_runner.json at the repo root for a recorded run and
// docs/benchmarks.md for the schema and its gate.
//
// Two speedup notions appear side by side, on purpose:
//  - wall_ms measures the machine. On the single-core CI container every
//    worker count collapses to ~1.0x and that is all it can show.
//  - virtual_speedup is machine-independent: the engine's own deterministic
//    per-query virtual costs scheduled by benchkit::SimulateWorkStealing
//    (the exact policy of util::ThreadPool) on N ideal cores. This is what
//    tests/check_bench_gates.sh gates on (> 1.5x at 4 workers).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "benchkit/schedule_sim.h"

namespace {

using namespace lqolab;

bool SameMeasurements(const std::vector<benchkit::QueryMeasurement>& a,
                      const std::vector<benchkit::QueryMeasurement>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.query_id != y.query_id || x.joins != y.joins ||
        x.inference_ns != y.inference_ns || x.planning_ns != y.planning_ns ||
        x.execution_ns != y.execution_ns || x.timed_out != y.timed_out ||
        x.result_rows != y.result_rows ||
        x.run_execution_ns != y.run_execution_ns ||
        x.node_rows != y.node_rows) {
      return false;
    }
  }
  return true;
}

/// A worker's task is one query's full protocol replay: planning plus every
/// protocol run (the parallel runner's unit of scheduling).
std::vector<util::VirtualNanos> TaskCosts(
    const std::vector<benchkit::QueryMeasurement>& queries) {
  std::vector<util::VirtualNanos> costs;
  costs.reserve(queries.size());
  for (const auto& q : queries) {
    util::VirtualNanos cost = q.inference_ns + q.planning_ns;
    for (util::VirtualNanos run : q.run_execution_ns) cost += run;
    costs.push_back(cost);
  }
  return costs;
}

std::vector<double> ParseScaleFactors(int argc, char** argv) {
  std::vector<double> sfs;
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--scale-factors=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) != 0) continue;
    std::string list = argv[i] + std::strlen(prefix);
    size_t pos = 0;
    while (pos < list.size()) {
      size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      const double sf = std::atof(list.substr(pos, comma - pos).c_str());
      if (sf > 0.0) sfs.push_back(sf);
      pos = comma + 1;
    }
  }
  if (sfs.empty()) sfs = {1.0, 4.0, 16.0};
  return sfs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lqolab;
  using Clock = std::chrono::steady_clock;

  const std::vector<double> scale_factors = ParseScaleFactors(argc, argv);
  const std::vector<int32_t> worker_counts = {1, 2, 4, 8};
  benchkit::Protocol protocol;

  std::string json = "{\n";
  json += "  \"bench\": \"parallel_runner\",\n";
  json += "  \"protocol_runs\": " + std::to_string(protocol.runs) + ",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"scale_factor_curve\": [\n";

  bool all_deterministic = true;
  for (size_t si = 0; si < scale_factors.size(); ++si) {
    const double sf = scale_factors[si];
    // LQOLAB_SCALE still composes in for quick smoke runs of the sweep.
    engine::Database::Options options;
    options.profile =
        datagen::ScaleProfile::ForScaleFactor(sf * bench::EnvScale(1.0));
    options.seed = bench::kSeed;
    auto db = engine::Database::CreateImdb(options);
    int64_t total_rows = 0;
    for (const auto& table : db->context().tables()) {
      total_rows += table->row_count();
    }
    const auto workload = query::BuildJobLiteWorkload(db->schema());
    std::fprintf(stderr, "sf %.3g: %lld rows, %zu queries\n", sf,
                 static_cast<long long>(total_rows), workload.size());

    // One real measurement at 4 workers drives everything: its per-query
    // virtual costs feed the schedule simulation (costs are identical at
    // every worker count — the determinism contract), its wall clock is the
    // honest single-machine number, and its steal counter shows the real
    // pool rebalancing. A serial re-measurement checks byte-identity except
    // at the largest scale factors, where it would double a minutes-long
    // run for a property the sf<=4 points already lock.
    benchkit::RunnerOptions runner_options;
    runner_options.seed = bench::kSeed;
    runner_options.parallelism = 4;
    auto start = Clock::now();
    benchkit::ParallelRunner runner(db.get(), runner_options);
    const auto parallel_result =
        benchkit::MeasureWorkload(&runner, nullptr, workload, protocol);
    const double wall_ms_p4 =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    const int64_t pool_steals = runner.steals();

    bool deterministic = true;
    double wall_ms_serial = -1.0;
    if (sf <= 4.0) {
      runner_options.parallelism = 1;
      start = Clock::now();
      const auto serial_result = benchkit::MeasureWorkload(
          db.get(), nullptr, workload, protocol, runner_options);
      wall_ms_serial =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      deterministic =
          SameMeasurements(serial_result.queries, parallel_result.queries);
      all_deterministic &= deterministic;
    }

    const std::vector<util::VirtualNanos> costs =
        TaskCosts(parallel_result.queries);
    util::VirtualNanos total_virtual_ns = 0;
    for (util::VirtualNanos cost : costs) total_virtual_ns += cost;

    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"scale_factor\": %.3g, \"total_rows\": %lld, "
                  "\"queries\": %zu,\n"
                  "     \"wall_ms_serial\": %.1f, \"wall_ms_p4\": %.1f, "
                  "\"deterministic\": %s, \"pool_steals\": %lld,\n"
                  "     \"total_virtual_ns\": %lld,\n"
                  "     \"parallelism_curve\": [\n",
                  sf, static_cast<long long>(total_rows), workload.size(),
                  wall_ms_serial, wall_ms_p4,
                  deterministic ? "true" : "false",
                  static_cast<long long>(pool_steals),
                  static_cast<long long>(total_virtual_ns));
    json += buffer;
    for (size_t wi = 0; wi < worker_counts.size(); ++wi) {
      const int32_t workers = worker_counts[wi];
      const benchkit::ScheduleResult sim =
          benchkit::SimulateWorkStealing(costs, workers);
      std::snprintf(buffer, sizeof(buffer),
                    "      {\"parallelism\": %d, "
                    "\"virtual_makespan_ns\": %lld, "
                    "\"virtual_speedup\": %.2f, \"sim_steals\": %lld}%s\n",
                    workers, static_cast<long long>(sim.makespan_ns),
                    sim.speedup(), static_cast<long long>(sim.steals),
                    wi + 1 < worker_counts.size() ? "," : "");
      json += buffer;
      std::fprintf(stderr,
                   "  sf %.3g p%d: virtual speedup %.2fx (%lld sim steals)\n",
                   sf, workers, sim.speedup(),
                   static_cast<long long>(sim.steals));
    }
    json += "     ]}";
    json += si + 1 < scale_factors.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  if (argc > 1 && argv[1][0] != '-') {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", argv[1]);
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return all_deterministic ? 0 : 1;
}
