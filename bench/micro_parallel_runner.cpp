// Microbenchmark for benchkit::ParallelRunner: wall-clock time to measure
// the JOB-lite workload at 1/2/4/8 workers, plus a byte-level determinism
// check against the serial baseline. Emits one JSON document (stdout, or
// the file given as argv[1]) so CI can archive the numbers — see
// BENCH_parallel_runner.json at the repo root for a recorded run.
//
// Note: the speedup column measures the machine, not the code. On a
// single-core container every worker count collapses to ~1.0x; the
// determinism column must hold everywhere.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "benchkit/parallel_runner.h"

namespace {

using namespace lqolab;

bool SameMeasurements(const std::vector<benchkit::QueryMeasurement>& a,
                      const std::vector<benchkit::QueryMeasurement>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.query_id != y.query_id || x.joins != y.joins ||
        x.inference_ns != y.inference_ns || x.planning_ns != y.planning_ns ||
        x.execution_ns != y.execution_ns || x.timed_out != y.timed_out ||
        x.result_rows != y.result_rows ||
        x.run_execution_ns != y.run_execution_ns ||
        x.node_rows != y.node_rows) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lqolab;
  using Clock = std::chrono::steady_clock;

  auto db = bench::MakeDatabase(0.25);
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  benchkit::Protocol protocol;

  std::fprintf(stderr, "measuring %zu queries per worker count...\n",
               workload.size());

  struct Row {
    int32_t parallelism;
    double wall_ms;
    bool deterministic;
    util::VirtualNanos total_execution_ns;
  };
  std::vector<Row> rows;
  std::vector<benchkit::QueryMeasurement> baseline;
  for (const int32_t parallelism : {1, 2, 4, 8}) {
    benchkit::RunnerOptions options;
    options.parallelism = parallelism;
    options.seed = bench::kSeed;
    const auto start = Clock::now();
    const auto result = benchkit::MeasureWorkload(db.get(), nullptr, workload,
                                                  protocol, options);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (parallelism == 1) baseline = result.queries;
    rows.push_back({parallelism, wall_ms,
                    SameMeasurements(baseline, result.queries),
                    result.total_execution_ns()});
    std::fprintf(stderr, "  parallelism %d: %.1f ms%s\n", parallelism, wall_ms,
                 rows.back().deterministic ? "" : "  [MISMATCH]");
  }

  std::string json = "{\n";
  json += "  \"bench\": \"parallel_runner\",\n";
  json += "  \"queries\": " + std::to_string(workload.size()) + ",\n";
  json += "  \"protocol_runs\": " + std::to_string(protocol.runs) + ",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"parallelism\": %d, \"wall_ms\": %.1f, "
                  "\"speedup\": %.2f, \"deterministic\": %s, "
                  "\"total_execution_virtual_ns\": %lld}%s\n",
                  row.parallelism, row.wall_ms,
                  rows[0].wall_ms / row.wall_ms,
                  row.deterministic ? "true" : "false",
                  static_cast<long long>(row.total_execution_ns),
                  i + 1 < rows.size() ? "," : "");
    json += buffer;
  }
  json += "  ]\n}\n";

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", argv[1]);
  } else {
    std::fputs(json.c_str(), stdout);
  }

  bool all_deterministic = true;
  for (const Row& row : rows) all_deterministic &= row.deterministic;
  return all_deterministic ? 0 : 1;
}
