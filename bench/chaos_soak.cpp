// Chaos soak: replays the JOB-lite serve workload through serve::QueryServer
// under a rotation of faultlib schedules — storage errors, latency spikes,
// poisoned inference, a model outage — and verifies that every injected
// fault is either contained (a typed error status) or recovered (retry,
// timeout fallback, native serving, breaker short-circuit) and that no
// fault ever corrupts an answer: every OK result must match the canonical
// fault-free row count. Emits one JSON document (stdout, or the file given
// as argv[1]); the recorded run lives at BENCH_chaos.json. Exit status is
// nonzero unless containment is 100% and zero results were corrupted.
//
// Knobs (environment):
//   LQOLAB_CHAOS_QUERIES  queries per schedule (default 250)
//   LQOLAB_CHAOS_SEED     fault-plan seed base (default 42)
//   LQOLAB_CHAOS_WORKERS  server worker threads (default 4)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/database.h"
#include "faultlib/faultlib.h"
#include "lqo/native_passthrough.h"
#include "obs/metrics.h"
#include "query/job_workload.h"
#include "serve/query_server.h"
#include "util/rng.h"
#include "util/status.h"

namespace {

using namespace lqolab;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atoll(value);
}

faultlib::FaultRule Rule(const char* point, faultlib::FaultKind kind,
                         double probability,
                         util::VirtualNanos latency_ns = 0) {
  faultlib::FaultRule rule;
  rule.point = point;
  rule.kind = kind;
  rule.probability = probability;
  rule.latency_ns = latency_ns;
  return rule;
}

struct ScheduleSpec {
  std::string name;
  faultlib::FaultPlan plan;
  serve::ServerOptions server;
  bool publish_model = false;
};

/// The four chaos scenarios. Every armed point fires with probability
/// >= 1% per hit; the fault-point catalog is in docs/robustness.md.
std::vector<ScheduleSpec> ScheduleRotation(uint64_t seed, int32_t workers) {
  serve::ServerOptions base;
  base.workers = workers;

  std::vector<ScheduleSpec> specs;
  {
    // Transient storage faults on the pglite route: bounded retry absorbs
    // most of them, the rest surface as typed kUnavailable results.
    ScheduleSpec spec;
    spec.name = "storage_errors";
    spec.plan.name = spec.name;
    spec.plan.Add(Rule("buffer.read_page", faultlib::FaultKind::kError, 0.01));
    spec.plan.Add(Rule("buffer.alloc", faultlib::FaultKind::kError, 0.01));
    spec.server = base;
    specs.push_back(std::move(spec));
  }
  {
    // Latency spikes only: every query must still succeed with the correct
    // answer, just slower in virtual time.
    ScheduleSpec spec;
    spec.name = "latency_spikes";
    spec.plan.name = spec.name;
    spec.plan.Add(Rule("buffer.read_page", faultlib::FaultKind::kLatency,
                       0.02, 200'000));
    spec.plan.Add(
        Rule("exec.node", faultlib::FaultKind::kLatency, 0.05, 100'000));
    spec.server = base;
    specs.push_back(std::move(spec));
  }
  {
    // Poisoned inference on the LQO route: the degraded plan executes, the
    // answer must be unchanged (poison may cost time, never correctness).
    ScheduleSpec spec;
    spec.name = "poisoned_inference";
    spec.plan.name = spec.name;
    spec.plan.Add(Rule("lqo.infer", faultlib::FaultKind::kPoison, 0.10));
    spec.server = base;
    spec.server.route = serve::RouteMode::kLqo;
    spec.publish_model = true;
    specs.push_back(std::move(spec));
  }
  {
    // Model outage: most inferences fail, the circuit breaker trips, sheds
    // load to the native planner, probes, and recovers once inference comes
    // back. A pinch of worker faults exercises retry under breaker churn.
    ScheduleSpec spec;
    spec.name = "model_outage";
    spec.plan.name = spec.name;
    spec.plan.Add(Rule("lqo.infer", faultlib::FaultKind::kError, 0.60));
    spec.plan.Add(Rule("serve.worker", faultlib::FaultKind::kError, 0.01));
    spec.server = base;
    spec.server.route = serve::RouteMode::kLqo;
    spec.server.breaker.failure_threshold = 3;
    spec.server.breaker.open_requests = 8;
    spec.server.breaker.probe_successes = 1;
    spec.publish_model = true;
    specs.push_back(std::move(spec));
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].plan.seed = util::MixSeed(seed, i);
  }
  return specs;
}

int64_t Percentile(std::vector<int64_t>* sorted, double p) {
  if (sorted->empty()) return 0;
  std::sort(sorted->begin(), sorted->end());
  const auto index = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[index];
}

struct ScheduleResult {
  std::string name;
  int64_t queries = 0;
  int64_t clean = 0;      ///< OK, no fault touched the query.
  int64_t recovered = 0;  ///< OK after retry/fallback/native/short-circuit.
  int64_t contained = 0;  ///< Typed non-OK status (no crash, no hang).
  int64_t corrupted = 0;  ///< OK but wrong rows — must stay zero.
  int64_t retries = 0;
  int64_t fallbacks = 0;
  int64_t infer_faults = 0;
  int64_t breaker_trips = 0;
  int64_t breaker_recoveries = 0;
  int64_t breaker_short_circuits = 0;
  std::vector<faultlib::PointStats> points;
  /// Client-visible virtual latency of the successful queries: the cost of
  /// surviving this schedule (backoff, fallbacks and latency spikes show up
  /// here; contained errors do not).
  int64_t latency_p50_ns = 0;
  int64_t latency_p95_ns = 0;
  int64_t latency_p99_ns = 0;
  double wall_ms = 0.0;
};

ScheduleResult RunSchedule(
    engine::Database* db, const std::vector<query::Query>& workload,
    const std::unordered_map<std::string, int64_t>& expected_rows,
    const ScheduleSpec& spec, int64_t queries) {
  ScheduleResult result;
  result.name = spec.name;

  serve::QueryServer server(db, spec.server);
  if (spec.publish_model) {
    server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());
  }
  faultlib::FaultInjector injector(spec.plan);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<serve::ServedQuery> served;
  served.reserve(static_cast<size_t>(queries));
  {
    faultlib::ScopedFaultInjection inject(&injector);
    std::vector<std::future<serve::ServedQuery>> futures;
    futures.reserve(static_cast<size_t>(queries));
    for (int64_t i = 0; i < queries; ++i) {
      futures.push_back(
          server.Submit(workload[static_cast<size_t>(i) % workload.size()]));
    }
    for (auto& future : futures) served.push_back(future.get());
    server.Drain();
  }
  result.wall_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()) /
      1000.0;

  std::vector<int64_t> ok_latencies;
  for (const serve::ServedQuery& q : served) {
    ++result.queries;
    if (!q.status.ok()) {
      ++result.contained;
      continue;
    }
    ok_latencies.push_back(q.latency_ns());
    if (q.result_rows != expected_rows.at(q.query_id)) {
      ++result.corrupted;
      std::fprintf(stderr, "CORRUPTED %s/%s: rows %lld, expected %lld\n",
                   spec.name.c_str(), q.query_id.c_str(),
                   static_cast<long long>(q.result_rows),
                   static_cast<long long>(expected_rows.at(q.query_id)));
      continue;
    }
    if (q.retries > 0 || q.fell_back || q.infer_fault ||
        q.breaker_short_circuit) {
      ++result.recovered;
    } else {
      ++result.clean;
    }
  }

  result.latency_p50_ns = Percentile(&ok_latencies, 0.50);
  result.latency_p95_ns = Percentile(&ok_latencies, 0.95);
  result.latency_p99_ns = Percentile(&ok_latencies, 0.99);

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  result.retries = metrics.Get(obs::Counter::kServeRetries);
  result.fallbacks = metrics.Get(obs::Counter::kServeFallbacks);
  result.infer_faults = metrics.Get(obs::Counter::kServeInferFaults);
  result.breaker_trips = metrics.Get(obs::Counter::kServeBreakerTrips);
  result.breaker_recoveries =
      metrics.Get(obs::Counter::kServeBreakerRecoveries);
  result.breaker_short_circuits =
      metrics.Get(obs::Counter::kServeBreakerShortCircuits);
  result.points = injector.Stats();
  server.Shutdown();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t queries_per_schedule = EnvInt("LQOLAB_CHAOS_QUERIES", 250);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("LQOLAB_CHAOS_SEED", 42));
  const int32_t workers =
      static_cast<int32_t>(EnvInt("LQOLAB_CHAOS_WORKERS", 4));

  engine::Database::Options db_options;
  db_options.profile = datagen::ScaleProfile::Small();
  db_options.seed = 42;
  const auto db = engine::Database::CreateImdb(db_options);
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  // The canonical fault-free answer per query (row counts are independent
  // of the replay salt, so one clean pass covers every occurrence).
  std::unordered_map<std::string, int64_t> expected_rows;
  {
    const auto replica = db->CloneContextForWorker();
    for (const query::Query& q : workload) {
      const auto planned = replica->PlanQuery(q);
      replica->BeginQueryReplay(db->seed(), q);
      expected_rows[q.id] =
          replica->ExecutePlan(q, planned.plan, planned.planning_ns)
              .result_rows;
    }
  }

  std::vector<ScheduleResult> results;
  for (const ScheduleSpec& spec : ScheduleRotation(seed, workers)) {
    ScheduleResult result = RunSchedule(db.get(), workload, expected_rows,
                                        spec, queries_per_schedule);
    std::fprintf(stderr,
                 "%s: %lld queries (%lld clean, %lld recovered, "
                 "%lld contained, %lld corrupted), %lld retries, "
                 "%lld fallbacks, %lld trips, %lld recoveries, %.0f ms\n",
                 result.name.c_str(), static_cast<long long>(result.queries),
                 static_cast<long long>(result.clean),
                 static_cast<long long>(result.recovered),
                 static_cast<long long>(result.contained),
                 static_cast<long long>(result.corrupted),
                 static_cast<long long>(result.retries),
                 static_cast<long long>(result.fallbacks),
                 static_cast<long long>(result.breaker_trips),
                 static_cast<long long>(result.breaker_recoveries),
                 result.wall_ms);
    results.push_back(std::move(result));
  }

  int64_t total = 0;
  int64_t corrupted = 0;
  int64_t handled = 0;  // clean + recovered + contained
  int64_t fault_fires = 0;
  for (const ScheduleResult& r : results) {
    total += r.queries;
    corrupted += r.corrupted;
    handled += r.clean + r.recovered + r.contained;
    for (const faultlib::PointStats& p : r.points) fault_fires += p.fires;
  }
  const double containment_pct =
      total == 0
          ? 0.0
          : 100.0 * static_cast<double>(handled) / static_cast<double>(total);

  char buffer[512];
  std::string json = "{\n";
  json += "  \"bench\": \"chaos_soak\",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"workers\": " + std::to_string(workers) + ",\n";
  json += "  \"queries\": " + std::to_string(total) + ",\n";
  json += "  \"fault_fires\": " + std::to_string(fault_fires) + ",\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"containment_pct\": %.1f,\n  \"corrupted\": %lld,\n",
                containment_pct, static_cast<long long>(corrupted));
  json += buffer;
  json += "  \"schedules\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScheduleResult& r = results[i];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"schedule\": \"%s\", \"queries\": %lld, \"clean\": %lld, "
        "\"recovered\": %lld, \"contained\": %lld, \"corrupted\": %lld, "
        "\"retries\": %lld, \"fallbacks\": %lld, \"infer_faults\": %lld, "
        "\"breaker\": {\"trips\": %lld, \"recoveries\": %lld, "
        "\"short_circuits\": %lld}, \"wall_ms\": %.1f,\n",
        r.name.c_str(), static_cast<long long>(r.queries),
        static_cast<long long>(r.clean), static_cast<long long>(r.recovered),
        static_cast<long long>(r.contained),
        static_cast<long long>(r.corrupted), static_cast<long long>(r.retries),
        static_cast<long long>(r.fallbacks),
        static_cast<long long>(r.infer_faults),
        static_cast<long long>(r.breaker_trips),
        static_cast<long long>(r.breaker_recoveries),
        static_cast<long long>(r.breaker_short_circuits), r.wall_ms);
    json += buffer;
    std::snprintf(buffer, sizeof(buffer),
                  "     \"fallback_rate\": %.4f, \"latency_virtual_ns\": "
                  "{\"p50\": %lld, \"p95\": %lld, \"p99\": %lld},\n",
                  r.queries == 0 ? 0.0
                                 : static_cast<double>(r.fallbacks) /
                                       static_cast<double>(r.queries),
                  static_cast<long long>(r.latency_p50_ns),
                  static_cast<long long>(r.latency_p95_ns),
                  static_cast<long long>(r.latency_p99_ns));
    json += buffer;
    json += "     \"fault_points\": [";
    for (size_t p = 0; p < r.points.size(); ++p) {
      const faultlib::PointStats& point = r.points[p];
      std::snprintf(buffer, sizeof(buffer),
                    "{\"point\": \"%s\", \"kind\": \"%s\", \"hits\": %lld, "
                    "\"fires\": %lld}%s",
                    point.point.c_str(), faultlib::FaultKindName(point.kind),
                    static_cast<long long>(point.hits),
                    static_cast<long long>(point.fires),
                    p + 1 < r.points.size() ? ", " : "");
      json += buffer;
    }
    json += "]}";
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", argv[1]);
  } else {
    std::fputs(json.c_str(), stdout);
  }

  const bool pass = corrupted == 0 && handled == total && total > 0;
  std::fprintf(stderr, "chaos_soak: %lld/%lld handled (%.1f%%), %s\n",
               static_cast<long long>(handled), static_cast<long long>(total),
               containment_pct, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
