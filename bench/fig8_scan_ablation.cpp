// Figure 8 / §8.4: ablation of bitmap and tid scans. Balsa and LEON disable
// both without stated reasons; the paper shows the toolkit matters: some
// queries speed up when the scans are disabled (28a: 5.5x) while others
// slow down (30c: 2.4x), sometimes within the same family.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "benchkit/measurement.h"
#include "util/statistics.h"

int main() {
  using namespace lqolab;
  bench::PrintHeader(
      "Figure 8", "paper §8.4",
      "pglite execution times with bitmap+tid scans enabled vs disabled; "
      "queries whose delta exceeds the report threshold.");

  auto db = bench::MakeDatabase();
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  benchkit::Protocol protocol;
  protocol.runs = 6;
  protocol.take = 2;

  auto measure_all = [&](const engine::DbConfig& config) {
    db->SetConfig(config);
    db->DropCaches();
    std::vector<benchkit::QueryMeasurement> measurements;
    for (const auto& q : workload) {
      measurements.push_back(benchkit::MeasureNative(db.get(), q, protocol));
    }
    return measurements;
  };

  const auto enabled = measure_all(engine::DbConfig::OurFramework());
  engine::DbConfig no_scans = engine::DbConfig::OurFramework();
  no_scans.enable_bitmapscan = false;
  no_scans.enable_tidscan = false;
  const auto disabled = measure_all(no_scans);

  // Report queries whose delta exceeds a threshold (the paper uses 250 ms
  // on its hardware; we scale by the ratio of total workload runtimes).
  util::VirtualNanos total = 0;
  for (const auto& m : enabled) total += m.execution_ns;
  const util::VirtualNanos threshold = std::max<util::VirtualNanos>(
      total / 500, 2 * util::kNanosPerMilli);

  struct Delta {
    double factor;  // >1: disabling is slower
    size_t index;
  };
  std::vector<Delta> deltas;
  for (size_t i = 0; i < workload.size(); ++i) {
    const auto diff = std::llabs(enabled[i].execution_ns -
                                 disabled[i].execution_ns);
    if (diff < threshold) continue;
    deltas.push_back({static_cast<double>(disabled[i].execution_ns) /
                          static_cast<double>(std::max<util::VirtualNanos>(
                              1, enabled[i].execution_ns)),
                      i});
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const Delta& a, const Delta& b) { return a.factor < b.factor; });

  util::TablePrinter table({"query", "scans enabled", "scans disabled",
                            "disable effect", "significant"});
  int significant_speedups = 0;
  int significant_slowdowns = 0;
  for (const auto& delta : deltas) {
    const auto& on = enabled[delta.index];
    const auto& off = disabled[delta.index];
    std::vector<double> runs_on;
    std::vector<double> runs_off;
    for (size_t r = 2; r < on.run_execution_ns.size(); ++r) {
      runs_on.push_back(static_cast<double>(on.run_execution_ns[r]));
      runs_off.push_back(static_cast<double>(off.run_execution_ns[r]));
    }
    const auto sig = util::WelchTTest(runs_on, runs_off);
    const bool faster = delta.factor < 1.0;
    if (sig.significant && faster) ++significant_speedups;
    if (sig.significant && !faster) ++significant_slowdowns;
    table.AddRow(
        {on.query_id, util::FormatDuration(on.execution_ns),
         util::FormatDuration(off.execution_ns),
         faster ? util::FormatFactor(1.0 / delta.factor) + " faster"
                : util::FormatFactor(delta.factor) + " slower",
         sig.significant ? "yes" : "no"});
  }
  table.Print();

  std::printf("\n%zu queries above the %s reporting threshold; "
              "%d significant speedups and %d significant slowdowns from "
              "disabling.\n",
              deltas.size(), util::FormatDuration(threshold).c_str(),
              significant_speedups, significant_slowdowns);
  std::printf("\npaper shape: disabling helps some queries (28a 5.5x) and "
              "hurts others (30c 2.4x), sometimes within one family => "
              "restricting the toolkit is a data-dependent gamble "
              "(Lemma 3.1). %s\n",
              (significant_speedups > 0 && significant_slowdowns > 0)
                  ? "[REPRODUCED]"
                  : "[check thresholds]");
  return 0;
}
