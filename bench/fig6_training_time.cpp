// Figure 6: end-to-end training time vs combined workload runtime. The
// paper's counterintuitive finding: methods that spend MORE time training
// (Bao ~2h < Neo 20-40h < Balsa 40-85h < LEON 110-130h) reach WORSE
// results, explained by how many plans each method executes or estimates.
//
// One split per sampler is trained here (the full grid lives in fig5).
// Flags: --trace <path> writes a JSONL trace with per-episode training
// telemetry (loss, plans executed, time share) per method and split.

#include <memory>

#include "bench_common.h"
#include "benchkit/parallel_runner.h"
#include "benchkit/splits.h"
#include "lqo/balsa.h"
#include "lqo/bao.h"
#include "lqo/leon.h"
#include "lqo/neo.h"

int main(int argc, char** argv) {
  using namespace lqolab;
  bench::PrintHeader(
      "Figure 6", "paper §8.2.2",
      "End-to-end training time vs combined test-workload runtime; one dot "
      "per (method, split).");
  bench::BenchTrace trace(argc, argv);

  auto db = bench::MakeDatabase(0.25);
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  const auto all_splits = benchkit::PaperSplits(workload);
  // One split per sampler: indices 0, 3, 6.
  std::vector<benchkit::Split> splits = {all_splits[0], all_splits[3],
                                         all_splits[6]};

  benchkit::Protocol protocol;
  util::TablePrinter table({"method", "split", "training time",
                            "plans executed", "planner/cost calls",
                            "workload runtime (e2e)"});

  struct MethodTotals {
    util::VirtualNanos train = 0;
    util::VirtualNanos runtime = 0;
    int64_t plans = 0;
  };
  std::map<std::string, MethodTotals> totals;

  for (const auto& split : splits) {
    const auto train = benchkit::SelectQueries(workload, split.train_indices);
    const auto test = benchkit::SelectQueries(workload, split.test_indices);

    auto pg = benchkit::MeasureWorkload(db.get(), nullptr, test,
                                        protocol, bench::MeasureOptions());
    pg.split = split.name;
    trace.Write(pg);
    table.AddRow({"pglite", split.name, "0 (no training)", "0", "0",
                  util::FormatDuration(pg.total_end_to_end_ns())});

    std::vector<std::unique_ptr<lqo::LearnedOptimizer>> methods;
    {
      const int32_t workers = bench::TrainParallelism();
      lqo::BaoOptimizer::Options bao;
      bao.epochs = 3;
      bao.train_epochs = 12;
      bao.parallelism = workers;
      methods.push_back(std::make_unique<lqo::BaoOptimizer>(bao));
      lqo::NeoOptimizer::Options neo;
      neo.iterations = 2;
      neo.train_epochs = 12;
      neo.parallelism = workers;
      methods.push_back(std::make_unique<lqo::NeoOptimizer>(neo));
      lqo::BalsaOptimizer::Options balsa;
      balsa.pretrain_samples_per_query = 8;
      balsa.pretrain_epochs = 2;
      balsa.iterations = 3;
      balsa.train_epochs = 8;
      balsa.parallelism = workers;
      methods.push_back(std::make_unique<lqo::BalsaOptimizer>(balsa));
      lqo::LeonOptimizer::Options leon;
      leon.beam_masks = 10;
      leon.topk_per_mask = 2;
      leon.exec_per_query = 2;
      leon.pair_epochs = 4;
      leon.parallelism = workers;
      methods.push_back(std::make_unique<lqo::LeonOptimizer>(leon));
    }
    for (auto& method : methods) {
      const lqo::TrainReport report = method->Train(train, db.get());
      auto result = benchkit::MeasureWorkload(
          db.get(), method.get(), test, protocol, bench::MeasureOptions());
      result.split = split.name;
      result.train_report = report;
      trace.Write(result);
      table.AddRow({method->name(), split.name,
                    util::FormatDuration(report.training_time_ns),
                    std::to_string(report.plans_executed),
                    std::to_string(report.planner_calls),
                    util::FormatDuration(result.total_end_to_end_ns())});
      totals[method->name()].train += report.training_time_ns;
      totals[method->name()].runtime += result.total_end_to_end_ns();
      totals[method->name()].plans += report.plans_executed;
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf(" %s done\n", split.name.c_str());
  }
  std::printf("\n");
  table.Print();

  std::printf("\nTraining-time ordering (paper: Bao << Neo < Balsa < LEON):\n");
  util::TablePrinter order({"method", "total training time",
                            "total plans executed", "total runtime"});
  for (const char* name : {"bao", "neo", "balsa", "leon"}) {
    order.AddRow({name, util::FormatDuration(totals[name].train),
                  std::to_string(totals[name].plans),
                  util::FormatDuration(totals[name].runtime)});
  }
  order.Print();
  const bool reproduced = totals["bao"].train < totals["neo"].train &&
                          totals["neo"].train < totals["balsa"].train &&
                          totals["balsa"].train < totals["leon"].train;
  std::printf("\nmore training time => not better results%s\n",
              reproduced ? " [ordering REPRODUCED]" : " [ordering differs]");
  trace.Finish();
  return 0;
}
