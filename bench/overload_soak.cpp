// Open-loop overload soak (docs/overload.md): drives serve::QueryServer
// with a seeded non-blocking arrival process (loadgen::OpenLoopRunner) and
// records how tail latency, deadline-miss rate and goodput respond as
// offered load crosses measured capacity. Four experiments, one JSON
// document (stdout, or the file given as argv[1]; see BENCH_overload.json
// at the repo root for a recorded run):
//
//   1. Load sweep: offered multiples {0.5, 1.0, 1.5} x capacity, with and
//      without deadline-aware admission shedding
//      (ServerOptions::shed_on_predicted_miss). Gate: at 1.5x capacity,
//      shedding must preserve >= 2x the goodput of the no-shedding server —
//      the textbook goodput-collapse-vs-load-control result.
//   2. Reproducibility: the 1.5x shedding arm re-runs and must produce a
//      bit-identical completion fingerprint (all virtual metrics are
//      scheduling-independent; see serve/dispatcher.h).
//   3. Replan pair: a keyed "stats.estimate" poison schedule (catastrophic
//      1e-4 underestimates on a seeded quarter of the (query, subplan) key
//      space) degrades the planner, then the same offered load runs with
//      DbConfig::adaptive_replan off and on. Gate: mid-query cancel-and-
//      replan must beat straight-through execution at p99.
//   4. Replan differential: every JOB-lite query executes its clean plan
//      straight through and via ExecutePlanAdaptive under the poison; the
//      result rows must be byte-identical (replans may only cost time).
//
// All latency/goodput figures are virtual-time and machine-independent;
// only wall_ms measures the machine. --quick shrinks the arrival counts
// for ctest.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "faultlib/faultlib.h"
#include "loadgen/open_loop.h"
#include "util/rng.h"

namespace {

using namespace lqolab;
using loadgen::OpenLoopOptions;
using loadgen::OpenLoopResult;
using loadgen::OpenLoopRunner;
using loadgen::RateProfile;
using loadgen::TenantSpec;

/// The standard three-tenant mix: an interactive tenant with a hot Zipf
/// head, a dashboard tenant with milder skew, and a near-uniform batch
/// tenant. Deadline budgets self-calibrate from the measured mean service
/// time (OpenLoopOptions::deadline_service_multiple).
std::vector<TenantSpec> StandardTenants() {
  return {
      {"interactive", /*weight=*/3.0, /*zipf_s=*/1.2, /*deadline=*/0},
      {"dashboard", /*weight=*/2.0, /*zipf_s=*/0.8, /*deadline=*/0},
      {"batch", /*weight=*/1.0, /*zipf_s=*/0.3, /*deadline=*/0},
  };
}

OpenLoopOptions BaseOptions(int64_t target_arrivals) {
  OpenLoopOptions options;
  options.profile = RateProfile::Constant(100.0);  // base_qps overridden
  options.tenants = StandardTenants();
  options.virtual_workers = 4;
  options.queue_capacity = 4096;
  options.target_arrivals = target_arrivals;
  options.deadline_service_multiple = 8.0;
  options.seed = bench::kSeed;
  return options;
}

/// The estimator-poison schedule of the replan experiments: keyed kPoison
/// on "stats.estimate", so the fire decision is a pure function of the
/// (query, subplan-mask) key — identical for every thread interleaving.
faultlib::FaultPlan PoisonPlan() {
  faultlib::FaultPlan plan;
  plan.name = "estimate_poison";
  plan.seed = util::MixSeed(bench::kSeed, 0x9e150'7150ull);
  faultlib::FaultRule rule;
  rule.point = "stats.estimate";
  rule.kind = faultlib::FaultKind::kPoison;
  rule.probability = 0.25;
  rule.poison_scale = 1e-4;
  plan.Add(rule);
  return plan;
}

struct SweepPoint {
  double multiple = 0.0;
  bool shed = false;
  OpenLoopResult result;
  double wall_ms = 0.0;
};

std::string SweepPointJson(const SweepPoint& point) {
  const loadgen::TenantSlo& agg = point.result.report.aggregate;
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"offered_multiple\": %.2f, \"shed\": %s, \"arrivals\": %lld, "
      "\"offered_qps\": %.1f, \"capacity_qps\": %.1f, "
      "\"ok\": %lld, \"shed_count\": %lld, \"rejected\": %lld, "
      "\"timed_out\": %lld, \"failed\": %lld, \"deadline_missed\": %lld, "
      "\"goodput_qps\": %.1f, \"miss_rate\": %.4f, "
      "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p99_queue_ms\": %.3f, "
      "\"wall_ms\": %.0f}",
      point.multiple, point.shed ? "true" : "false",
      static_cast<long long>(point.result.arrivals),
      point.result.offered_qps, point.result.capacity_qps,
      static_cast<long long>(agg.ok), static_cast<long long>(agg.shed),
      static_cast<long long>(agg.rejected),
      static_cast<long long>(agg.timed_out),
      static_cast<long long>(agg.failed),
      static_cast<long long>(agg.deadline_missed), agg.goodput_qps,
      agg.miss_rate, agg.p50_total_ms, agg.p99_total_ms, agg.p99_queue_ms,
      point.wall_ms);
  return buffer;
}

double WallMs(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lqolab;

  bool quick = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }

  auto db = bench::MakeDatabase(quick ? 0.1 : 0.25);
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  const int64_t target_arrivals = quick ? 300 : 600;
  OpenLoopRunner runner(db.get(), workload);

  // --- 1. Load sweep: offered multiple x shedding policy ------------------
  std::vector<SweepPoint> sweep;
  for (const double multiple : {0.5, 1.0, 1.5}) {
    for (const bool shed : {false, true}) {
      OpenLoopOptions options = BaseOptions(target_arrivals);
      options.offered_multiple = multiple;
      options.shed_on_predicted_miss = shed;
      const auto start = std::chrono::steady_clock::now();
      SweepPoint point;
      point.multiple = multiple;
      point.shed = shed;
      point.result = runner.Run(options);
      point.wall_ms = WallMs(start);
      const loadgen::TenantSlo& agg = point.result.report.aggregate;
      std::fprintf(stderr,
                   "  sweep x%.1f shed=%d: ok=%lld shed=%lld missed=%lld "
                   "goodput=%.1fqps p99=%.2fms\n",
                   multiple, shed ? 1 : 0, static_cast<long long>(agg.ok),
                   static_cast<long long>(agg.shed),
                   static_cast<long long>(agg.deadline_missed),
                   agg.goodput_qps, agg.p99_total_ms);
      sweep.push_back(std::move(point));
    }
  }
  const SweepPoint& overload_noshed = sweep[4];  // 1.5x, shed=false
  const SweepPoint& overload_shed = sweep[5];    // 1.5x, shed=true
  const double shed_goodput_ratio =
      overload_shed.result.report.aggregate.goodput_qps /
      std::max(1e-9, overload_noshed.result.report.aggregate.goodput_qps);

  // --- 2. Reproducibility: re-run the overloaded shedding arm -------------
  bool reproducible = false;
  {
    OpenLoopOptions options = BaseOptions(target_arrivals);
    options.offered_multiple = 1.5;
    options.shed_on_predicted_miss = true;
    const OpenLoopResult rerun = runner.Run(options);
    reproducible = rerun.fingerprint == overload_shed.result.fingerprint &&
                   rerun.arrivals == overload_shed.result.arrivals;
    std::fprintf(stderr, "  reproducible: %s\n", reproducible ? "yes" : "NO");
  }

  // --- 3. Replan pair: poisoned estimator, adaptive_replan off vs on ------
  const engine::DbConfig base_config = db->config();
  faultlib::FaultInjector poison(PoisonPlan());
  OpenLoopResult replan_off;
  OpenLoopResult replan_on;
  {
    faultlib::ScopedFaultInjection inject(&poison);
    OpenLoopOptions options = BaseOptions(target_arrivals);
    options.offered_multiple = 0.9;
    options.shed_on_predicted_miss = false;

    replan_off = runner.Run(options);

    // Same aggressive trigger as the differential below: with spooled-
    // intermediate reuse making an abandoned prefix cheap to revisit, a low
    // threshold catches divergence early enough to matter at the tail.
    engine::DbConfig adaptive = base_config;
    adaptive.adaptive_replan = true;
    adaptive.replan_qerror_threshold = 4.0;
    adaptive.replan_min_rows = 1;
    db->SetConfig(adaptive);
    replan_on = runner.Run(options);
    db->SetConfig(base_config);
  }
  const double off_p99 = replan_off.report.aggregate.p99_total_ms;
  const double on_p99 = replan_on.report.aggregate.p99_total_ms;
  std::fprintf(stderr,
               "  replan pair: p99 off=%.2fms on=%.2fms (replans=%lld)\n",
               off_p99, on_p99,
               static_cast<long long>(replan_on.report.aggregate.replans));

  // --- 4. Replan differential: byte-identical results under poison --------
  bool differential_identical = true;
  int64_t differential_replans = 0;
  {
    // The clean baseline plans and runs without injection; both poisoned
    // arms *plan under the poison* (the serve scenario: a degraded
    // estimator produced the plan) and execute it straight through vs
    // adaptively. Rows must agree across all three.
    engine::DbConfig adaptive = base_config;
    adaptive.adaptive_replan = true;
    adaptive.replan_qerror_threshold = 4.0;
    adaptive.replan_min_rows = 1;
    double clean_ns = 0.0, straight_ns = 0.0, adaptive_ns = 0.0;
    for (const query::Query& q : workload) {
      const auto clean_replica = db->CloneContextForWorker();
      clean_replica->BeginQueryReplay(bench::kSeed, q);
      const engine::Database::Planned clean_planned =
          clean_replica->PlanQuery(q);
      clean_replica->BeginQueryReplay(bench::kSeed, q);
      const engine::QueryRun clean =
          clean_replica->ExecutePlan(q, clean_planned.plan);
      clean_ns += static_cast<double>(clean.execution_ns);

      faultlib::ScopedFaultInjection inject(&poison);
      const auto poisoned_replica = db->CloneContextForWorker();
      poisoned_replica->BeginQueryReplay(bench::kSeed, q);
      const engine::Database::Planned poisoned_planned =
          poisoned_replica->PlanQuery(q);
      poisoned_replica->BeginQueryReplay(bench::kSeed, q);
      const engine::QueryRun straight =
          poisoned_replica->ExecutePlan(q, poisoned_planned.plan);
      straight_ns += static_cast<double>(straight.execution_ns);

      const auto adaptive_replica = db->CloneContextForWorker();
      adaptive_replica->SetConfig(adaptive);
      adaptive_replica->BeginQueryReplay(bench::kSeed, q);
      const engine::QueryRun replanned =
          adaptive_replica->ExecutePlanAdaptive(q, poisoned_planned.plan);
      adaptive_ns += static_cast<double>(replanned.execution_ns);
      differential_replans += replanned.replans;
      if (replanned.result_rows != clean.result_rows ||
          straight.result_rows != clean.result_rows ||
          !replanned.status.ok() || !straight.status.ok() ||
          !clean.status.ok()) {
        differential_identical = false;
        std::fprintf(
            stderr,
            "  DIFFERENTIAL MISMATCH %s: clean=%lld straight=%lld "
            "replanned=%lld\n",
            q.id.c_str(), static_cast<long long>(clean.result_rows),
            static_cast<long long>(straight.result_rows),
            static_cast<long long>(replanned.result_rows));
      }
    }
    std::fprintf(stderr,
                 "  replan differential: %zu queries, %lld replans, %s "
                 "(exec sums: clean=%.1fms poisoned=%.1fms adaptive=%.1fms)\n",
                 workload.size(), static_cast<long long>(differential_replans),
                 differential_identical ? "identical" : "MISMATCH",
                 clean_ns / 1e6, straight_ns / 1e6, adaptive_ns / 1e6);
  }

  std::string json = "{\n";
  json += "  \"bench\": \"overload_soak\",\n";
  json += "  \"seed\": " + std::to_string(bench::kSeed) + ",\n";
  json += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  json += "  \"workload_queries\": " + std::to_string(workload.size()) + ",\n";
  json += "  \"virtual_workers\": 4,\n";
  json += "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    json += SweepPointJson(sweep[i]);
    json += i + 1 < sweep.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"shed_goodput_ratio\": %.2f,\n"
      "  \"reproducible\": %s,\n"
      "  \"replan_pair\": {\"offered_multiple\": 0.9, "
      "\"no_replan_p99_ms\": %.3f, \"replan_p99_ms\": %.3f, "
      "\"no_replan_miss_rate\": %.4f, \"replan_miss_rate\": %.4f, "
      "\"replans\": %lld},\n"
      "  \"replan_differential_identical\": %s,\n"
      "  \"replan_differential_replans\": %lld\n",
      shed_goodput_ratio, reproducible ? "true" : "false", off_p99, on_p99,
      replan_off.report.aggregate.miss_rate,
      replan_on.report.aggregate.miss_rate,
      static_cast<long long>(replan_on.report.aggregate.replans),
      differential_identical ? "true" : "false",
      static_cast<long long>(differential_replans));
  json += buffer;
  json += "}\n";

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path);
  } else {
    std::fputs(json.c_str(), stdout);
  }

  // Self-gates (mirrored by tests/check_bench_gates.sh on the recorded
  // JSON): load shedding must preserve goodput past saturation, replans
  // must beat straight-through tails under a poisoned estimator, replans
  // must actually fire, and results must be reproducible and identical.
  bool ok = true;
  if (shed_goodput_ratio < 2.0) {
    std::fprintf(stderr, "GATE FAILED: shed_goodput_ratio %.2f < 2.0\n",
                 shed_goodput_ratio);
    ok = false;
  }
  if (on_p99 >= off_p99) {
    std::fprintf(stderr, "GATE FAILED: replan p99 %.2f >= no-replan %.2f\n",
                 on_p99, off_p99);
    ok = false;
  }
  // Plan feedback corrects hot plans during warmup, so the open-loop phase
  // itself may (rightly) replan little; the differential arm is where the
  // mechanism must demonstrably fire.
  if (differential_replans <= 0) {
    std::fprintf(stderr, "GATE FAILED: differential arm never replanned\n");
    ok = false;
  }
  if (!reproducible) {
    std::fprintf(stderr, "GATE FAILED: fingerprint not reproducible\n");
    ok = false;
  }
  if (!differential_identical) {
    std::fprintf(stderr, "GATE FAILED: replan differential mismatch\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
