// Table 1: the main encoding components of recent learned query optimizers
// (query encoding vs plan encoding vs training specifics). The four methods
// reimplemented in this repository contribute their own EncodingSpec; the
// other four rows carry the survey values from the paper.

#include "bench_common.h"
#include "lqo/interface.h"

int main() {
  using namespace lqolab;
  bench::PrintHeader("Table 1", "paper §4",
                     "Main encoding components of LQOs (query encoding, plan "
                     "encoding, training specifics).");

  const auto rows = lqo::Table1EncodingSpecs();

  util::TablePrinter query_enc({"LQO", "Adjacency Matrix", "Numerical Attrs",
                                "Text Attrs", "Aggregation"});
  for (const auto& row : rows) {
    query_enc.AddRow({row.name, row.adjacency_matrix,
                      row.numerical_attributes, row.text_attributes,
                      row.encoding_aggregation});
  }
  std::printf("Query encoding:\n");
  query_enc.Print();

  util::TablePrinter plan_enc({"LQO", "Join Type", "Scan Type",
                               "Table Identifier", "Extra Data"});
  for (const auto& row : rows) {
    plan_enc.AddRow({row.name, row.join_type, row.scan_type,
                     row.table_identifier, row.extra_data});
  }
  std::printf("\nPlan encoding:\n");
  plan_enc.Print();

  util::TablePrinter training({"LQO", "ML Model", "Plan Processing",
                               "Model Output", "Testing", "DBMS Integration"});
  for (const auto& row : rows) {
    training.AddRow({row.name, row.ml_model, row.plan_processing,
                     row.model_output, row.testing, row.dbms_integration});
  }
  std::printf("\nTraining specifics:\n");
  training.Print();

  std::printf(
      "\nNote (§4.1): Bao and Lero carry no table identifier — the encoding "
      "style whose invariance violation the covariate-shift experiment "
      "(Fig. 7) stresses. Rows for Neo, Bao, Balsa and LEON come from the "
      "reimplementations in src/lqo; the rest reproduce the survey.\n");
  return 0;
}
