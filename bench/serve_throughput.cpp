// Throughput/latency benchmark for serve::QueryServer: drives the JOB-lite
// workload through each routing arm (pglite, lqo, lqo with a tight deadline
// over deliberately degraded plans, shadow) for several epochs, with the
// plan cache on and off, publishing a model mid-load on the lqo arm. Emits
// one JSON document (stdout, or the file given as argv[1]) with wall-clock
// QPS, virtual-latency percentiles, cache hit rate, fallback rate and a
// 1-vs-N-worker determinism verdict per arm — see BENCH_serve.json at the
// repo root for a recorded run.
//
// Wall-clock QPS measures the machine; the virtual-time columns and the
// determinism verdicts are machine-independent.
//
// --sql adds the SQL-route arms: queries submitted as rendered SQL text
// (QueryServer::SubmitSql), whose plan cache keys on the normalized
// template (constants stripped). The varied-literal pair is the point:
// fresh literals every epoch leave the template cache hot (sql_varied) but
// make per-literal keys miss every time (struct_varied) — the hit-rate gap
// between those two arms is the template-keying win, and SQL QPS must stay
// within noise of the struct path once the cache is warm.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "loadgen/open_loop.h"
#include "lqo/native_passthrough.h"
#include "serve/query_server.h"
#include "util/statistics.h"

namespace {

using namespace lqolab;
using serve::QueryServer;
using serve::RouteMode;
using serve::ServedQuery;
using serve::ServerOptions;

/// A deliberately bad model for the fallback arm: degrades every operator
/// of the native plan to the slowest choice, so execution blows through the
/// arm's tight deadline and exercises the timeout-fallback protocol.
class SlowPlanOptimizer : public lqo::NativePassthroughOptimizer {
 public:
  std::string name() const override { return "slow_plan"; }

  lqo::Prediction Plan(const query::Query& q,
                       engine::Database* db) override {
    lqo::Prediction prediction = NativePassthroughOptimizer::Plan(q, db);
    for (optimizer::PlanNode& node : prediction.plan.nodes) {
      if (node.type == optimizer::PlanNode::Type::kScan) {
        node.scan_type = optimizer::ScanType::kSeq;
        node.index_column = catalog::kInvalidColumn;
      } else {
        node.algo = optimizer::JoinAlgo::kNestLoop;
      }
    }
    return prediction;
  }
};

struct ArmSpec {
  std::string name;
  RouteMode route;
  bool plan_cache;
  util::VirtualNanos lqo_deadline_ns;
  bool slow_model;     // publish SlowPlanOptimizer instead of passthrough
  bool swap_mid_load;  // publish a fresh model after the first epoch
  bool no_breaker = false;  // disable the circuit breaker for this arm
  bool sql = false;             // submit rendered SQL text via SubmitSql
  bool vary_literals = false;   // fresh literals every epoch (template
                                // cache still hits; per-literal keys miss)
};

/// Epoch > 0: nudges every closed range bound so the literal text differs
/// while the normalized template (and the join graph) stays identical.
/// Open-range sentinels (|v| >= 2e9) and non-range predicates are left
/// alone, so the query stays in the grammar the SQL frontend round-trips.
query::Query VaryLiterals(query::Query q, int epoch) {
  if (epoch == 0) return q;
  constexpr int32_t kSentinel = 1'900'000'000;
  for (query::Predicate& p : q.predicates) {
    if (p.kind != query::Predicate::Kind::kRange) continue;
    if (p.int_values.size() != 2) continue;
    if (p.int_values[1] < kSentinel &&
        p.int_values[1] < std::numeric_limits<int32_t>::max() - epoch) {
      p.int_values[1] += epoch;  // widen: never inverts the range
    } else if (p.int_values[0] > -kSentinel &&
               p.int_values[0] >
                   std::numeric_limits<int32_t>::min() + epoch + 1) {
      p.int_values[0] -= epoch;
    }
  }
  return q;
}

struct ArmResult {
  ArmSpec spec;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double avg_planning_ns = 0.0;
  double cache_hit_rate = 0.0;
  double fallback_rate = 0.0;
  int64_t queries = 0;
  int64_t fallbacks = 0;
  uint64_t model_version = 0;
  bool deterministic = false;
};

std::vector<ServedQuery> DriveArm(engine::Database* db,
                                  const std::vector<query::Query>& workload,
                                  const ArmSpec& spec, int epochs,
                                  int32_t workers, double* wall_ms) {
  ServerOptions options;
  options.workers = workers;
  options.route = spec.route;
  if (!spec.plan_cache) options.cache.capacity_per_shard = 0;
  options.lqo_deadline_ns = spec.lqo_deadline_ns;
  if (spec.no_breaker) {
    // Which queries a tripped breaker short-circuits depends on the order
    // worker threads report their failures, so a breaker-guarded arm is
    // not comparable query-for-query against the single-worker replay.
    // Arms that measure the fallback protocol itself keep the breaker out
    // of the way (chaos_soak covers breaker behavior separately).
    options.breaker.failure_threshold = std::numeric_limits<int32_t>::max();
  }
  QueryServer server(db, options);
  if (spec.route != RouteMode::kPglite) {
    if (spec.slow_model) {
      server.PublishModel(std::make_shared<SlowPlanOptimizer>());
    } else {
      server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());
    }
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  std::vector<std::future<ServedQuery>> futures;
  futures.reserve(workload.size() * static_cast<size_t>(epochs));
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const query::Query& q : workload) {
      if (spec.sql) {
        const query::Query varied =
            spec.vary_literals ? VaryLiterals(q, epoch) : q;
        futures.push_back(
            server.SubmitSql(varied.ToSql(db->schema()), varied.id));
      } else if (spec.vary_literals) {
        futures.push_back(server.Submit(VaryLiterals(q, epoch)));
      } else {
        futures.push_back(server.Submit(q));
      }
    }
    if (spec.swap_mid_load && epoch == 0) {
      // Hot swap while the first epoch is still in flight: in-flight
      // queries finish on their snapshot, later ones re-plan (and the
      // version change invalidates every cached LQO plan).
      server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());
    }
  }
  std::vector<ServedQuery> served;
  served.reserve(futures.size());
  for (auto& future : futures) served.push_back(future.get());
  server.Drain();
  *wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                 .count();
  return served;
}

/// Scheduling-independent fields only: plans and replayed executions must
/// match query-for-query across worker counts; cache hits and planning
/// times may legitimately differ (they depend on processing order).
///
/// `compare_plans` is off for the SQL arms: same-template variants share a
/// normalized-template cache key, so the generic plan a variant is served
/// depends on which variant planned first — scheduling-dependent by design.
/// The ANSWER must not be: result rows, timeouts and fallbacks still have
/// to match query-for-query against the single-worker replay.
bool SameServedResults(const std::vector<ServedQuery>& a,
                       const std::vector<ServedQuery>& b, bool compare_plans) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].query_id != b[i].query_id ||
        a[i].result_rows != b[i].result_rows ||
        a[i].timed_out != b[i].timed_out || a[i].fell_back != b[i].fell_back) {
      return false;
    }
    if (compare_plans && (a[i].execution_ns != b[i].execution_ns ||
                          a[i].plan != b[i].plan)) {
      return false;
    }
  }
  return true;
}

ArmResult RunArm(engine::Database* db,
                 const std::vector<query::Query>& workload,
                 const ArmSpec& spec, int epochs, int32_t workers) {
  ArmResult result;
  result.spec = spec;
  const std::vector<ServedQuery> served =
      DriveArm(db, workload, spec, epochs, workers, &result.wall_ms);

  std::vector<double> latencies;
  latencies.reserve(served.size());
  int64_t cache_hits = 0;
  double planning_total = 0.0;
  for (const ServedQuery& s : served) {
    latencies.push_back(static_cast<double>(s.latency_ns()));
    planning_total += static_cast<double>(s.planning_ns);
    if (s.cache_hit) ++cache_hits;
    if (s.fell_back) ++result.fallbacks;
  }
  result.queries = static_cast<int64_t>(served.size());
  result.qps = static_cast<double>(served.size()) / (result.wall_ms / 1e3);
  result.p50_ns = util::Percentile(latencies, 50.0);
  result.p95_ns = util::Percentile(latencies, 95.0);
  result.p99_ns = util::Percentile(latencies, 99.0);
  result.avg_planning_ns = planning_total / static_cast<double>(served.size());
  result.cache_hit_rate =
      static_cast<double>(cache_hits) / static_cast<double>(served.size());
  result.fallback_rate = static_cast<double>(result.fallbacks) /
                         static_cast<double>(served.size());

  // Determinism: replay the whole arm single-threaded and compare
  // query-for-query.
  double serial_wall_ms = 0.0;
  const std::vector<ServedQuery> serial =
      DriveArm(db, workload, spec, epochs, /*workers=*/1, &serial_wall_ms);
  result.deterministic =
      SameServedResults(served, serial, /*compare_plans=*/!spec.sql);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lqolab;

  auto db = bench::MakeDatabase(0.25);
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  const int epochs = 3;
  // At least 4 workers even on a single-core box: the determinism check
  // compares against a 1-worker replay, which only means something when the
  // primary run actually interleaves.
  const int32_t workers =
      bench::EnvParallelism() > 0
          ? bench::EnvParallelism()
          : std::max<int32_t>(4, util::ThreadPool::DefaultParallelism());

  // 50 us of virtual time: far below any cold multi-join execution, so the
  // degraded plans of the fallback arm reliably hit the deadline.
  constexpr util::VirtualNanos kTightDeadlineNs = 50'000;

  bool sql_mode = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--sql") {
      sql_mode = true;
    } else {
      out_path = argv[i];
    }
  }

  std::vector<ArmSpec> arms = {
      {"pglite", RouteMode::kPglite, true, 0, false, false},
      {"pglite_cache_off", RouteMode::kPglite, false, 0, false, false},
      {"lqo", RouteMode::kLqo, true, 0, false, true},
      {"lqo_tight_deadline", RouteMode::kLqo, true, kTightDeadlineNs, true,
       false, /*no_breaker=*/true},
      {"shadow", RouteMode::kShadow, true, 0, false, false},
  };
  if (sql_mode) {
    ArmSpec sql_pglite{"sql_pglite", RouteMode::kPglite, true, 0, false,
                       false};
    sql_pglite.sql = true;
    arms.push_back(sql_pglite);
    // The template-vs-literal pair: identical varied workloads, one keyed
    // on normalized templates (SQL route), one on per-literal fingerprints
    // (struct route).
    ArmSpec sql_varied = sql_pglite;
    sql_varied.name = "sql_pglite_varied";
    sql_varied.vary_literals = true;
    arms.push_back(sql_varied);
    ArmSpec struct_varied{"struct_pglite_varied", RouteMode::kPglite, true, 0,
                          false, false};
    struct_varied.vary_literals = true;
    arms.push_back(struct_varied);
  }

  std::fprintf(stderr,
               "serving %zu queries x %d epochs per arm (%d workers)...\n",
               workload.size(), epochs, workers);
  std::vector<ArmResult> results;
  for (const ArmSpec& spec : arms) {
    results.push_back(RunArm(db.get(), workload, spec, epochs, workers));
    const ArmResult& r = results.back();
    std::fprintf(stderr,
                 "  %-18s qps=%7.0f p50=%.2fms hit=%4.0f%% fallback=%4.0f%% "
                 "%s\n",
                 r.spec.name.c_str(), r.qps, r.p50_ns / 1e6,
                 r.cache_hit_rate * 100.0, r.fallback_rate * 100.0,
                 r.deterministic ? "deterministic" : "[MISMATCH]");
  }

  // Open-loop tail-latency-vs-offered-load sweep (docs/overload.md): the
  // closed-loop arms above measure service capacity; this measures what a
  // non-blocking arrival process observes below and above it. Deadline-
  // aware shedding is on, so the overloaded point reports load-control
  // behaviour (goodput held, misses shed) rather than queue collapse. The
  // deep sweep with the shedding ablation lives in bench/overload_soak.
  struct OpenLoopPoint {
    double multiple = 0.0;
    lqolab::loadgen::OpenLoopResult result;
  };
  std::vector<OpenLoopPoint> open_loop;
  {
    loadgen::OpenLoopRunner runner(db.get(), workload);
    for (const double multiple : {0.5, 1.5}) {
      loadgen::OpenLoopOptions options;
      options.offered_multiple = multiple;
      options.virtual_workers = 4;
      options.target_arrivals = 300;
      options.deadline_service_multiple = 8.0;
      options.shed_on_predicted_miss = true;
      options.seed = bench::kSeed;
      OpenLoopPoint point;
      point.multiple = multiple;
      point.result = runner.Run(options);
      const loadgen::TenantSlo& agg = point.result.report.aggregate;
      std::fprintf(stderr,
                   "  open_loop x%.1f: goodput=%.1fqps p99=%.2fms shed=%lld\n",
                   multiple, agg.goodput_qps, agg.p99_total_ms,
                   static_cast<long long>(agg.shed));
      open_loop.push_back(std::move(point));
    }
  }

  std::string json = "{\n";
  json += "  \"bench\": \"serve_throughput\",\n";
  json += std::string("  \"sql_mode\": ") + (sql_mode ? "true" : "false") +
          ",\n";
  json += "  \"queries\": " + std::to_string(workload.size()) + ",\n";
  json += "  \"epochs\": " + std::to_string(epochs) + ",\n";
  json += "  \"workers\": " + std::to_string(workers) + ",\n";
  json += "  \"arms\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"route\": \"%s\", \"plan_cache\": %s, \"sql\": %s, "
        "\"vary_literals\": %s, \"queries\": %lld, "
        "\"wall_ms\": %.1f, \"qps\": %.0f, "
        "\"latency_virtual_ns\": {\"p50\": %.0f, \"p95\": %.0f, "
        "\"p99\": %.0f}, \"avg_planning_ns\": %.0f, "
        "\"cache_hit_rate\": %.4f, \"fallback_rate\": %.4f, "
        "\"fallbacks\": %lld, \"deterministic\": %s}%s\n",
        r.spec.name.c_str(), r.spec.plan_cache ? "true" : "false",
        r.spec.sql ? "true" : "false",
        r.spec.vary_literals ? "true" : "false",
        static_cast<long long>(r.queries), r.wall_ms, r.qps, r.p50_ns,
        r.p95_ns, r.p99_ns, r.avg_planning_ns, r.cache_hit_rate,
        r.fallback_rate, static_cast<long long>(r.fallbacks),
        r.deterministic ? "true" : "false",
        i + 1 < results.size() ? "," : "");
    json += buffer;
  }
  json += "  ],\n";
  json += "  \"open_loop\": [\n";
  for (size_t i = 0; i < open_loop.size(); ++i) {
    const OpenLoopPoint& p = open_loop[i];
    const loadgen::TenantSlo& agg = p.result.report.aggregate;
    char buffer[384];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"offered_multiple\": %.2f, \"arrivals\": %lld, "
        "\"offered_qps\": %.1f, \"capacity_qps\": %.1f, \"ok\": %lld, "
        "\"shed\": %lld, \"deadline_missed\": %lld, \"goodput_qps\": %.1f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p99_queue_ms\": %.3f}%s\n",
        p.multiple, static_cast<long long>(p.result.arrivals),
        p.result.offered_qps, p.result.capacity_qps,
        static_cast<long long>(agg.ok), static_cast<long long>(agg.shed),
        static_cast<long long>(agg.deadline_missed), agg.goodput_qps,
        agg.p50_total_ms, agg.p99_total_ms, agg.p99_queue_ms,
        i + 1 < open_loop.size() ? "," : "");
    json += buffer;
  }
  json += "  ]\n}\n";

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path);
  } else {
    std::fputs(json.c_str(), stdout);
  }

  bool ok = true;
  for (const ArmResult& r : results) ok &= r.deterministic;
  // The warm cache must deliver a measurable planning-time reduction, and
  // the tight-deadline arm must actually fall back.
  ok &= results[0].avg_planning_ns < results[1].avg_planning_ns;
  ok &= results[3].fallback_rate > 0.0;
  // Open-loop sanity: both points completed work, and the overloaded point
  // exercised the deadline-aware shedder harder than the light one.
  ok &= open_loop[0].result.report.aggregate.ok > 0;
  ok &= open_loop[1].result.report.aggregate.ok > 0;
  ok &= open_loop[1].result.report.aggregate.shed >
        open_loop[0].result.report.aggregate.shed;
  if (sql_mode) {
    const ArmResult& sql_pglite = results[5];
    const ArmResult& sql_varied = results[6];
    const ArmResult& struct_varied = results[7];
    // Warm-template SQL throughput within noise of the struct path (the
    // parse+bind admission cost must not dominate), and template keying
    // must beat per-literal keying on the varied workload by a wide margin.
    ok &= sql_pglite.qps > 0.5 * results[0].qps;
    ok &= sql_varied.cache_hit_rate > struct_varied.cache_hit_rate + 0.3;
    if (!ok) {
      std::fprintf(stderr,
                   "sql-mode assertion failed: sql qps=%.0f struct qps=%.0f "
                   "sql_varied hit=%.2f struct_varied hit=%.2f\n",
                   sql_pglite.qps, results[0].qps, sql_varied.cache_hit_rate,
                   struct_varied.cache_hit_rate);
    }
  }
  return ok ? 0 : 1;
}
