// Implement your own learned query optimizer against the framework.
//
// The paper's benchmarking framework exists precisely so that NEW methods
// can be dropped in and compared under identical conditions (same database,
// same splits, same measurement protocol). This example implements a
// minimal "cost-corrector" LQO — it memorizes, per base-query family, how
// wrong the cost model was, and rescales candidate plan costs accordingly —
// and runs it through the same pipeline as the built-in methods.
//
// Build & run:  cmake --build build && ./build/examples/custom_lqo

#include <algorithm>
#include <cstdio>
#include <map>

#include "benchkit/parallel_runner.h"
#include "benchkit/splits.h"
#include "engine/database.h"
#include "lqo/interface.h"
#include "lqo/plan_search.h"
#include "query/job_workload.h"
#include "util/table_printer.h"

namespace {

using namespace lqolab;

/// A deliberately simple LQO: execute each training query once, remember
/// the ratio between measured latency and estimated plan cost per template
/// family, and at inference time pick the greedy plan under the corrected
/// cost. Implements the same LearnedOptimizer interface as Neo/Bao/etc.
class CostCorrectorOptimizer : public lqo::LearnedOptimizer {
 public:
  std::string name() const override { return "cost_corrector"; }

  lqo::TrainReport Train(const std::vector<query::Query>& train_set,
                         engine::Database* db) override {
    lqo::TrainReport report;
    for (const auto& q : train_set) {
      const auto planned = db->PlanQuery(q);
      ++report.planner_calls;
      const auto run = db->ExecutePlan(q, planned.plan);
      ++report.plans_executed;
      report.execution_ns += run.execution_ns;
      const double estimated = std::max(1.0, planned.estimated_cost);
      const double ratio = static_cast<double>(run.execution_ns) / estimated;
      auto [it, inserted] = correction_.emplace(q.template_id, ratio);
      if (!inserted) it->second = 0.5 * it->second + 0.5 * ratio;
    }
    report.training_time_ns =
        report.execution_ns +
        report.plans_executed * lqo::timing::kTrainPlanOverheadNs;
    return report;
  }

  lqo::Prediction Plan(const query::Query& q, engine::Database* db) override {
    // Greedy bottom-up search under the family-corrected cost.
    const double factor = [&] {
      auto it = correction_.find(q.template_id);
      return it != correction_.end() ? it->second : 1.0;
    }();
    int64_t cost_calls = 0;
    lqo::SearchResult search = lqo::GreedyBottomUpSearch(
        q, db->planner().cost_model(),
        [&](const optimizer::PhysicalPlan& candidate) {
          ++cost_calls;
          return factor * db->planner().EstimatePlanCost(q, candidate);
        });
    lqo::Prediction prediction;
    prediction.plan = std::move(search.plan);
    // This method evaluates the cost model instead of a neural network;
    // charge the same per-candidate accounting the framework uses.
    prediction.inference_ns = cost_calls * 50'000;  // 50 us per cost call
    return prediction;
  }

  lqo::EncodingSpec encoding_spec() const override {
    return {"CostCorrector", "-",    "-",     "-",     "-",
            "yes",           "yes",  "-",     "-",     "Memo",
            "none",          "Plan", "Static", "-"};
  }

 private:
  std::map<int32_t, double> correction_;  // template id -> latency/cost
};

}  // namespace

int main() {
  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Medium().Scaled(0.25);
  options.seed = 42;
  auto db = engine::Database::CreateImdb(options);
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  // Evaluate the custom method across all three split-difficulty levels —
  // the framework treats it exactly like the built-in methods.
  util::TablePrinter table(
      {"split", "method", "execution", "end-to-end", "timeouts"});
  for (const auto kind :
       {benchkit::SplitKind::kLeaveOneOut, benchkit::SplitKind::kRandom,
        benchkit::SplitKind::kBaseQuery}) {
    const auto split = benchkit::SampleSplit(workload, kind, 0.2, 21);
    const auto train = benchkit::SelectQueries(workload, split.train_indices);
    const auto test = benchkit::SelectQueries(workload, split.test_indices);

    CostCorrectorOptimizer custom;
    custom.Train(train, db.get());

    const benchkit::Protocol protocol;
    const auto native = benchkit::MeasureWorkload(db.get(), nullptr, test,
                                                  protocol);
    const auto learned = benchkit::MeasureWorkload(db.get(), &custom, test,
                                                   protocol);
    for (const auto* m : {&native, &learned}) {
      table.AddRow({benchkit::SplitKindName(kind), m->method,
                    util::FormatDuration(m->total_execution_ns()),
                    util::FormatDuration(m->total_end_to_end_ns()),
                    std::to_string(m->timeout_count())});
    }
  }
  table.Print();
  std::printf(
      "\nThe custom method plugs into the identical pipeline as Neo/Bao/"
      "Balsa/LEON: implement lqo::LearnedOptimizer, train on a split, and "
      "measure with benchkit. That is the paper's reproducibility point.\n");
  return 0;
}
