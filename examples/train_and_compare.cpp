// Train a Bao-style learned optimizer on one train/test split and compare
// it against the native pglite optimizer on the held-out queries — a
// miniature of the paper's Fig. 5 evaluation.
//
// Build & run:  cmake --build build && ./build/examples/train_and_compare

#include <algorithm>
#include <cstdio>
#include <memory>

#include "benchkit/parallel_runner.h"
#include "benchkit/splits.h"
#include "engine/database.h"
#include "lqo/bao.h"
#include "query/job_workload.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

int main() {
  using namespace lqolab;

  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Medium().Scaled(0.25);
  options.seed = 42;
  auto db = engine::Database::CreateImdb(options);
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  // A "hard" base-query split: whole query families are held out, so the
  // model cannot reuse join structure it saw during training.
  const benchkit::Split split = benchkit::SampleSplit(
      workload, benchkit::SplitKind::kBaseQuery, 0.2, 7);
  const auto train = benchkit::SelectQueries(workload, split.train_indices);
  const auto test = benchkit::SelectQueries(workload, split.test_indices);
  std::printf("split: %zu train / %zu test queries\n", train.size(),
              test.size());

  // Train Bao (hint-set selection on top of the native optimizer). The
  // training episodes execute concurrently on worker replicas; the result
  // is identical for any worker count, including 1.
  lqo::BaoOptimizer::Options bao_options;
  bao_options.parallelism = util::ThreadPool::DefaultParallelism();
  lqo::BaoOptimizer bao(bao_options);
  const lqo::TrainReport report = bao.Train(train, db.get());
  std::printf("bao trained: %lld plans executed, modeled training time %s\n",
              static_cast<long long>(report.plans_executed),
              util::FormatDuration(report.training_time_ns).c_str());

  // Evaluate both on the test set with the 3-run hot-cache protocol,
  // fanned across all cores (RunnerOptions{} = hardware_concurrency). One
  // runner serves both measurements.
  const benchkit::Protocol protocol;
  benchkit::ParallelRunner runner(db.get(), benchkit::RunnerOptions{});
  const auto native =
      benchkit::MeasureWorkload(&runner, nullptr, test, protocol);
  const auto learned =
      benchkit::MeasureWorkload(&runner, &bao, test, protocol);

  util::TablePrinter table(
      {"method", "inference+planning", "execution", "end-to-end", "timeouts"});
  for (const auto* m : {&native, &learned}) {
    table.AddRow({m->method,
                  util::FormatDuration(m->total_inference_ns() +
                                       m->total_planning_ns()),
                  util::FormatDuration(m->total_execution_ns()),
                  util::FormatDuration(m->total_end_to_end_ns()),
                  std::to_string(m->timeout_count())});
  }
  table.Print();

  // Per-query comparison for the five largest gaps.
  util::TablePrinter detail({"query", "pglite", "bao", "factor"});
  std::vector<std::pair<double, size_t>> gaps;
  for (size_t i = 0; i < native.queries.size(); ++i) {
    const double a = static_cast<double>(native.queries[i].execution_ns);
    const double b = static_cast<double>(learned.queries[i].execution_ns);
    gaps.emplace_back(std::max(a, b) / std::max(1.0, std::min(a, b)), i);
  }
  std::sort(gaps.rbegin(), gaps.rend());
  for (size_t g = 0; g < std::min<size_t>(5, gaps.size()); ++g) {
    const size_t i = gaps[g].second;
    detail.AddRow({native.queries[i].query_id,
                   util::FormatDuration(native.queries[i].execution_ns),
                   util::FormatDuration(learned.queries[i].execution_ns),
                   util::FormatDouble(gaps[g].first, 1) + "x"});
  }
  detail.Print();
  return 0;
}
