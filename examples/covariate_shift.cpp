// Watch a learned optimizer degrade under covariate shift (paper §8.3).
//
// We shrink the database (Bernoulli-sampling `title` with CASCADE, like the
// paper's IMDB-50%), train one Bao model on each version, and evaluate both
// on the full data. Because Bao encodes plans only through cardinalities
// and costs — no table identities — the model trained in the smaller
// cardinality regime misjudges plans on the full database.
//
// Build & run:  cmake --build build && ./build/examples/covariate_shift

#include <algorithm>
#include <cstdio>

#include "benchkit/parallel_runner.h"
#include "benchkit/splits.h"
#include "datagen/imdb_generator.h"
#include "engine/database.h"
#include "lqo/bao.h"
#include "query/job_workload.h"
#include "util/table_printer.h"

int main() {
  using namespace lqolab;

  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Medium().Scaled(0.25);
  options.seed = 42;
  auto full = engine::Database::CreateImdb(options);

  // Build shrunken copies at several keep fractions.
  util::TablePrinter overview({"database", "title rows", "cast_info rows"});
  std::vector<double> fractions = {1.0, 0.5, 0.25};
  std::vector<std::unique_ptr<engine::Database>> databases;
  for (double fraction : fractions) {
    std::unique_ptr<engine::Database> db;
    if (fraction == 1.0) {
      db = nullptr;  // use `full`
    } else {
      auto tables = datagen::SubsampleTitleCascade(
          full->schema(), full->context().tables(), fraction, 7);
      engine::Database::Options sub_options;
      sub_options.seed = 42;
      db = engine::Database::FromTables(sub_options, std::move(tables));
    }
    engine::Database& view = db ? *db : *full;
    overview.AddRow(
        {"IMDB-" + std::to_string(static_cast<int>(fraction * 100)) + "%",
         std::to_string(
             view.context().table(catalog::imdb::kTitle).row_count()),
         std::to_string(
             view.context().table(catalog::imdb::kCastInfo).row_count())});
    databases.push_back(std::move(db));
  }
  overview.Print();

  const auto workload = query::BuildJobLiteWorkload(full->schema());
  const auto split = benchkit::SampleSplit(
      workload, benchkit::SplitKind::kBaseQuery, 0.2, 7);
  const auto train = benchkit::SelectQueries(workload, split.train_indices);
  const auto test = benchkit::SelectQueries(workload, split.test_indices);

  // Train one Bao per database version; evaluate ALL of them on the FULL
  // database (the shifted models have seen a different cardinality regime).
  std::printf("\ntraining one Bao model per database version...\n");
  benchkit::Protocol protocol;
  util::TablePrinter results({"model trained on", "execution on full DB",
                              "worst per-query regression",
                              "vs in-distribution"});
  util::VirtualNanos reference = 0;
  std::vector<benchkit::QueryMeasurement> reference_queries;
  for (size_t i = 0; i < fractions.size(); ++i) {
    lqo::BaoOptimizer::Options bao_options;
    bao_options.epochs = 3;
    bao_options.train_epochs = 12;
    lqo::BaoOptimizer bao(bao_options);
    engine::Database* train_db =
        databases[i] ? databases[i].get() : full.get();
    bao.Train(train, train_db);
    const auto result =
        benchkit::MeasureWorkload(full.get(), &bao, test, protocol);
    if (i == 0) {
      reference = result.total_execution_ns();
      reference_queries = result.queries;
    }
    // The aggregate can hide what covariate shift does per query.
    double worst = 1.0;
    std::string worst_id = "-";
    for (size_t k = 0; k < result.queries.size(); ++k) {
      const double factor =
          static_cast<double>(result.queries[k].execution_ns) /
          static_cast<double>(
              std::max<util::VirtualNanos>(1, reference_queries[k].execution_ns));
      if (factor > worst) {
        worst = factor;
        worst_id = result.queries[k].query_id;
      }
    }
    results.AddRow(
        {"IMDB-" + std::to_string(static_cast<int>(fractions[i] * 100)) + "%",
         util::FormatDuration(result.total_execution_ns()),
         i == 0 ? "-" : util::FormatFactor(worst) + " (" + worst_id + ")",
         util::FormatFactor(static_cast<double>(result.total_execution_ns()) /
                            static_cast<double>(std::max<util::VirtualNanos>(
                                1, reference)))});
  }
  results.Print();
  std::printf(
      "\nCardinality-only encodings cannot tell WHICH data changed — "
      "refreshed statistics alone do not keep a trained model current "
      "(paper §8.3). Per-query regressions and improvements both appear; "
      "run bench/fig7_covariate_shift for the full per-query breakdown.\n");
  return 0;
}
