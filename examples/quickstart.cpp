// Quickstart: generate the synthetic IMDB, plan and execute JOB-lite
// queries, and inspect plans with EXPLAIN ANALYZE.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "engine/database.h"
#include "query/job_workload.h"
#include "util/table_printer.h"

int main() {
  using namespace lqolab;

  // 1. Create a database: 21 IMDB tables, indexes, statistics. The seed
  //    makes the data (and thus every result below) fully reproducible.
  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Medium().Scaled(0.25);
  options.seed = 42;
  options.config = engine::DbConfig::OurFramework();
  auto db = engine::Database::CreateImdb(options);
  std::printf("database ready: %lld heap pages\n\n",
              static_cast<long long>(db->TotalPages()));

  // 2. Build the JOB-lite workload (113 queries over 33 templates).
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  std::printf("workload: %zu queries, first is %s:\n  %s\n\n", workload.size(),
              workload[0].id.c_str(),
              workload[0].ToSql(db->schema()).c_str());

  // 3. EXPLAIN ANALYZE one query: the plan tree with estimated vs actual
  //    cardinalities, planning time and execution time.
  std::printf("%s\n", db->ExplainAnalyze(workload[0]).c_str());

  // 4. Run a few queries end to end and show the cold -> hot cache effect
  //    (the 1st execution is slower; §7.3 of the paper).
  util::TablePrinter table({"query", "joins", "run1", "run2", "run3", "rows"});
  for (size_t i = 0; i < 5; ++i) {
    const auto& q = workload[i * 7];
    const auto r1 = db->Run(q);
    const auto r2 = db->Run(q);
    const auto r3 = db->Run(q);
    table.AddRow({q.id, std::to_string(q.join_count()),
                  util::FormatDuration(r1.execution_ns),
                  util::FormatDuration(r2.execution_ns),
                  util::FormatDuration(r3.execution_ns),
                  std::to_string(r3.result_rows)});
  }
  table.Print();
  return 0;
}
