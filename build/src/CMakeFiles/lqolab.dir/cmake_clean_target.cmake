file(REMOVE_RECURSE
  "liblqolab.a"
)
