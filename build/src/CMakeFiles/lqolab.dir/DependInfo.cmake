
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchkit/measurement.cc" "src/CMakeFiles/lqolab.dir/benchkit/measurement.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/benchkit/measurement.cc.o.d"
  "/root/repo/src/benchkit/splits.cc" "src/CMakeFiles/lqolab.dir/benchkit/splits.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/benchkit/splits.cc.o.d"
  "/root/repo/src/catalog/imdb_schema.cc" "src/CMakeFiles/lqolab.dir/catalog/imdb_schema.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/catalog/imdb_schema.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/lqolab.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/catalog/schema.cc.o.d"
  "/root/repo/src/datagen/imdb_generator.cc" "src/CMakeFiles/lqolab.dir/datagen/imdb_generator.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/datagen/imdb_generator.cc.o.d"
  "/root/repo/src/engine/config.cc" "src/CMakeFiles/lqolab.dir/engine/config.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/engine/config.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/lqolab.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/engine/database.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/lqolab.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/oracle.cc" "src/CMakeFiles/lqolab.dir/exec/oracle.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/exec/oracle.cc.o.d"
  "/root/repo/src/lqo/balsa.cc" "src/CMakeFiles/lqolab.dir/lqo/balsa.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/balsa.cc.o.d"
  "/root/repo/src/lqo/bao.cc" "src/CMakeFiles/lqolab.dir/lqo/bao.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/bao.cc.o.d"
  "/root/repo/src/lqo/encoding.cc" "src/CMakeFiles/lqolab.dir/lqo/encoding.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/encoding.cc.o.d"
  "/root/repo/src/lqo/hybridqo.cc" "src/CMakeFiles/lqolab.dir/lqo/hybridqo.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/hybridqo.cc.o.d"
  "/root/repo/src/lqo/interface.cc" "src/CMakeFiles/lqolab.dir/lqo/interface.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/interface.cc.o.d"
  "/root/repo/src/lqo/leon.cc" "src/CMakeFiles/lqolab.dir/lqo/leon.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/leon.cc.o.d"
  "/root/repo/src/lqo/lero.cc" "src/CMakeFiles/lqolab.dir/lqo/lero.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/lero.cc.o.d"
  "/root/repo/src/lqo/loger.cc" "src/CMakeFiles/lqolab.dir/lqo/loger.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/loger.cc.o.d"
  "/root/repo/src/lqo/neo.cc" "src/CMakeFiles/lqolab.dir/lqo/neo.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/neo.cc.o.d"
  "/root/repo/src/lqo/plan_search.cc" "src/CMakeFiles/lqolab.dir/lqo/plan_search.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/plan_search.cc.o.d"
  "/root/repo/src/lqo/rtos.cc" "src/CMakeFiles/lqolab.dir/lqo/rtos.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/rtos.cc.o.d"
  "/root/repo/src/lqo/value_net.cc" "src/CMakeFiles/lqolab.dir/lqo/value_net.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/lqo/value_net.cc.o.d"
  "/root/repo/src/ml/autodiff.cc" "src/CMakeFiles/lqolab.dir/ml/autodiff.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/ml/autodiff.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/CMakeFiles/lqolab.dir/ml/matrix.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/ml/matrix.cc.o.d"
  "/root/repo/src/ml/nn.cc" "src/CMakeFiles/lqolab.dir/ml/nn.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/ml/nn.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/lqolab.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/physical_plan.cc" "src/CMakeFiles/lqolab.dir/optimizer/physical_plan.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/optimizer/physical_plan.cc.o.d"
  "/root/repo/src/optimizer/planner.cc" "src/CMakeFiles/lqolab.dir/optimizer/planner.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/optimizer/planner.cc.o.d"
  "/root/repo/src/query/job_workload.cc" "src/CMakeFiles/lqolab.dir/query/job_workload.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/query/job_workload.cc.o.d"
  "/root/repo/src/query/predicate_binding.cc" "src/CMakeFiles/lqolab.dir/query/predicate_binding.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/query/predicate_binding.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/lqolab.dir/query/query.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/query/query.cc.o.d"
  "/root/repo/src/stats/cardinality_estimator.cc" "src/CMakeFiles/lqolab.dir/stats/cardinality_estimator.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/stats/cardinality_estimator.cc.o.d"
  "/root/repo/src/stats/column_stats.cc" "src/CMakeFiles/lqolab.dir/stats/column_stats.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/stats/column_stats.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/lqolab.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/lqolab.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/lqolab.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/lqolab.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/storage/table.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/lqolab.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/util/rng.cc.o.d"
  "/root/repo/src/util/statistics.cc" "src/CMakeFiles/lqolab.dir/util/statistics.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/util/statistics.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/lqolab.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/lqolab.dir/util/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
