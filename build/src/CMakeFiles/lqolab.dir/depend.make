# Empty dependencies file for lqolab.
# This may be replaced when dependencies are built.
