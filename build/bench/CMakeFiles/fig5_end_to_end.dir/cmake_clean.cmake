file(REMOVE_RECURSE
  "CMakeFiles/fig5_end_to_end.dir/fig5_end_to_end.cpp.o"
  "CMakeFiles/fig5_end_to_end.dir/fig5_end_to_end.cpp.o.d"
  "fig5_end_to_end"
  "fig5_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
