# Empty compiler generated dependencies file for fig3_split_overview.
# This may be replaced when dependencies are built.
