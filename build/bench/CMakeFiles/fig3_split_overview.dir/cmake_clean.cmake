file(REMOVE_RECURSE
  "CMakeFiles/fig3_split_overview.dir/fig3_split_overview.cpp.o"
  "CMakeFiles/fig3_split_overview.dir/fig3_split_overview.cpp.o.d"
  "fig3_split_overview"
  "fig3_split_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_split_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
