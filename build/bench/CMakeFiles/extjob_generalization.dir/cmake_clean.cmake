file(REMOVE_RECURSE
  "CMakeFiles/extjob_generalization.dir/extjob_generalization.cpp.o"
  "CMakeFiles/extjob_generalization.dir/extjob_generalization.cpp.o.d"
  "extjob_generalization"
  "extjob_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extjob_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
