# Empty dependencies file for extjob_generalization.
# This may be replaced when dependencies are built.
