file(REMOVE_RECURSE
  "CMakeFiles/sec86_plan_types.dir/sec86_plan_types.cpp.o"
  "CMakeFiles/sec86_plan_types.dir/sec86_plan_types.cpp.o.d"
  "sec86_plan_types"
  "sec86_plan_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec86_plan_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
