# Empty dependencies file for sec86_plan_types.
# This may be replaced when dependencies are built.
