# Empty dependencies file for table1_encoding_components.
# This may be replaced when dependencies are built.
