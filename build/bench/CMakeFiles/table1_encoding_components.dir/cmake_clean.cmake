file(REMOVE_RECURSE
  "CMakeFiles/table1_encoding_components.dir/table1_encoding_components.cpp.o"
  "CMakeFiles/table1_encoding_components.dir/table1_encoding_components.cpp.o.d"
  "table1_encoding_components"
  "table1_encoding_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_encoding_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
