# Empty dependencies file for fig2_joins_vs_time.
# This may be replaced when dependencies are built.
