file(REMOVE_RECURSE
  "CMakeFiles/fig7_covariate_shift.dir/fig7_covariate_shift.cpp.o"
  "CMakeFiles/fig7_covariate_shift.dir/fig7_covariate_shift.cpp.o.d"
  "fig7_covariate_shift"
  "fig7_covariate_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_covariate_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
