# Empty dependencies file for fig7_covariate_shift.
# This may be replaced when dependencies are built.
