file(REMOVE_RECURSE
  "CMakeFiles/table2_dbms_configs.dir/table2_dbms_configs.cpp.o"
  "CMakeFiles/table2_dbms_configs.dir/table2_dbms_configs.cpp.o.d"
  "table2_dbms_configs"
  "table2_dbms_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dbms_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
