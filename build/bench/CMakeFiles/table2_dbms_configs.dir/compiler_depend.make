# Empty compiler generated dependencies file for table2_dbms_configs.
# This may be replaced when dependencies are built.
