file(REMOVE_RECURSE
  "CMakeFiles/fig8_scan_ablation.dir/fig8_scan_ablation.cpp.o"
  "CMakeFiles/fig8_scan_ablation.dir/fig8_scan_ablation.cpp.o.d"
  "fig8_scan_ablation"
  "fig8_scan_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_scan_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
