# Empty dependencies file for fig9_geqo_ablation.
# This may be replaced when dependencies are built.
