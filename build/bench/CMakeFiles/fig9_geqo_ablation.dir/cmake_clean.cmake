file(REMOVE_RECURSE
  "CMakeFiles/fig9_geqo_ablation.dir/fig9_geqo_ablation.cpp.o"
  "CMakeFiles/fig9_geqo_ablation.dir/fig9_geqo_ablation.cpp.o.d"
  "fig9_geqo_ablation"
  "fig9_geqo_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_geqo_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
