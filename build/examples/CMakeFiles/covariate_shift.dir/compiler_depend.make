# Empty compiler generated dependencies file for covariate_shift.
# This may be replaced when dependencies are built.
