file(REMOVE_RECURSE
  "CMakeFiles/covariate_shift.dir/covariate_shift.cpp.o"
  "CMakeFiles/covariate_shift.dir/covariate_shift.cpp.o.d"
  "covariate_shift"
  "covariate_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covariate_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
