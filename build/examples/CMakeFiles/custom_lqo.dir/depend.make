# Empty dependencies file for custom_lqo.
# This may be replaced when dependencies are built.
