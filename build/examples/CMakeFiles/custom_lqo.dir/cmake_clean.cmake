file(REMOVE_RECURSE
  "CMakeFiles/custom_lqo.dir/custom_lqo.cpp.o"
  "CMakeFiles/custom_lqo.dir/custom_lqo.cpp.o.d"
  "custom_lqo"
  "custom_lqo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_lqo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
