# Empty dependencies file for test_benchkit.
# This may be replaced when dependencies are built.
