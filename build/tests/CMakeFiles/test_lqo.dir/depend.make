# Empty dependencies file for test_lqo.
# This may be replaced when dependencies are built.
