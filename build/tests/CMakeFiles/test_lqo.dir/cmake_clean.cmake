file(REMOVE_RECURSE
  "CMakeFiles/test_lqo.dir/test_lqo.cc.o"
  "CMakeFiles/test_lqo.dir/test_lqo.cc.o.d"
  "test_lqo"
  "test_lqo.pdb"
  "test_lqo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lqo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
