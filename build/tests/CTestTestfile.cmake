# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_catalog[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_datagen[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_query[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_lqo[1]_include.cmake")
include("/root/repo/build/tests/test_benchkit[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
