// Correctness tests for the true-cardinality oracle: filtered base rows and
// join cardinalities are checked against a brute-force reference evaluator.

#include <algorithm>
#include <bit>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/oracle.h"
#include "query/job_workload.h"
#include "query/predicate_binding.h"

namespace lqolab::exec {
namespace {

using query::AliasId;
using query::AliasMask;
using query::Query;
using storage::RowId;

/// Brute-force reference: nested loops over filtered row lists, checking
/// every edge within the mask. Exponential; use on small masks only.
int64_t BruteForceJoinCount(const DbContext& ctx, Oracle* oracle,
                            const Query& q, AliasMask mask) {
  std::vector<AliasId> members;
  for (AliasId a = 0; a < q.relation_count(); ++a) {
    if (mask & query::MaskOf(a)) members.push_back(a);
  }
  std::vector<const std::vector<RowId>*> rows;
  for (AliasId a : members) rows.push_back(&oracle->FilteredRows(q, a));

  std::vector<query::JoinEdge> edges;
  for (const auto& edge : q.edges) {
    if ((mask & query::MaskOf(edge.left_alias)) &&
        (mask & query::MaskOf(edge.right_alias))) {
      edges.push_back(edge);
    }
  }
  auto value_of = [&](AliasId alias, catalog::ColumnId column, RowId row) {
    return ctx.table(q.relations[static_cast<size_t>(alias)].table)
        .column(column)
        .at(row);
  };
  auto position = [&](AliasId alias) {
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i] == alias) return i;
    }
    return members.size();
  };

  int64_t count = 0;
  std::vector<RowId> assignment(members.size());
  std::function<void(size_t)> recurse = [&](size_t level) {
    if (level == members.size()) {
      for (const auto& edge : edges) {
        const auto lv = value_of(edge.left_alias, edge.left_column,
                                 assignment[position(edge.left_alias)]);
        const auto rv = value_of(edge.right_alias, edge.right_column,
                                 assignment[position(edge.right_alias)]);
        if (lv == storage::kNullValue || lv != rv) return;
      }
      ++count;
      return;
    }
    for (RowId r : *rows[level]) {
      assignment[level] = r;
      recurse(level + 1);
    }
  };
  recurse(0);
  return count;
}

class OracleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Medium().Scaled(0.01);
    options.seed = 42;
    db_ = engine::Database::CreateImdb(options).release();
    workload_ = new std::vector<Query>(
        query::BuildJobLiteWorkload(db_->schema()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
    workload_ = nullptr;
    db_ = nullptr;
  }
  static engine::Database* db_;
  static std::vector<Query>* workload_;
};

engine::Database* OracleTest::db_ = nullptr;
std::vector<Query>* OracleTest::workload_ = nullptr;

TEST_F(OracleTest, FilteredRowsMatchPredicates) {
  for (size_t i = 0; i < workload_->size(); i += 11) {
    const Query& q = (*workload_)[i];
    for (AliasId a = 0; a < q.relation_count(); ++a) {
      const auto& rows = db_->oracle().FilteredRows(q, a);
      const auto& preds = db_->oracle().BoundPredicates(q, a);
      const auto& table =
          db_->context().table(q.relations[static_cast<size_t>(a)].table);
      // Every returned row satisfies all predicates.
      for (RowId r : rows) {
        for (const auto& pred : preds) {
          ASSERT_TRUE(pred.Matches(table.column(pred.column).at(r)))
              << q.id << " alias " << a;
        }
      }
      // Count matches an independent scan.
      int64_t expected = 0;
      for (RowId r = 0; r < table.row_count(); ++r) {
        bool all = true;
        for (const auto& pred : preds) {
          if (!pred.Matches(table.column(pred.column).at(r))) {
            all = false;
            break;
          }
        }
        if (all) ++expected;
      }
      ASSERT_EQ(static_cast<int64_t>(rows.size()), expected)
          << q.id << " alias " << a;
    }
  }
}

TEST_F(OracleTest, PairJoinsMatchBruteForce) {
  int checked = 0;
  for (size_t i = 0; i < workload_->size(); i += 9) {
    const Query& q = (*workload_)[i];
    for (const auto& edge : q.edges) {
      const AliasMask mask =
          query::MaskOf(edge.left_alias) | query::MaskOf(edge.right_alias);
      // Keep brute force tractable.
      const int64_t la = db_->oracle().TrueBaseRows(q, edge.left_alias);
      const int64_t ra = db_->oracle().TrueBaseRows(q, edge.right_alias);
      if (la * ra > 4'000'000) continue;
      const auto result = db_->oracle().TrueJoinRows(q, mask);
      ASSERT_FALSE(result.overflow);
      const int64_t expected =
          BruteForceJoinCount(db_->context(), &db_->oracle(), q, mask);
      ASSERT_EQ(result.rows, expected) << q.id;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST_F(OracleTest, TripleJoinsMatchBruteForce) {
  int checked = 0;
  for (size_t i = 0; i < workload_->size(); i += 13) {
    const Query& q = (*workload_)[i];
    // All connected 3-subsets with small bases.
    for (AliasMask mask = 1; mask <= q.FullMask(); ++mask) {
      if (std::popcount(mask) != 3 || !q.IsConnected(mask)) continue;
      double product = 1;
      AliasMask bits = mask;
      while (bits) {
        product *= std::max<int64_t>(
            1, db_->oracle().TrueBaseRows(
                   q, static_cast<AliasId>(std::countr_zero(bits))));
        bits &= bits - 1;
      }
      if (product > 2'000'000) continue;
      const auto result = db_->oracle().TrueJoinRows(q, mask);
      ASSERT_FALSE(result.overflow);
      ASSERT_EQ(result.rows, BruteForceJoinCount(db_->context(),
                                                 &db_->oracle(), q, mask))
          << q.id << " mask " << mask;
      if (++checked > 40) return;
    }
  }
}

TEST_F(OracleTest, MemoizationIsConsistent) {
  const Query& q = (*workload_)[0];
  const auto first = db_->oracle().TrueJoinRows(q, q.FullMask());
  const auto second = db_->oracle().TrueJoinRows(q, q.FullMask());
  EXPECT_EQ(first.rows, second.rows);
  EXPECT_EQ(first.overflow, second.overflow);
}

TEST_F(OracleTest, ReleaseMaterializationsKeepsCards) {
  const Query& q = (*workload_)[5];
  const auto before = db_->oracle().TrueJoinRows(q, q.FullMask());
  db_->oracle().ReleaseMaterializations();
  EXPECT_EQ(db_->oracle().materialization_bytes(), 0);
  const auto after = db_->oracle().TrueJoinRows(q, q.FullMask());
  EXPECT_EQ(before.rows, after.rows);
}

TEST_F(OracleTest, SubsetOrderIndependence) {
  // The cardinality of a mask must not depend on the order in which other
  // masks were requested: ask in different orders on two query copies with
  // distinct ids (separate memo entries).
  Query a = (*workload_)[20];
  Query b = a;
  b.id += "_copy";
  // Build prefix masks along the relation order.
  std::vector<AliasMask> prefixes;
  AliasMask mask = 0;
  for (AliasId r = 0; r < a.relation_count(); ++r) {
    query::AliasId next = -1;
    for (AliasId c = 0; c < a.relation_count(); ++c) {
      if (mask & query::MaskOf(c)) continue;
      if (mask == 0 || (a.AdjacencyMask(c) & mask)) {
        next = c;
        break;
      }
    }
    mask |= query::MaskOf(next);
    prefixes.push_back(mask);
  }
  // Query a: ascending; query b: full mask first (forces fresh evaluation).
  std::vector<int64_t> rows_a;
  for (AliasMask m : prefixes) {
    rows_a.push_back(db_->oracle().TrueJoinRows(a, m).rows);
  }
  std::vector<int64_t> rows_b;
  rows_b.resize(prefixes.size());
  for (size_t i = prefixes.size(); i > 0; --i) {
    rows_b[i - 1] = db_->oracle().TrueJoinRows(b, prefixes[i - 1]).rows;
  }
  EXPECT_EQ(rows_a, rows_b);
}

TEST_F(OracleTest, SinglePredicateRowsSupersetOfFiltered) {
  for (size_t i = 0; i < workload_->size(); i += 17) {
    const Query& q = (*workload_)[i];
    for (AliasId a = 0; a < q.relation_count(); ++a) {
      const auto& preds = db_->oracle().BoundPredicates(q, a);
      if (preds.empty()) continue;
      const auto& all = db_->oracle().FilteredRows(q, a);
      const auto& single = db_->oracle().SinglePredicateRows(q, a, 0);
      EXPECT_GE(single.size(), all.size()) << q.id;
      // Filtered rows are a subset of any single predicate's matches.
      EXPECT_TRUE(std::includes(single.begin(), single.end(), all.begin(),
                                all.end()))
          << q.id;
    }
  }
}

TEST_F(OracleTest, FingerprintSensitivity) {
  Query q = (*workload_)[3];
  const uint64_t original = QueryFingerprint(q);
  Query modified = q;
  ASSERT_FALSE(modified.predicates.empty());
  modified.predicates[0].int_values.push_back(12345);
  EXPECT_NE(QueryFingerprint(modified), original);
  Query renamed = q;
  renamed.id = "other";
  EXPECT_NE(QueryFingerprint(renamed), original);
}

/// Property sweep: for every query, the full-mask cardinality matches the
/// Yannakakis tree count when the query is acyclic (cross-check of the two
/// independent evaluation paths).
class OracleFullMaskProperty : public ::testing::TestWithParam<int> {};

TEST_P(OracleFullMaskProperty, TreeCountAgreesWithMaterialization) {
  static engine::Database* db = [] {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Medium().Scaled(0.01);
    options.seed = 99;
    return engine::Database::CreateImdb(options).release();
  }();
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  const Query& q = workload[static_cast<size_t>(GetParam())];
  if (q.edges.size() != static_cast<size_t>(q.relation_count() - 1)) {
    GTEST_SKIP() << "cyclic query";
  }
  // Two structurally identical queries with different ids get independent
  // memos; the second is evaluated only at the full mask, which (with no
  // cached submask) exercises the fresh/semi-join/tree paths.
  Query twin = q;
  twin.id += "_twin";
  const auto a = db->oracle().TrueJoinRows(q, q.FullMask());
  const auto b = db->oracle().TrueJoinRows(twin, twin.FullMask());
  if (a.overflow || b.overflow) GTEST_SKIP();
  EXPECT_EQ(a.rows, b.rows) << q.id;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, OracleFullMaskProperty,
                         ::testing::Range(0, 113, 3));

}  // namespace
}  // namespace lqolab::exec
