// Concurrency stress tests for the costmodel/ subsystem, built to run
// under ThreadSanitizer (-DLQOLAB_SANITIZE=thread, ctest -L stress):
// serve workers harvesting into the replay buffer while the background
// refresh thread trains/gates/promotes, plus raw concurrent Add/Snapshot
// churn on the buffer and concurrent Predict/Train on the learned model.

#include <algorithm>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "costmodel/features.h"
#include "costmodel/learned_model.h"
#include "costmodel/online_refresh.h"
#include "costmodel/replay_buffer.h"
#include "engine/database.h"
#include "query/job_workload.h"
#include "serve/query_server.h"

namespace lqolab::costmodel {
namespace {

engine::Database* SharedDb() {
  static std::unique_ptr<engine::Database> db = [] {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    return engine::Database::CreateImdb(options);
  }();
  return db.get();
}

const std::vector<query::Query>& Workload() {
  static const std::vector<query::Query> workload =
      query::BuildJobLiteWorkload(SharedDb()->schema());
  return workload;
}

TEST(CostmodelStress, ReplayBufferConcurrentAddAndSnapshot) {
  ReplayBufferOptions options;
  options.capacity = 64;
  ReplayBuffer buffer(options);

  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        CostSample s;
        s.sequence = static_cast<uint64_t>(t) * kPerThread + i;
        s.features = {static_cast<float>(t), static_cast<float>(i)};
        s.actual_ns = 1 + static_cast<util::VirtualNanos>(i);
        s.analytic_cost = 1.0;
        buffer.Add(std::move(s));
      }
    });
  }
  // A reader snapshots concurrently; every snapshot must be sorted and
  // within capacity.
  threads.emplace_back([&] {
    for (int i = 0; i < 200; ++i) {
      const std::vector<CostSample> snapshot = buffer.SnapshotSorted();
      EXPECT_LE(snapshot.size(), 64u);
      for (size_t j = 1; j < snapshot.size(); ++j) {
        EXPECT_LT(snapshot[j - 1].sequence, snapshot[j].sequence);
      }
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(buffer.size(), 64);
  EXPECT_EQ(buffer.added(), kThreads * static_cast<int64_t>(kPerThread));
}

TEST(CostmodelStress, BackgroundRefreshUnderLiveServingLoad) {
  RefreshOptions refresh_options;
  refresh_options.buffer.capacity = 1024;
  refresh_options.min_samples = 24;
  // One background cycle roughly every half epoch of traffic.
  refresh_options.refresh_every = 64;
  // Let candidates promote freely: more hot-swap churn for TSAN to chew on.
  refresh_options.gate_ratio = 8.0;
  refresh_options.max_median_qerror = 1e9;
  refresh_options.drift_window = 1 << 20;  // drift out of the picture
  OnlineRefresher refresher(SharedDb(), refresh_options);

  serve::ServerOptions options;
  options.workers = 4;
  options.route = serve::RouteMode::kLqo;
  options.observer = &refresher;
  options.breaker.failure_threshold = std::numeric_limits<int32_t>::max();
  serve::QueryServer server(SharedDb(), options);
  refresher.AttachServer(&server);
  refresher.StartBackground();

  // Three epochs of the (subsampled) workload from concurrent submitters
  // while the background thread refreshes every 64 harvested samples.
  constexpr int kSubmitters = 3;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      std::vector<std::future<serve::ServedQuery>> futures;
      for (size_t i = 0; i < Workload().size(); i += 6) {
        futures.push_back(server.Submit(Workload()[i]));
      }
      for (auto& f : futures) {
        const serve::ServedQuery served = f.get();
        EXPECT_TRUE(served.status.ok());
      }
    });
  }
  for (auto& t : submitters) t.join();
  server.Drain();
  refresher.StopBackground();
  // One more synchronous cycle after the dust settles: the machinery must
  // still be coherent (and with the permissive gate, it promotes).
  const RefreshOutcome out = refresher.Refresh();
  EXPECT_TRUE(out.attempted);
  EXPECT_GT(refresher.buffer().added(), 0);
  EXPECT_GE(refresher.refreshes(), 1);
  EXPECT_EQ(refresher.promotions() + refresher.rejections(),
            refresher.refreshes());
  EXPECT_EQ(server.model_version(), refresher.promotions());
}

TEST(CostmodelStress, ConcurrentPredictDuringTrain) {
  static const PlanFeaturizer featurizer(&SharedDb()->context(),
                                         &SharedDb()->planner().estimator());
  LearnedModelOptions options;
  options.epochs = 8;
  LearnedCostModel model(&featurizer, options);

  std::vector<CostSample> corpus;
  for (size_t i = 0; i < 24; ++i) {
    const query::Query& q = Workload()[(i * 5) % Workload().size()];
    const auto planned = SharedDb()->PlanQuery(q);
    CostSample s;
    s.sequence = i;
    s.query_id = q.id;
    s.features = featurizer.Featurize(q, planned.plan);
    s.analytic_cost =
        SharedDb()->planner().EstimatePlanCost(q, planned.plan);
    s.actual_ns =
        static_cast<util::VirtualNanos>(std::max(1.0, 20.0 * s.analytic_cost));
    corpus.push_back(std::move(s));
  }

  std::thread trainer([&] { model.Train(corpus); });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const double prediction = model.PredictSampleNs(corpus[0]);
        EXPECT_GT(prediction, 0.0);
      }
    });
  }
  trainer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(model.train_steps(), 0);
}

}  // namespace
}  // namespace lqolab::costmodel
