// Concurrency stress for mid-query adaptive re-optimization under a
// poisoned estimator (run under ThreadSanitizer via ctest -L stress):
// closed-loop and open-loop submitters hammer one QueryServer with
// DbConfig::adaptive_replan on, every answer must still be the oracle
// answer, and shutdown racing live replans must resolve every future.

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "faultlib/faultlib.h"
#include "obs/metrics.h"
#include "query/job_workload.h"
#include "serve/query_server.h"
#include "util/rng.h"

namespace lqolab {
namespace {

using serve::OpenLoopArrival;
using serve::QueryServer;
using serve::RouteMode;
using serve::ServedQuery;
using serve::ServerOptions;

constexpr uint64_t kSeed = 42;

/// Same poison schedule as bench/overload_soak.cpp and test_replan.cc:
/// keyed, so every thread interleaving sees identical estimates.
faultlib::FaultPlan PoisonPlan() {
  faultlib::FaultPlan plan;
  plan.name = "estimate_poison";
  plan.seed = util::MixSeed(kSeed, 0x9e150'7150ull);
  faultlib::FaultRule rule;
  rule.point = "stats.estimate";
  rule.kind = faultlib::FaultKind::kPoison;
  rule.probability = 0.25;
  rule.poison_scale = 1e-4;
  plan.Add(rule);
  return plan;
}

std::unique_ptr<engine::Database> MakeAdaptiveDb() {
  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Small();
  options.seed = kSeed;
  auto db = engine::Database::CreateImdb(options);
  engine::DbConfig config = db->config();
  config.adaptive_replan = true;
  config.replan_qerror_threshold = 4.0;
  config.replan_min_rows = 1;
  db->SetConfig(config);
  return db;
}

TEST(ReplanStress, ConcurrentMixedSubmittersGetOracleAnswers) {
  const auto db = MakeAdaptiveDb();
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  // Oracle answers from an isolated clean replica (rows are independent of
  // plans, noise, poison and replans — the invariant under test).
  std::unordered_map<std::string, int64_t> expected_rows;
  {
    const auto replica = db->CloneContextForWorker();
    for (size_t i = 0; i < workload.size(); i += 4) {
      const query::Query& q = workload[i];
      const auto planned = replica->PlanQuery(q);
      replica->BeginQueryReplay(db->seed(), q);
      expected_rows[q.id] = replica->ExecutePlan(q, planned.plan).result_rows;
    }
  }

  faultlib::FaultInjector poison(PoisonPlan());
  faultlib::ScopedFaultInjection inject(&poison);

  ServerOptions options;
  options.workers = 4;
  options.route = RouteMode::kPglite;
  options.deterministic_replay = true;
  options.seed = kSeed;
  options.virtual_workers = 4;
  QueryServer server(db.get(), options);

  // Two closed-loop submitters and two open-loop submitters, interleaved.
  constexpr int kEpochs = 2;
  std::vector<std::vector<std::pair<std::string, std::future<ServedQuery>>>>
      futures(4);
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      auto& mine = futures[static_cast<size_t>(t)];
      util::VirtualNanos arrival = 0;
      for (int epoch = 0; epoch < kEpochs; ++epoch) {
        for (size_t i = static_cast<size_t>(t); i < workload.size(); i += 8) {
          const query::Query& q = workload[i - (i % 4)];
          if (t < 2) {
            mine.emplace_back(q.id, server.Submit(q));
          } else {
            OpenLoopArrival admission;
            admission.arrival_vt = arrival;
            admission.estimated_service_ns = util::kNanosPerMilli;
            admission.tenant = t;
            arrival += util::kNanosPerMilli;
            mine.emplace_back(q.id, server.SubmitAt(q, admission));
          }
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();

  int64_t served_count = 0;
  int64_t replanned = 0;
  for (auto& lane : futures) {
    for (auto& [id, future] : lane) {
      const ServedQuery served = future.get();
      ASSERT_TRUE(served.status.ok()) << id << ": "
                                      << served.status.ToString();
      EXPECT_EQ(served.result_rows, expected_rows.at(id)) << id;
      ++served_count;
      if (served.replans > 0) ++replanned;
    }
  }
  EXPECT_GT(served_count, 0);
  // The poison schedule must actually force replans through the server.
  EXPECT_GT(replanned, 0);
  server.Shutdown();

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeQueries), served_count);
  EXPECT_GT(metrics.Get(obs::Counter::kServeReplannedQueries), 0);
}

TEST(ReplanStress, ShutdownRacingAdaptiveSubmittersResolvesEveryFuture) {
  const auto db = MakeAdaptiveDb();
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  faultlib::FaultInjector poison(PoisonPlan());
  faultlib::ScopedFaultInjection inject(&poison);

  ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 16;  // Small queue: submitters block mid-race.
  options.route = RouteMode::kPglite;
  options.deterministic_replay = true;
  options.seed = kSeed;
  QueryServer server(db.get(), options);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 30;
  std::vector<std::vector<std::future<ServedQuery>>> futures(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      auto& mine = futures[static_cast<size_t>(t)];
      mine.reserve(kPerSubmitter);
      for (int i = 0; i < kPerSubmitter; ++i) {
        const query::Query& q =
            workload[static_cast<size_t>(t * kPerSubmitter + i) %
                     workload.size()];
        if (t % 2 == 0) {
          mine.push_back(server.Submit(q));
        } else {
          OpenLoopArrival admission;
          admission.arrival_vt =
              static_cast<util::VirtualNanos>(i) * util::kNanosPerMilli;
          admission.estimated_service_ns = util::kNanosPerMilli;
          mine.push_back(server.SubmitAt(q, admission));
        }
      }
    });
  }
  // Shut down while submitters are still pushing and workers are mid-replan:
  // every future must resolve, with a real answer or an explicit kShutdown.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server.Shutdown();
  for (auto& thread : submitters) thread.join();

  int64_t completed = 0;
  int64_t refused = 0;
  int64_t queue_full = 0;
  for (auto& lane : futures) {
    for (auto& future : lane) {
      const ServedQuery served = future.get();
      if (served.status.ok()) {
        ++completed;
        EXPECT_GE(served.result_rows, 0);
      } else if (served.status.code() == util::StatusCode::kShutdown) {
        ++refused;
      } else {
        // SubmitAt never blocks: a full queue resolves immediately instead
        // of backpressuring the arrival process (open-loop semantics).
        ASSERT_EQ(served.status.code(), util::StatusCode::kResourceExhausted)
            << served.status.ToString();
        ++queue_full;
      }
    }
  }
  EXPECT_EQ(completed + refused + queue_full, kSubmitters * kPerSubmitter);

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeQueries) +
                metrics.Get(obs::Counter::kServeShutdownDropped),
            completed + refused);
}

}  // namespace
}  // namespace lqolab
