// Tests for the observability layer (src/obs/): metrics registry semantics,
// EXPLAIN ANALYZE rendering against executor ground truth, JSONL trace
// output, parallel-vs-serial counter aggregation, and the zero-effect
// contract (enabling metrics never changes measured numbers).

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchkit/measurement.h"
#include "benchkit/parallel_runner.h"
#include "engine/database.h"
#include "lqo/bao.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/job_workload.h"
#include "storage/buffer_pool.h"

namespace lqolab::obs {
namespace {

using engine::Database;
using query::Query;

// ---------------------------------------------------------------------------
// LogHistogram

TEST(LogHistogramTest, ObserveTracksCountSumMinMax) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  h.Observe(5);
  h.Observe(100);
  h.Observe(1);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 106);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
}

TEST(LogHistogramTest, PowerOfTwoBuckets) {
  LogHistogram h;
  h.Observe(0);  // bit_width(0) == 0
  h.Observe(1);  // bit_width(1) == 1
  h.Observe(7);  // bit_width(7) == 3
  h.Observe(8);  // bit_width(8) == 4
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(h.bucket(4), 1);
  EXPECT_EQ(h.bucket(2), 0);
}

TEST(LogHistogramTest, NegativesClampToZero) {
  LogHistogram h;
  h.Observe(-42);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.bucket(0), 1);
}

TEST(LogHistogramTest, MergeIsElementWise) {
  LogHistogram a, b;
  a.Observe(3);
  a.Observe(1000);
  b.Observe(2);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.sum(), 1005);
  EXPECT_EQ(a.min(), 2);
  EXPECT_EQ(a.max(), 1000);
}

// ---------------------------------------------------------------------------
// MetricsRegistry / MetricsScope

TEST(MetricsRegistryTest, DisabledByDefault) {
  EXPECT_EQ(MetricsRegistry::Current(), nullptr);
  // Free-function helpers are no-ops without a scope.
  Count(Counter::kExecPlansExecuted);
  Observe(Histogram::kExecutionLatencyNs, 123);
}

TEST(MetricsRegistryTest, ScopeInstallsAndRestores) {
  MetricsRegistry outer;
  {
    MetricsScope scope(&outer);
    EXPECT_EQ(MetricsRegistry::Current(), &outer);
    Count(Counter::kExecPlansExecuted, 2);
    {
      MetricsRegistry inner;
      MetricsScope nested(&inner);
      EXPECT_EQ(MetricsRegistry::Current(), &inner);
      Count(Counter::kExecPlansExecuted, 5);
      EXPECT_EQ(inner.Get(Counter::kExecPlansExecuted), 5);
    }
    EXPECT_EQ(MetricsRegistry::Current(), &outer);
  }
  EXPECT_EQ(MetricsRegistry::Current(), nullptr);
  EXPECT_EQ(outer.Get(Counter::kExecPlansExecuted), 2);
}

TEST(MetricsRegistryTest, MergeAndReset) {
  MetricsRegistry a, b;
  a.Add(Counter::kBufferSharedHits, 3);
  b.Add(Counter::kBufferSharedHits, 4);
  b.Add(Counter::kOracleCardinalityCalls, 1);
  b.Observe(Histogram::kExecutionLatencyNs, 50);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get(Counter::kBufferSharedHits), 7);
  EXPECT_EQ(a.Get(Counter::kOracleCardinalityCalls), 1);
  EXPECT_EQ(a.histogram(Histogram::kExecutionLatencyNs).count(), 1);
  a.Reset();
  EXPECT_EQ(a.Get(Counter::kBufferSharedHits), 0);
  EXPECT_EQ(a.histogram(Histogram::kExecutionLatencyNs).count(), 0);
}

TEST(MetricsRegistryTest, CounterNamesAreUniqueAndLayered) {
  std::set<std::string> names;
  const std::set<std::string> layers = {"storage", "exec",      "optimizer",
                                        "lqo",     "serve",     "costmodel",
                                        "fault"};
  for (int32_t i = 0; i < static_cast<int32_t>(Counter::kCounterCount); ++i) {
    const Counter c = static_cast<Counter>(i);
    ASSERT_NE(CounterName(c), nullptr);
    EXPECT_TRUE(names.insert(CounterName(c)).second)
        << "duplicate counter name " << CounterName(c);
    EXPECT_TRUE(layers.count(CounterLayer(c)))
        << CounterName(c) << " has unknown layer " << CounterLayer(c);
  }
  for (int32_t i = 0; i < static_cast<int32_t>(Histogram::kHistogramCount);
       ++i) {
    ASSERT_NE(HistogramName(static_cast<Histogram>(i)), nullptr);
  }
}

TEST(MetricsRegistryTest, JsonAndTextRendering) {
  MetricsRegistry r;
  r.Add(Counter::kBufferDiskReads, 9);
  r.Observe(Histogram::kPlanningLatencyNs, 1024);
  const std::string json = r.ToJson();
  EXPECT_NE(json.find("\"buffer_disk_reads\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"planning_latency_ns\""), std::string::npos) << json;
  const std::string text = r.ToText();
  EXPECT_NE(text.find("buffer_disk_reads"), std::string::npos) << text;
  // Zero counters are omitted from the text rendering.
  EXPECT_EQ(text.find("buffer_evictions"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// JsonObject / TraceWriter

TEST(JsonObjectTest, RendersTypedFieldsInOrder) {
  JsonObject o;
  o.Set("i", static_cast<int64_t>(-3));
  o.Set("d", 1.5);
  o.Set("b", true);
  o.Set("s", "a\"b\nc");
  o.SetRaw("raw", "[1,2]");
  EXPECT_EQ(o.ToString(),
            "{\"i\":-3,\"d\":1.5,\"b\":true,\"s\":\"a\\\"b\\nc\",\"raw\":[1,2]}");
}

TEST(JsonObjectTest, NonFiniteDoublesRenderAsNull) {
  // JSON has no NaN/Infinity literals; a bare `nan` token makes the whole
  // record unparsable downstream. Non-finite values must degrade to null.
  JsonObject o;
  o.Set("nan", std::nan(""));
  o.Set("pinf", std::numeric_limits<double>::infinity());
  o.Set("ninf", -std::numeric_limits<double>::infinity());
  o.Set("ok", 2.5);
  EXPECT_EQ(o.ToString(),
            "{\"nan\":null,\"pinf\":null,\"ninf\":null,\"ok\":2.5}");
}

TEST(TraceWriterTest, WritesOneRecordPerLine) {
  const std::string path = ::testing::TempDir() + "lqolab_trace_test.jsonl";
  {
    TraceWriter writer(path);
    ASSERT_TRUE(writer.ok());
    JsonObject a;
    a.Set("type", "first");
    writer.Write(a);
    JsonObject b;
    b.Set("type", "second");
    b.Set("n", static_cast<int64_t>(2));
    writer.Write(b);
    EXPECT_EQ(writer.records_written(), 2);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"type\":\"first\"}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"type\":\"second\",\"n\":2}");
  EXPECT_FALSE(std::getline(in, line));
}

TEST(TraceWriterTest, MetricsRecord) {
  const std::string path = ::testing::TempDir() + "lqolab_metrics_test.jsonl";
  MetricsRegistry r;
  r.Add(Counter::kExecTimeouts, 1);
  TraceWriter writer(path);
  WriteMetricsTrace(r, &writer);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"type\":\"metrics\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"exec_timeouts\":1"), std::string::npos) << line;
}

// ---------------------------------------------------------------------------
// Engine-integrated tests (shared small database)

class ObsEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    db_ = Database::CreateImdb(options).release();
    workload_ =
        new std::vector<Query>(query::BuildJobLiteWorkload(db_->schema()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
    db_ = nullptr;
    workload_ = nullptr;
  }

  /// A query with at least `joins` joins (the EXPLAIN walkthrough target).
  static const Query& QueryWithJoins(int32_t joins) {
    for (const Query& q : *workload_) {
      if (q.join_count() >= joins) return q;
    }
    ADD_FAILURE() << "no query with >= " << joins << " joins";
    return workload_->front();
  }

  static Database* db_;
  static std::vector<Query>* workload_;
};

Database* ObsEngineTest::db_ = nullptr;
std::vector<Query>* ObsEngineTest::workload_ = nullptr;

TEST_F(ObsEngineTest, NodeStatsMatchExecutorGroundTruth) {
  const Query& q = QueryWithJoins(5);
  db_->BeginQueryReplay(42, q);
  const Database::Planned planned = db_->PlanQuery(q);
  const engine::QueryRun run =
      db_->ExecutePlan(q, planned.plan, planned.planning_ns);
  ASSERT_EQ(run.node_stats.size(), planned.plan.nodes.size());
  ASSERT_EQ(run.node_rows.size(), run.node_stats.size());
  int64_t buffer_total = 0;
  for (size_t i = 0; i < run.node_stats.size(); ++i) {
    const exec::PlanNodeStats& stats = run.node_stats[i];
    EXPECT_EQ(stats.actual_rows, run.node_rows[i]) << "node " << i;
    EXPECT_GE(stats.loops, 1) << "node " << i;
    buffer_total += stats.shared_hits + stats.os_hits + stats.disk_reads;
  }
  // Every page the executor charged was served by exactly one cache tier,
  // and per-node deltas partition the execution's accesses.
  EXPECT_EQ(buffer_total, run.pages_accessed);
  // The root outputs the query result.
  EXPECT_EQ(run.node_stats[static_cast<size_t>(planned.plan.root)].actual_rows,
            run.result_rows);
}

TEST_F(ObsEngineTest, ExplainAnalyzeTextReportsPerNodeActuals) {
  const Query& q = QueryWithJoins(5);
  db_->BeginQueryReplay(42, q);
  const std::string text = db_->ExplainAnalyze(q);
  EXPECT_NE(text.find("EXPLAIN ANALYZE " + q.id), std::string::npos) << text;
  EXPECT_NE(text.find("(actual rows="), std::string::npos) << text;
  EXPECT_NE(text.find("loops="), std::string::npos) << text;
  EXPECT_NE(text.find("Buffers: shared hit="), std::string::npos) << text;
  EXPECT_NE(text.find("Planning Time:"), std::string::npos) << text;
  EXPECT_NE(text.find("Execution Time:"), std::string::npos) << text;
  // One "-> operator" line per plan node.
  size_t operators = 0;
  for (size_t pos = text.find("-> "); pos != std::string::npos;
       pos = text.find("-> ", pos + 3)) {
    ++operators;
  }
  EXPECT_EQ(operators, static_cast<size_t>(2 * q.join_count() + 1));
}

TEST_F(ObsEngineTest, ExplainAnalyzeJsonMirrorsPlanTree) {
  const Query& q = QueryWithJoins(3);
  db_->BeginQueryReplay(42, q);
  const std::string json = db_->ExplainAnalyzeJson(q);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"query\":\"" + q.id + "\""), std::string::npos);
  EXPECT_NE(json.find("\"plan\":{"), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_NE(json.find("\"actual_rows\":"), std::string::npos);
  // JSON is one line (JSONL-embeddable).
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST_F(ObsEngineTest, CollectionDoesNotChangeMeasurements) {
  const Query& q = QueryWithJoins(4);
  db_->BeginQueryReplay(42, q);
  const Database::Planned planned = db_->PlanQuery(q);
  const engine::QueryRun bare =
      db_->ExecutePlan(q, planned.plan, planned.planning_ns);

  MetricsRegistry metrics;
  db_->BeginQueryReplay(42, q);
  engine::QueryRun instrumented;
  {
    MetricsScope scope(&metrics);
    const Database::Planned replanned = db_->PlanQuery(q);
    instrumented = db_->ExecutePlan(q, replanned.plan, replanned.planning_ns);
  }
  EXPECT_EQ(bare.execution_ns, instrumented.execution_ns);
  EXPECT_EQ(bare.planning_ns, instrumented.planning_ns);
  EXPECT_EQ(bare.result_rows, instrumented.result_rows);
  EXPECT_EQ(bare.pages_accessed, instrumented.pages_accessed);
  EXPECT_EQ(bare.node_rows, instrumented.node_rows);
  // And collection actually recorded the execution.
  EXPECT_EQ(metrics.Get(Counter::kExecPlansExecuted), 1);
  EXPECT_EQ(metrics.Get(Counter::kPlannerInvocations), 1);
  EXPECT_EQ(metrics.Get(Counter::kExecPagesAccessed),
            instrumented.pages_accessed);
  EXPECT_EQ(metrics.Get(Counter::kBufferSharedHits) +
                metrics.Get(Counter::kBufferOsHits) +
                metrics.Get(Counter::kBufferDiskReads),
            metrics.Get(Counter::kExecPagesAccessed));
  EXPECT_GT(metrics.Get(Counter::kOracleCardinalityCalls), 0);
  EXPECT_EQ(metrics.histogram(Histogram::kExecutionLatencyNs).count(), 1);
}

TEST_F(ObsEngineTest, ParallelWorkloadCountersEqualSerialRun) {
  std::vector<Query> queries(workload_->begin(), workload_->begin() + 12);
  benchkit::Protocol protocol;

  auto measure = [&](int32_t parallelism, MetricsRegistry* metrics) {
    benchkit::RunnerOptions options;
    options.parallelism = parallelism;
    options.seed = 7;
    MetricsScope scope(metrics);
    return benchkit::MeasureWorkload(db_, nullptr, queries, protocol, options);
  };

  MetricsRegistry serial, parallel;
  const auto serial_result = measure(1, &serial);
  const auto parallel_result = measure(4, &parallel);

  // The measurements themselves replay bit-identically (the runner's
  // determinism contract)...
  ASSERT_EQ(serial_result.queries.size(), parallel_result.queries.size());
  for (size_t i = 0; i < serial_result.queries.size(); ++i) {
    EXPECT_EQ(serial_result.queries[i].execution_ns,
              parallel_result.queries[i].execution_ns);
  }
  // ...and so do the aggregated counters and histograms: merging per-worker
  // registries commutes, so any worker count sums to the serial totals.
  for (int32_t i = 0; i < static_cast<int32_t>(Counter::kCounterCount); ++i) {
    const Counter c = static_cast<Counter>(i);
    EXPECT_EQ(serial.Get(c), parallel.Get(c)) << CounterName(c);
  }
  for (int32_t i = 0; i < static_cast<int32_t>(Histogram::kHistogramCount);
       ++i) {
    const Histogram h = static_cast<Histogram>(i);
    EXPECT_EQ(serial.histogram(h).count(), parallel.histogram(h).count());
    EXPECT_EQ(serial.histogram(h).sum(), parallel.histogram(h).sum());
    EXPECT_EQ(serial.histogram(h).min(), parallel.histogram(h).min());
    EXPECT_EQ(serial.histogram(h).max(), parallel.histogram(h).max());
  }
  EXPECT_GT(serial.Get(Counter::kExecPlansExecuted), 0);
}

TEST_F(ObsEngineTest, BaoTrainingEmitsEpisodes) {
  std::vector<Query> train(workload_->begin(), workload_->begin() + 4);
  lqo::BaoOptimizer::Options options;
  options.epochs = 2;
  options.train_epochs = 2;
  options.seed = 42;
  // Deterministic-replay training path: executions run on worker replicas,
  // so the shared fixture database's cache state stays untouched.
  options.parallelism = 1;
  lqo::BaoOptimizer bao(options);

  MetricsRegistry metrics;
  lqo::TrainReport report;
  {
    MetricsScope scope(&metrics);
    report = bao.Train(train, db_);
  }
  ASSERT_EQ(report.episodes.size(), 2u);
  int64_t plans = 0, updates = 0, evals = 0;
  util::VirtualNanos exec_ns = 0;
  for (size_t i = 0; i < report.episodes.size(); ++i) {
    const lqo::EpisodeStats& e = report.episodes[i];
    EXPECT_EQ(e.episode, static_cast<int32_t>(i));
    EXPECT_GE(e.loss, 0.0);
    EXPECT_GT(e.nn_updates, 0);
    plans += e.plans_executed;
    updates += e.nn_updates;
    evals += e.nn_evals;
    exec_ns += e.execution_ns;
  }
  // Episode deltas partition the report totals.
  EXPECT_EQ(plans, report.plans_executed);
  EXPECT_EQ(updates, report.nn_updates);
  EXPECT_EQ(evals, report.nn_evals);
  EXPECT_EQ(exec_ns, report.execution_ns);
  EXPECT_EQ(metrics.Get(Counter::kTrainEpisodes), 2);
  EXPECT_GT(metrics.Get(Counter::kHintSetsPlanned), 0);
}

TEST(BufferPoolObsTest, CountsEvictions) {
  storage::BufferPool pool(2, 2);
  MetricsRegistry metrics;
  MetricsScope scope(&metrics);
  for (int64_t page = 0; page < 3; ++page) {
    pool.Access(storage::BufferPool::PageKey(
        0, storage::PageKind::kHeap, catalog::kInvalidColumn, page));
  }
  EXPECT_GT(pool.evictions(), 0);
  EXPECT_EQ(metrics.Get(Counter::kBufferEvictions), pool.evictions());
  EXPECT_EQ(metrics.Get(Counter::kBufferDiskReads), 3);
}

}  // namespace
}  // namespace lqolab::obs
