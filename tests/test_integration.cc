// End-to-end integration tests tying the whole system together: the
// engine's behaviours that the paper's experiments rely on.

#include <cmath>

#include <gtest/gtest.h>

#include "benchkit/measurement.h"
#include "benchkit/splits.h"
#include "datagen/imdb_generator.h"
#include "engine/database.h"
#include "lqo/bao.h"
#include "optimizer/physical_plan.h"
#include "query/job_workload.h"
#include "util/statistics.h"

namespace lqolab {
namespace {

using engine::Database;
using engine::DbConfig;
using optimizer::JoinAlgo;
using optimizer::PhysicalPlan;
using optimizer::ScanType;
using query::Query;

std::unique_ptr<Database> MakeDb(DbConfig config = DbConfig::OurFramework(),
                                 double scale = 0.05, uint64_t seed = 42) {
  Database::Options options;
  options.profile = datagen::ScaleProfile::Medium().Scaled(scale);
  options.seed = seed;
  options.config = config;
  return Database::CreateImdb(options);
}

TEST(Integration, NativePlanBeatsPathologicalPlan) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 8, 'a');
  const auto native = db->PlanQuery(q);
  // Pathological: pure nested loops in FROM order with seq scans.
  PhysicalPlan bad;
  int32_t current = bad.AddScan(0, ScanType::kSeq);
  query::AliasMask mask = query::MaskOf(0);
  for (query::AliasId a = 1; a < q.relation_count(); ++a) {
    // FROM order in our templates is connected.
    ASSERT_TRUE(q.HasEdgeBetween(mask, query::MaskOf(a)));
    const int32_t scan = bad.AddScan(a, ScanType::kSeq);
    current = bad.AddJoin(JoinAlgo::kNestLoop, current, scan);
    mask |= query::MaskOf(a);
  }
  // Warm both plans to hot-cache state, then compare.
  db->ExecutePlan(q, native.plan);
  db->ExecutePlan(q, native.plan);
  db->ExecutePlan(q, bad);
  const auto good_run = db->ExecutePlan(q, native.plan);
  const auto bad_run = db->ExecutePlan(q, bad);
  EXPECT_LT(good_run.execution_ns * 3, bad_run.execution_ns);
  if (!bad_run.timed_out) {
    EXPECT_EQ(good_run.result_rows, bad_run.result_rows);
  }
}

TEST(Integration, CacheConvergenceShape) {
  // Fig. 4's shape: large drop from run 1 to 2, small from 2 to 3, flat
  // afterwards (averaged over queries).
  auto db = MakeDb();
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  db->DropCaches();
  std::vector<double> drop1;
  std::vector<double> drop2;
  std::vector<double> drop3;
  for (size_t i = 0; i < workload.size(); i += 6) {
    const auto planned = db->PlanQuery(workload[i]);
    std::vector<double> runs;
    for (int r = 0; r < 5; ++r) {
      runs.push_back(static_cast<double>(
          db->ExecutePlan(workload[i], planned.plan).execution_ns));
    }
    drop1.push_back((runs[0] - runs[1]) / runs[0]);
    drop2.push_back((runs[1] - runs[2]) / runs[0]);
    drop3.push_back((runs[2] - runs[3]) / runs[0]);
  }
  const double mean1 = util::Mean(drop1);
  const double mean2 = util::Mean(drop2);
  const double mean3 = util::Mean(drop3);
  EXPECT_GT(mean1, 0.05);            // noticeable first-run drop
  EXPECT_GT(mean1, mean2 * 3);       // much larger than the second drop
  EXPECT_GT(mean2, 0.0);             // still positive at k=2
  EXPECT_LT(std::fabs(mean3), 0.02); // flat afterwards
}

TEST(Integration, ScanAblationChangesPlans) {
  // Disabling bitmap+tid scans (Balsa/LEON style) must change at least one
  // chosen access path across the workload (Fig. 8's mechanism).
  auto db = MakeDb();
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  DbConfig no_bitmap = DbConfig::OurFramework();
  no_bitmap.enable_bitmapscan = false;
  no_bitmap.enable_tidscan = false;
  int changed = 0;
  for (size_t i = 0; i < workload.size(); i += 5) {
    db->SetConfig(DbConfig::OurFramework());
    const std::string with = db->PlanQuery(workload[i]).plan.ToString(workload[i]);
    db->SetConfig(no_bitmap);
    const std::string without =
        db->PlanQuery(workload[i]).plan.ToString(workload[i]);
    if (with != without) ++changed;
    EXPECT_EQ(without.find("BitmapScan"), std::string::npos) << workload[i].id;
  }
  EXPECT_GT(changed, 0);
}

TEST(Integration, GeqoAblationAffectsLargeQueries) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 29, 'a');
  const auto with_geqo = db->PlanQuery(q);
  EXPECT_TRUE(with_geqo.used_geqo);
  DbConfig no_geqo = DbConfig::OurFramework();
  no_geqo.geqo = false;
  db->SetConfig(no_geqo);
  const auto without_geqo = db->PlanQuery(q);
  EXPECT_FALSE(without_geqo.used_geqo);
  without_geqo.plan.Validate(q);
  // Exhaustive DP cannot be worse than GEQO on estimated cost.
  EXPECT_LE(without_geqo.estimated_cost, with_geqo.estimated_cost * 1.0001);
}

TEST(Integration, CovariateShiftSetupWorks) {
  // Fig. 7's setup: train/evaluate structures against both the full and the
  // 50% database; the same workload binds against both.
  auto full = MakeDb();
  auto half_tables = datagen::SubsampleTitleCascade(
      full->schema(), full->context().tables(), 0.5, 7);
  Database::Options options;
  options.seed = 42;
  auto half = Database::FromTables(options, std::move(half_tables));
  const Query q = query::BuildJobQuery(full->schema(), 3, 'a');
  const auto run_full = full->Run(q);
  const auto run_half = half->Run(q);
  EXPECT_GT(run_full.result_rows, 0);
  EXPECT_LT(run_half.result_rows, run_full.result_rows);
}

TEST(Integration, ExplainAnalyzeRendersEverything) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 1, 'a');
  const std::string text = db->ExplainAnalyze(q);
  EXPECT_NE(text.find("EXPLAIN ANALYZE 1a"), std::string::npos);
  EXPECT_NE(text.find("est rows="), std::string::npos);
  EXPECT_NE(text.find("actual rows="), std::string::npos);
  EXPECT_NE(text.find("Buffers: shared hit="), std::string::npos);
  EXPECT_NE(text.find("Planning Time:"), std::string::npos);
  EXPECT_NE(text.find("Execution Time:"), std::string::npos);
}

TEST(Integration, EndToEndSplitEvaluation) {
  // A miniature Fig. 5 cell: train Bao on a split, evaluate both methods on
  // the test set; measurements are complete and well-formed.
  auto db = MakeDb();
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  const auto split =
      benchkit::SampleSplit(workload, benchkit::SplitKind::kRandom, 0.2, 3);
  const auto train = benchkit::SelectQueries(workload, split.train_indices);
  const auto test = benchkit::SelectQueries(workload, split.test_indices);

  lqo::BaoOptimizer::Options options;
  options.epochs = 1;
  options.train_epochs = 3;
  lqo::BaoOptimizer bao(options);
  const auto report = bao.Train(train, db.get());
  EXPECT_GT(report.training_time_ns, 0);

  const benchkit::Protocol protocol;
  const auto native = benchkit::MeasureWorkloadNative(db.get(), test, protocol);
  const auto learned =
      benchkit::MeasureWorkloadLqo(db.get(), &bao, test, protocol);
  ASSERT_EQ(native.queries.size(), test.size());
  ASSERT_EQ(learned.queries.size(), test.size());
  EXPECT_GT(native.total_execution_ns(), 0);
  EXPECT_GT(learned.total_execution_ns(), 0);
  // Bao's end-to-end time includes hint-set planning overhead.
  EXPECT_GT(learned.total_planning_ns(), native.total_planning_ns());
}

TEST(Integration, MemoryConfigChangesColdBehaviour) {
  // Larger shared buffers -> fewer disk reads across a workload pass.
  DbConfig small = DbConfig::Default();   // 128 MB shared buffers (scaled)
  DbConfig large = DbConfig::BalsaLeon(); // 32 GB shared buffers (scaled)
  large.enable_bitmapscan = true;         // isolate the memory effect
  large.enable_tidscan = true;
  large.geqo = true;
  auto db_small = MakeDb(small, 0.1);
  auto db_large = MakeDb(large, 0.1);
  const auto workload = query::BuildJobLiteWorkload(db_small->schema());
  util::VirtualNanos total_small = 0;
  util::VirtualNanos total_large = 0;
  for (size_t i = 0; i < workload.size(); i += 10) {
    // Two passes; the second benefits from whatever stayed cached.
    db_small->Run(workload[i]);
    db_large->Run(workload[i]);
    total_small += db_small->Run(workload[i]).execution_ns;
    total_large += db_large->Run(workload[i]).execution_ns;
  }
  EXPECT_LE(total_large, total_small);
}

TEST(Integration, WarmupStateSurvivesConfigSwitchButNotResize) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 2, 'a');
  db->Run(q);
  EXPECT_EQ(db->RunCount(q), 1);
  // Planner-only config change keeps execution state.
  DbConfig tweak = db->config();
  tweak.enable_mergejoin = false;
  db->SetConfig(tweak);
  EXPECT_EQ(db->RunCount(q), 1);
  // Memory change clears it (cache resize = cold start).
  tweak.shared_buffers_mb *= 2;
  db->SetConfig(tweak);
  EXPECT_EQ(db->RunCount(q), 0);
}

}  // namespace
}  // namespace lqolab
