#!/usr/bin/env bash
# Checks that every intra-repository markdown link resolves to an existing
# file or directory. External links (http/https/mailto) and pure #anchors
# are skipped. Usage: check_docs_links.sh [repo_root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 1

errors=0
checked=0

# Markdown files tracked in the docs surface of the repo (skip build trees
# and third-party checkouts if any appear later).
mapfile -t files < <(find . -name '*.md' \
    -not -path './build*' -not -path './.git/*' | sort)

for file in "${files[@]}"; do
  dir=$(dirname "$file")
  # Extract [text](target) links; strip any #anchor suffix.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
      # Targets with spaces are code snippets (e.g. C++ lambdas) the
      # regex picked up, not links.
      *[[:space:]]*) continue ;;
    esac
    target="${target%%#*}"
    [ -z "$target" ] && continue
    checked=$((checked + 1))
    # Links resolve relative to the containing file.
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN: $file -> $target"
      errors=$((errors + 1))
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*](//; s/)$//')
done

echo "checked $checked intra-repo links in ${#files[@]} markdown files"
if [ "$errors" -gt 0 ]; then
  echo "$errors broken link(s)"
  exit 1
fi
exit 0
