-- expect: 1:61: string literal compared against integer column t.production_year
SELECT COUNT(*) FROM title t WHERE t.production_year IN (1, 'two');
