-- expect: 1:30: expected end of statement, got 'WHRE'
SELECT COUNT(*) FROM title t WHRE t.production_year > 2000;
