-- expect: 1:31: duplicate alias 't'
SELECT COUNT(*) FROM title t, title t;
