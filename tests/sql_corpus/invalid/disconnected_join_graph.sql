-- expect: 1:22: the join graph does not connect every FROM relation
SELECT COUNT(*) FROM title t, keyword k WHERE t.production_year > 2000;
