-- expect: 1:8: expected identifier, got '*'
SELECT * FROM title;
