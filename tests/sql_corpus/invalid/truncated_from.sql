-- expect: 2:1: expected identifier, got end of input
SELECT COUNT(*) FROM
