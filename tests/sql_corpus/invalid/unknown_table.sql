-- expect: 1:22: unknown table 'nowhere'
SELECT COUNT(*) FROM nowhere;
