-- expect: 1:36: unknown alias 'x', did you mean 't'?
SELECT COUNT(*) FROM title t WHERE x.production_year > 2000;
