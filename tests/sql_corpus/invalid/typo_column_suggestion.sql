-- expect: 1:36: unknown column 't.prodution_year', did you mean 'production_year'?
SELECT COUNT(*) FROM title t WHERE t.prodution_year > 2000;
