-- expect: 1:56: string literal compared against integer column t.production_year
SELECT COUNT(*) FROM title t WHERE t.production_year > 'x';
