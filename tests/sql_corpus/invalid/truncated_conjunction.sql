-- expect: 2:1: expected identifier, got end of input
SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id = mk.movie_id AND
