-- expect: 1:8: the select list must be exactly COUNT(*)
SELECT MIN(t.id) FROM title t;
