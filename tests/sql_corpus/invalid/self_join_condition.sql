-- expect: 1:36: join condition references a single relation
SELECT COUNT(*) FROM title t WHERE t.kind_id = t.production_year AND t.id = t.id;
