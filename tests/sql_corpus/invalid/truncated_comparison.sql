-- expect: 2:1: expected literal, got end of input
SELECT COUNT(*) FROM title t WHERE t.production_year =
