-- expect: 1:31: expected end of statement, got 'SELECT'
SELECT COUNT(*) FROM title t; SELECT COUNT(*) FROM title t;
