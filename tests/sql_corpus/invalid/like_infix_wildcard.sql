-- expect: 1:49: only prefix LIKE patterns ('prefix%') are supported
SELECT COUNT(*) FROM title t WHERE t.title LIKE '%middle%';
