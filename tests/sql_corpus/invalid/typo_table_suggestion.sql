-- expect: 1:22: unknown table 'titel', did you mean 'title'?
SELECT COUNT(*) FROM titel t;
