-- expect: 1:46: unterminated string literal
SELECT COUNT(*) FROM title t WHERE t.title = 'unterminated
