SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k
WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
  AND k.keyword LIKE 'kw_1%'
  AND t.production_year IN (1995, 2000, 2005);
