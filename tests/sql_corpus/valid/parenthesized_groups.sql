-- Grouping is semantically a no-op (the grammar has no OR) but must parse.
SELECT COUNT(*) FROM title t, movie_info mi
WHERE (t.id = mi.movie_id) AND ((t.production_year > 1990));
