select count(*) from title t where t.production_year >= 1980 and t.kind_id <= 3;
