SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k, movie_companies mc, company_name cn
WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
  AND t.id = mc.movie_id AND mc.company_id = cn.id
  AND cn.country_code = '[us]' AND t.production_year > 1995;
