SELECT COUNT(*) FROM title t WHERE t.episode_nr IS NOT NULL;
