SELECT COUNT(*) FROM title AS t, movie_companies AS mc
WHERE t.id = mc.movie_id AND mc.company_type_id = 2;
