-- A classic JOB-shaped 2-way join with a range filter.
SELECT COUNT(*) FROM title t, movie_keyword mk
WHERE t.id = mk.movie_id AND t.production_year BETWEEN 1990 AND 2005;
