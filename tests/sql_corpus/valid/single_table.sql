SELECT COUNT(*) FROM title t WHERE t.production_year > 2000;
