-- `_` is an ordinary character in this engine's LIKE subset, not a
-- single-char wildcard (docs/sql.md).
SELECT COUNT(*) FROM keyword k WHERE k.keyword LIKE 'kw_12%';
