-- Leading comment.
SELECT COUNT(*)   -- trailing comment after the select list
FROM title t      -- the fact table
WHERE t.production_year > 2000
  -- a comment between predicates
  AND t.kind_id = 1;
