SELECT COUNT(*) FROM keyword k, movie_keyword mk
WHERE k.id = mk.keyword_id AND k.phonetic_code = 'pc_1';
