-- Tables without aliases: the table name doubles as the alias.
SELECT COUNT(*) FROM title WHERE title.production_year < 1950;
