// Tests for ANALYZE statistics and the cardinality estimator.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "catalog/imdb_schema.h"
#include "engine/database.h"
#include "query/job_workload.h"
#include "stats/cardinality_estimator.h"
#include "stats/column_stats.h"

namespace lqolab::stats {
namespace {

using storage::kNullValue;
using storage::Value;

catalog::TableDef SingleIntColumnDef() {
  catalog::TableDef def;
  def.name = "t";
  def.columns = {{"id", catalog::ColumnType::kInt},
                 {"v", catalog::ColumnType::kInt}};
  return def;
}

TEST(Analyze, ExactDistinctAndNullCounts) {
  const catalog::TableDef def = SingleIntColumnDef();
  storage::Table table(0, def);
  for (Value v : {1, 1, 2, 3, 3, 3, kNullValue, kNullValue}) {
    table.AppendRow({0, v});
  }
  const TableStats stats = Analyze(table);
  const ColumnStats& cs = stats.columns[1];
  EXPECT_EQ(cs.row_count, 8);
  EXPECT_EQ(cs.null_count, 2);
  EXPECT_EQ(cs.n_distinct, 3);
  EXPECT_EQ(cs.min_value, 1);
  EXPECT_EQ(cs.max_value, 3);
  EXPECT_NEAR(cs.NullSelectivity(), 0.25, 1e-12);
}

TEST(Analyze, McvCapturesHeavyHitter) {
  const catalog::TableDef def = SingleIntColumnDef();
  storage::Table table(0, def);
  for (int i = 0; i < 900; ++i) table.AppendRow({0, 7});
  for (int i = 0; i < 100; ++i) table.AppendRow({0, i + 100});
  const TableStats stats = Analyze(table);
  const ColumnStats& cs = stats.columns[1];
  ASSERT_FALSE(cs.mcv_values.empty());
  EXPECT_EQ(cs.mcv_values[0], 7);
  EXPECT_NEAR(cs.mcv_freqs[0], 0.9, 0.01);
  EXPECT_NEAR(cs.EqSelectivity(7), 0.9, 0.01);
}

TEST(Analyze, EqSelectivitySumsToNotNullFraction) {
  const catalog::TableDef def = SingleIntColumnDef();
  storage::Table table(0, def);
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    table.AppendRow({0, static_cast<Value>(rng.Zipf(50, 1.0))});
  }
  const TableStats stats = Analyze(table);
  const ColumnStats& cs = stats.columns[1];
  double total = 0.0;
  for (Value v = 0; v < 50; ++v) total += cs.EqSelectivity(v);
  EXPECT_NEAR(total, 1.0, 0.12);
}

TEST(Analyze, RangeSelectivityFullDomain) {
  const catalog::TableDef def = SingleIntColumnDef();
  storage::Table table(0, def);
  util::Rng rng(6);
  for (int i = 0; i < 3000; ++i) {
    table.AppendRow({0, static_cast<Value>(rng.UniformInt(0, 999))});
  }
  const TableStats stats = Analyze(table);
  const ColumnStats& cs = stats.columns[1];
  EXPECT_NEAR(cs.RangeSelectivity(0, 999), 1.0, 0.02);
  EXPECT_NEAR(cs.RangeSelectivity(0, 499), 0.5, 0.06);
  EXPECT_EQ(cs.RangeSelectivity(2000, 3000), 0.0);
  EXPECT_EQ(cs.RangeSelectivity(10, 5), 0.0);
}

/// Hand-built histograms targeting the interpolation edge cases: negative
/// domains (the old bucket search truncated the -0.5/+0.5 interpolation
/// offsets toward zero), values below bounds.front(), zero-width buckets,
/// and fully degenerate all-equal bounds.
TEST(Analyze, HistogramNegativeDomainInterpolation) {
  ColumnStats cs;
  cs.row_count = 100;
  cs.histogram_bounds = {-10, -5, 0};
  cs.histogram_fraction = 1.0;
  // [-8, -6] spans positions (-8.5, -5.5) of the first 5-wide bucket:
  // (0.9 - 0.3) / 2 buckets = 0.3 of the histogram.
  EXPECT_NEAR(cs.RangeSelectivity(-8, -6), 0.3, 1e-9);
  EXPECT_NEAR(cs.RangeSelectivity(-10, 0), 1.0, 1e-9);
  EXPECT_EQ(cs.RangeSelectivity(-100, -50), 0.0);
  EXPECT_EQ(cs.RangeSelectivity(50, 100), 0.0);
}

TEST(Analyze, HistogramAllEqualBoundsActAsPointMass) {
  ColumnStats cs;
  cs.row_count = 10;
  cs.histogram_bounds = {7, 7, 7};
  cs.histogram_fraction = 1.0;
  EXPECT_EQ(cs.RangeSelectivity(0, 10), 1.0);
  EXPECT_EQ(cs.RangeSelectivity(7, 7), 1.0);
  EXPECT_EQ(cs.RangeSelectivity(8, 10), 0.0);
  EXPECT_EQ(cs.RangeSelectivity(0, 6), 0.0);
}

TEST(Analyze, HistogramZeroWidthBucketsStayInUnitInterval) {
  ColumnStats cs;
  cs.row_count = 10;
  cs.histogram_bounds = {0, 5, 5, 5, 9};  // repeated interior bound
  cs.histogram_fraction = 1.0;
  double previous_width_sel = 0.0;
  for (Value hi = -2; hi <= 11; ++hi) {
    const double sel = cs.RangeSelectivity(-2, hi);
    ASSERT_TRUE(std::isfinite(sel)) << "hi=" << hi;
    ASSERT_GE(sel, 0.0) << "hi=" << hi;
    ASSERT_LE(sel, 1.0) << "hi=" << hi;
    // Growing the range can only grow the selectivity.
    ASSERT_GE(sel, previous_width_sel - 1e-12) << "hi=" << hi;
    previous_width_sel = sel;
  }
  EXPECT_NEAR(cs.RangeSelectivity(-2, 11), 1.0, 1e-9);
}

TEST(Analyze, HistogramBoundsSorted) {
  const catalog::TableDef def = SingleIntColumnDef();
  storage::Table table(0, def);
  util::Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    table.AppendRow({0, static_cast<Value>(rng.Gaussian(0, 1000))});
  }
  const TableStats stats = Analyze(table);
  const ColumnStats& cs = stats.columns[1];
  EXPECT_TRUE(std::is_sorted(cs.histogram_bounds.begin(),
                             cs.histogram_bounds.end()));
  EXPECT_GT(cs.histogram_fraction, 0.5);
}

TEST(Analyze, EqSelectivityOutOfRangeIsZero) {
  const catalog::TableDef def = SingleIntColumnDef();
  storage::Table table(0, def);
  for (int i = 0; i < 100; ++i) table.AppendRow({0, i});
  const TableStats stats = Analyze(table);
  const ColumnStats& cs = stats.columns[1];
  EXPECT_EQ(cs.EqSelectivity(-5), 0.0);
  EXPECT_EQ(cs.EqSelectivity(1000), 0.0);
  EXPECT_EQ(cs.EqSelectivity(kNullValue), 0.0);
}

/// Builds a table whose value distribution is picked by `shape` (uniform,
/// Zipf-skewed, Gaussian, or few-distinct with nulls) — the shapes the
/// generated IMDB columns actually exhibit.
void FillRandomTable(util::Rng* rng, int shape, storage::Table* table) {
  const int64_t rows = rng->UniformInt(200, 2000);
  for (int64_t i = 0; i < rows; ++i) {
    Value v = 0;
    switch (shape % 4) {
      case 0: v = static_cast<Value>(rng->UniformInt(-50, 50)); break;
      case 1: v = static_cast<Value>(rng->Zipf(100, 1.2)); break;
      case 2: v = static_cast<Value>(rng->Gaussian(0.0, 300.0)); break;
      default:
        v = rng->Bernoulli(0.1) ? kNullValue
                                : static_cast<Value>(rng->UniformInt(0, 5));
        break;
    }
    table->AppendRow({0, v});
  }
}

TEST(SelectivityProperty, RandomPredicatesStayWithinUnitInterval) {
  util::Rng rng(123);
  for (int trial = 0; trial < 16; ++trial) {
    storage::Table table(0, SingleIntColumnDef());
    FillRandomTable(&rng, trial, &table);
    const ColumnStats cs = Analyze(table).columns[1];
    for (int p = 0; p < 64; ++p) {
      const Value a = static_cast<Value>(rng.UniformInt(-2000, 2000));
      const Value b = static_cast<Value>(rng.UniformInt(-2000, 2000));
      std::vector<Value> in_list = {a};
      if (b != a) in_list.push_back(b);
      for (const double sel :
           {cs.EqSelectivity(a), cs.RangeSelectivity(std::min(a, b),
                                                     std::max(a, b)),
            cs.InSelectivity(in_list), cs.NullSelectivity(),
            cs.NotNullSelectivity()}) {
        EXPECT_GE(sel, 0.0) << "trial " << trial << " a=" << a << " b=" << b;
        EXPECT_LE(sel, 1.0) << "trial " << trial << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(SelectivityProperty, RangeSelectivityMonotoneInWidth) {
  util::Rng rng(321);
  for (int trial = 0; trial < 12; ++trial) {
    storage::Table table(0, SingleIntColumnDef());
    FillRandomTable(&rng, trial, &table);
    const ColumnStats cs = Analyze(table).columns[1];
    // Widening the interval on the right can only pick up more rows.
    const Value lo = static_cast<Value>(rng.UniformInt(-600, 100));
    double previous = 0.0;
    for (Value hi = lo; hi < lo + 1200; hi += rng.UniformInt(1, 30)) {
      const double sel = cs.RangeSelectivity(lo, hi);
      EXPECT_GE(sel, previous - 1e-12) << "trial " << trial << " [" << lo
                                       << ", " << hi << "]";
      previous = sel;
    }
    // And any nested interval estimates at most what its cover does.
    for (int p = 0; p < 32; ++p) {
      const Value outer_lo = static_cast<Value>(rng.UniformInt(-800, 0));
      const Value outer_hi =
          outer_lo + static_cast<Value>(rng.UniformInt(0, 1200));
      const Value inner_lo =
          outer_lo + static_cast<Value>(
                         rng.UniformInt(0, outer_hi - outer_lo));
      const Value inner_hi =
          inner_lo + static_cast<Value>(
                         rng.UniformInt(0, outer_hi - inner_lo));
      EXPECT_LE(cs.RangeSelectivity(inner_lo, inner_hi),
                cs.RangeSelectivity(outer_lo, outer_hi) + 1e-12)
          << "trial " << trial << " [" << inner_lo << ", " << inner_hi
          << "] in [" << outer_lo << ", " << outer_hi << "]";
    }
  }
}

/// Estimator tests run against a small generated database.
class EstimatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    db_ = engine::Database::CreateImdb(options).release();
    workload_ = new std::vector<query::Query>(
        query::BuildJobLiteWorkload(db_->schema()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
    workload_ = nullptr;
    db_ = nullptr;
  }
  static engine::Database* db_;
  static std::vector<query::Query>* workload_;
};

engine::Database* EstimatorTest::db_ = nullptr;
std::vector<query::Query>* EstimatorTest::workload_ = nullptr;

TEST_F(EstimatorTest, BaseRowsCloseToTruthForSimpleFilters) {
  // Single equality filters on well-covered columns should estimate within
  // a small factor (full-table ANALYZE, exact MCVs).
  const auto& estimator = db_->planner().estimator();
  int checked = 0;
  for (const auto& q : *workload_) {
    for (query::AliasId a = 0; a < q.relation_count(); ++a) {
      if (q.PredicatesFor(a).size() != 1) continue;
      const double est = estimator.EstimateBaseRows(q, a);
      const double truth =
          static_cast<double>(db_->oracle().TrueBaseRows(q, a));
      if (truth < 5) continue;  // tiny truths are dominated by clamping
      EXPECT_LT(est / truth, 4.0) << q.id << " alias " << a;
      EXPECT_GT(est / truth, 0.25) << q.id << " alias " << a;
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

TEST_F(EstimatorTest, JoinEstimateAtLeastOne) {
  const auto& estimator = db_->planner().estimator();
  for (const auto& q : *workload_) {
    EXPECT_GE(estimator.EstimateJoinRows(q, q.FullMask()), 1.0) << q.id;
  }
}

TEST_F(EstimatorTest, PkFkJoinEstimateReasonable) {
  // t JOIN mk on movie_id without filters: the estimate should be within a
  // small factor of |mk| (every mk row has a movie).
  const query::Query q = query::BuildJobQuery(db_->schema(), 3, 'a');
  // Find the aliases of title and movie_keyword.
  query::AliasId t = -1;
  query::AliasId mk = -1;
  for (query::AliasId a = 0; a < q.relation_count(); ++a) {
    if (q.relations[static_cast<size_t>(a)].table == catalog::imdb::kTitle) t = a;
    if (q.relations[static_cast<size_t>(a)].table ==
        catalog::imdb::kMovieKeyword) {
      mk = a;
    }
  }
  ASSERT_GE(t, 0);
  ASSERT_GE(mk, 0);
  query::Query bare = q;
  bare.predicates.clear();  // unfiltered join
  const auto& estimator = db_->planner().estimator();
  const double est = estimator.EstimateJoinRows(
      bare, query::MaskOf(t) | query::MaskOf(mk));
  const double truth = static_cast<double>(
      db_->context().table(catalog::imdb::kMovieKeyword).row_count());
  EXPECT_GT(est / truth, 0.3);
  EXPECT_LT(est / truth, 3.0);
}

TEST_F(EstimatorTest, CorrelatedFiltersUnderestimated) {
  // Genre correlates with kind/era in the generated data; an
  // independence-based estimator must misestimate somewhere in the
  // workload by at least an order of magnitude (that gap is the paper's
  // raison d'etre for learned optimizers).
  const auto& estimator = db_->planner().estimator();
  double worst_ratio = 1.0;
  for (const auto& q : *workload_) {
    const auto truth = db_->oracle().TrueJoinRows(q, q.FullMask());
    if (truth.overflow || truth.rows < 10) continue;
    const double est = estimator.EstimateJoinRows(q, q.FullMask());
    const double ratio =
        std::max(est / static_cast<double>(truth.rows),
                 static_cast<double>(truth.rows) / est);
    worst_ratio = std::max(worst_ratio, ratio);
  }
  EXPECT_GT(worst_ratio, 10.0);
}

TEST_F(EstimatorTest, EdgeSelectivityWithinUnit) {
  const auto& estimator = db_->planner().estimator();
  for (const auto& q : *workload_) {
    for (const auto& edge : q.edges) {
      const double sel = estimator.EdgeSelectivity(q, edge);
      EXPECT_GT(sel, 0.0) << q.id;
      EXPECT_LE(sel, 1.0) << q.id;
    }
  }
}

/// A poisoned join_selectivity_scale (0, or NaN from a bad sweep config)
/// must not leak out of EdgeSelectivity: 0 used to zero the stepwise
/// selectivity product and freeze every deeper join estimate at the clamp,
/// and NaN poisoned every cost downstream.
TEST_F(EstimatorTest, EdgeSelectivitySurvivesPoisonedScale) {
  const engine::DbConfig saved = db_->config();
  const auto& estimator = db_->planner().estimator();
  const query::Query& q = (*workload_)[0];
  ASSERT_FALSE(q.edges.empty());

  engine::DbConfig poisoned = saved;
  poisoned.join_selectivity_scale = 0.0;
  db_->SetConfig(poisoned);
  for (const auto& edge : q.edges) {
    const double sel = estimator.EdgeSelectivity(q, edge);
    EXPECT_GT(sel, 0.0);
    EXPECT_LE(sel, 1.0);
  }
  EXPECT_GE(estimator.EstimateJoinRows(q, q.FullMask()), 1.0);

  poisoned.join_selectivity_scale = std::nan("");
  db_->SetConfig(poisoned);
  for (const auto& edge : q.edges) {
    const double sel = estimator.EdgeSelectivity(q, edge);
    EXPECT_TRUE(std::isfinite(sel));
    EXPECT_GT(sel, 0.0);
    EXPECT_LE(sel, 1.0);
  }
  const double rows = estimator.EstimateJoinRows(q, q.FullMask());
  EXPECT_TRUE(std::isfinite(rows));
  EXPECT_GE(rows, 1.0);
  db_->SetConfig(saved);
}

/// The per-edge >= 1 row clamp: a chain of extremely selective joins must
/// never freeze at exactly the clamp while edges remain, and the estimate
/// must stay finite and positive however deep the chain gets.
TEST_F(EstimatorTest, DeepChainEstimatesStayPositiveUnderTinyScale) {
  const engine::DbConfig saved = db_->config();
  engine::DbConfig tiny = saved;
  tiny.join_selectivity_scale = 1e-30;
  db_->SetConfig(tiny);
  const auto& estimator = db_->planner().estimator();
  for (const auto& q : *workload_) {
    const double rows = estimator.EstimateJoinRows(q, q.FullMask());
    EXPECT_TRUE(std::isfinite(rows)) << q.id;
    EXPECT_GE(rows, 1.0) << q.id;
  }
  db_->SetConfig(saved);
}

/// Property sweep over all 113 queries: subset estimates are monotone-ish
/// under adding a relation with no filter... (not strictly true); instead we
/// check estimates are finite and positive for every connected prefix.
class EstimatePrefixProperty : public ::testing::TestWithParam<int> {};

TEST_P(EstimatePrefixProperty, FiniteOnAllPrefixes) {
  static engine::Database* db = [] {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    return engine::Database::CreateImdb(options).release();
  }();
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  const auto& q = workload[static_cast<size_t>(GetParam())];
  const auto& estimator = db->planner().estimator();
  query::AliasMask mask = 0;
  for (query::AliasId a = 0; a < q.relation_count(); ++a) {
    // Grow a connected prefix.
    query::AliasId next = -1;
    for (query::AliasId c = 0; c < q.relation_count(); ++c) {
      if (mask & query::MaskOf(c)) continue;
      if (mask == 0 || (q.AdjacencyMask(c) & mask)) {
        next = c;
        break;
      }
    }
    ASSERT_GE(next, 0);
    mask |= query::MaskOf(next);
    const double est = estimator.EstimateJoinRows(q, mask);
    EXPECT_TRUE(std::isfinite(est));
    EXPECT_GE(est, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, EstimatePrefixProperty,
                         ::testing::Range(0, 113, 7));

}  // namespace
}  // namespace lqolab::stats
