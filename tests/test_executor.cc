// Tests for the virtual-time executor: cache dynamics, operator cost
// ordering, timeouts, configuration effects.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "lqo/plan_search.h"
#include "optimizer/physical_plan.h"
#include "query/job_workload.h"

namespace lqolab::exec {
namespace {

using engine::Database;
using engine::DbConfig;
using optimizer::JoinAlgo;
using optimizer::PhysicalPlan;
using optimizer::ScanType;
using query::Query;

std::unique_ptr<Database> MakeDb(DbConfig config = DbConfig::OurFramework(),
                                 uint64_t seed = 42) {
  Database::Options options;
  options.profile = datagen::ScaleProfile::Small();
  options.seed = seed;
  options.config = config;
  return Database::CreateImdb(options);
}

TEST(Executor, ColdThenHotCache) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 2, 'a');
  const auto planned = db->PlanQuery(q);
  const auto cold = db->ExecutePlan(q, planned.plan);
  const auto warm = db->ExecutePlan(q, planned.plan);
  const auto hot = db->ExecutePlan(q, planned.plan);
  EXPECT_GT(cold.execution_ns, warm.execution_ns);
  EXPECT_GT(static_cast<double>(warm.execution_ns),
            0.90 * static_cast<double>(hot.execution_ns));
}

TEST(Executor, DropCachesRestoresColdState) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 3, 'a');
  const auto planned = db->PlanQuery(q);
  const auto cold1 = db->ExecutePlan(q, planned.plan);
  db->ExecutePlan(q, planned.plan);
  db->DropCaches();
  const auto cold2 = db->ExecutePlan(q, planned.plan);
  // Cold-again run is much slower than a hot run and in the ballpark of
  // the first cold run.
  EXPECT_GT(static_cast<double>(cold2.execution_ns),
            0.5 * static_cast<double>(cold1.execution_ns));
}

TEST(Executor, ResultRowsMatchOracle) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 1, 'a');
  const auto run = db->Run(q);
  const auto truth = db->oracle().TrueJoinRows(q, q.FullMask());
  ASSERT_FALSE(truth.overflow);
  EXPECT_EQ(run.result_rows, truth.rows);
}

TEST(Executor, NestLoopWorseThanHashOnLargeInputs) {
  auto db = MakeDb();
  // t JOIN ci on movie_id: both sides large.
  Query q;
  q.id = "exec_nl_test";
  q.relations = {{catalog::imdb::kTitle, "t"},
                 {catalog::imdb::kCastInfo, "ci"}};
  q.edges = {{0, 0, 1, 2}};
  PhysicalPlan hash;
  {
    const int32_t l = hash.AddScan(0, ScanType::kSeq);
    const int32_t r = hash.AddScan(1, ScanType::kSeq);
    hash.AddJoin(JoinAlgo::kHash, l, r);
  }
  PhysicalPlan nl;
  {
    const int32_t l = nl.AddScan(0, ScanType::kSeq);
    const int32_t r = nl.AddScan(1, ScanType::kSeq);
    nl.AddJoin(JoinAlgo::kNestLoop, l, r);
  }
  const auto hash_run = db->ExecutePlan(q, hash);
  const auto nl_run = db->ExecutePlan(q, nl);
  EXPECT_GT(nl_run.execution_ns, 10 * hash_run.execution_ns);
}

TEST(Executor, TimeoutEnforced) {
  DbConfig config = DbConfig::OurFramework();
  config.statement_timeout_ms = 1;  // 1 ms: everything times out
  auto db = MakeDb(config);
  const Query q = query::BuildJobQuery(db->schema(), 2, 'a');
  const auto planned = db->PlanQuery(q);
  const auto run = db->ExecutePlan(q, planned.plan);
  EXPECT_TRUE(run.timed_out);
  EXPECT_EQ(run.execution_ns, 1 * util::kNanosPerMilli);
}

TEST(Executor, PerQueryTimeoutOverride) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 2, 'a');
  const auto planned = db->PlanQuery(q);
  const auto run = db->ExecutePlan(q, planned.plan, 0, /*timeout_ns=*/1000);
  EXPECT_TRUE(run.timed_out);
  EXPECT_EQ(run.execution_ns, 1000);
}

TEST(Executor, NoiseMakesRunsDifferButClose) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 4, 'a');
  const auto planned = db->PlanQuery(q);
  db->ExecutePlan(q, planned.plan);  // warm up
  db->ExecutePlan(q, planned.plan);
  const auto a = db->ExecutePlan(q, planned.plan);
  const auto b = db->ExecutePlan(q, planned.plan);
  EXPECT_NE(a.execution_ns, b.execution_ns);
  const double ratio = static_cast<double>(a.execution_ns) /
                       static_cast<double>(b.execution_ns);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

TEST(Executor, DeterministicAcrossDatabases) {
  // Two identical databases produce identical measurements.
  auto db1 = MakeDb();
  auto db2 = MakeDb();
  const Query q = query::BuildJobQuery(db1->schema(), 5, 'a');
  for (int i = 0; i < 3; ++i) {
    const auto r1 = db1->Run(q);
    const auto r2 = db2->Run(q);
    EXPECT_EQ(r1.execution_ns, r2.execution_ns);
    EXPECT_EQ(r1.planning_ns, r2.planning_ns);
    EXPECT_EQ(r1.result_rows, r2.result_rows);
  }
}

TEST(Executor, WorkMemAffectsBigHashJoins) {
  DbConfig small_mem = DbConfig::OurFramework();
  small_mem.work_mem_mb = 1;  // scaled: tiny -> spills
  DbConfig big_mem = DbConfig::OurFramework();
  big_mem.work_mem_mb = 16 * 1024;
  auto db_small = MakeDb(small_mem);
  auto db_big = MakeDb(big_mem);
  Query q;
  q.id = "exec_workmem_test";
  q.relations = {{catalog::imdb::kTitle, "t"},
                 {catalog::imdb::kCastInfo, "ci"}};
  q.edges = {{0, 0, 1, 2}};
  PhysicalPlan plan;
  const int32_t l = plan.AddScan(0, ScanType::kSeq);
  const int32_t r = plan.AddScan(1, ScanType::kSeq);
  plan.AddJoin(JoinAlgo::kHash, l, r);
  // Compare hot-cache runs.
  db_small->ExecutePlan(q, plan);
  db_big->ExecutePlan(q, plan);
  const auto spill = db_small->ExecutePlan(q, plan);
  const auto in_memory = db_big->ExecutePlan(q, plan);
  EXPECT_GT(spill.execution_ns, in_memory.execution_ns);
}

TEST(Executor, ParallelWorkersSpeedUpScans) {
  DbConfig serial = DbConfig::OurFramework();
  serial.max_parallel_workers = 0;
  serial.max_parallel_workers_per_gather = 0;
  auto db_serial = MakeDb(serial);
  auto db_parallel = MakeDb(DbConfig::OurFramework());
  Query q;
  q.id = "exec_parallel_test";
  q.relations = {{catalog::imdb::kCastInfo, "ci"},
                 {catalog::imdb::kName, "n"}};
  q.edges = {{0, 1, 1, 0}};
  PhysicalPlan plan;
  const int32_t l = plan.AddScan(0, ScanType::kSeq);
  const int32_t r = plan.AddScan(1, ScanType::kSeq);
  plan.AddJoin(JoinAlgo::kHash, l, r);
  db_serial->ExecutePlan(q, plan);
  db_parallel->ExecutePlan(q, plan);
  const auto s = db_serial->ExecutePlan(q, plan);
  const auto p = db_parallel->ExecutePlan(q, plan);
  EXPECT_GE(s.execution_ns, p.execution_ns);
}

TEST(Executor, WarmupMultiplierDecays) {
  // The first run of a query signature pays the warm-up penalty; by the
  // third run only noise remains (Fig. 4's mechanism).
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 6, 'a');
  EXPECT_EQ(db->RunCount(q), 0);
  db->Run(q);
  EXPECT_EQ(db->RunCount(q), 1);
  db->Run(q);
  db->Run(q);
  EXPECT_EQ(db->RunCount(q), 3);
}

TEST(Executor, IndexNljInnerScanNotCharged) {
  // An index-NLJ with a tiny outer must be far cheaper than a full inner
  // scan would imply.
  auto db = MakeDb();
  Query q;
  q.id = "exec_inlj_test";
  q.relations = {{catalog::imdb::kKindType, "kt"},
                 {catalog::imdb::kTitle, "t"}};
  q.edges = {{0, 0, 1, 2}};  // kt.id = t.kind_id
  query::Predicate p;
  p.alias = 0;
  p.column = 1;
  p.kind = query::Predicate::Kind::kEq;
  p.str_values = {"video game"};  // rare kind
  q.predicates.push_back(p);

  PhysicalPlan inlj;
  {
    const int32_t l = inlj.AddScan(0, ScanType::kSeq);
    const int32_t r = inlj.AddScan(1, ScanType::kIndex, 2);
    inlj.AddJoin(JoinAlgo::kIndexNlj, l, r);
  }
  PhysicalPlan hash;
  {
    const int32_t l = hash.AddScan(0, ScanType::kSeq);
    const int32_t r = hash.AddScan(1, ScanType::kSeq);
    hash.AddJoin(JoinAlgo::kHash, l, r);
  }
  db->ExecutePlan(q, inlj);
  db->ExecutePlan(q, hash);
  const auto inlj_run = db->ExecutePlan(q, inlj);
  const auto hash_run = db->ExecutePlan(q, hash);
  EXPECT_EQ(inlj_run.result_rows, hash_run.result_rows);
}

/// Property sweep: for every query, any two executions of the same plan
/// report the same result rows, and pages_accessed is positive.
class ExecutorWorkloadProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorWorkloadProperty, StableResults) {
  static Database* db = MakeDb().release();
  static auto workload = query::BuildJobLiteWorkload(db->schema());
  const Query& q = workload[static_cast<size_t>(GetParam())];
  const auto planned = db->PlanQuery(q);
  const auto a = db->ExecutePlan(q, planned.plan);
  const auto b = db->ExecutePlan(q, planned.plan);
  EXPECT_EQ(a.result_rows, b.result_rows) << q.id;
  EXPECT_GT(a.pages_accessed, 0) << q.id;
  EXPECT_GT(a.execution_ns, 0) << q.id;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ExecutorWorkloadProperty,
                         ::testing::Range(0, 113, 5));

}  // namespace
}  // namespace lqolab::exec
