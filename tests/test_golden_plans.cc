// Golden-plan regression suite: snapshots the DP planner's join order,
// operator choices and estimated cost for a spread of JOB-lite queries
// against tests/golden/plans.txt. Any planner, estimator or datagen change
// that shifts a plan shows up as a readable diff here.
//
// Regenerate the fixture after an INTENDED change with:
//   ./build/tests/test_golden_plans --update-golden

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "optimizer/plan_hint.h"
#include "query/job_workload.h"
#include "serve/query_server.h"

namespace lqolab {
namespace {

bool update_golden = false;

std::string GoldenPath() { return std::string(LQOLAB_GOLDEN_DIR) + "/plans.txt"; }

/// One line per query: "<id> | cost=<estimate> | <plan>". The plan string
/// carries the full join order, join algorithms and access paths.
std::vector<std::string> SnapshotLines() {
  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Small();
  options.seed = 42;
  const auto db = engine::Database::CreateImdb(options);
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  std::vector<std::string> lines;
  // Every 5th query covers ~20 queries across the whole template range
  // (2-relation lookups through the 17-relation monsters).
  for (size_t i = 0; i < workload.size(); i += 5) {
    const query::Query& q = workload[i];
    const auto planned = db->PlanQuery(q);
    char cost[64];
    std::snprintf(cost, sizeof(cost), "%.4f", planned.estimated_cost);
    lines.push_back(q.id + " | cost=" + cost + " | " +
                    planned.plan.ToString(q));
  }
  return lines;
}

TEST(GoldenPlans, MatchesFixture) {
  const std::vector<std::string> lines = SnapshotLines();
  ASSERT_GE(lines.size(), 20u);

  if (update_golden) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.is_open()) << GoldenPath();
    out << "# DP planner snapshot: <query> | cost=<estimate> | <plan>\n";
    out << "# Regenerate: ./build/tests/test_golden_plans --update-golden\n";
    for (const std::string& line : lines) out << line << "\n";
    std::printf("updated %s (%zu plans)\n", GoldenPath().c_str(),
                lines.size());
    return;
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.is_open())
      << "missing " << GoldenPath()
      << " — run ./build/tests/test_golden_plans --update-golden";
  std::vector<std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') golden.push_back(line);
  }

  ASSERT_EQ(golden.size(), lines.size())
      << "fixture has a different query count — regenerate with "
         "--update-golden if the workload changed intentionally";
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(golden[i], lines[i])
        << "plan changed for query " << i
        << " — if intended, regenerate with --update-golden";
  }
}

TEST(GoldenPlans, SnapshotIsDeterministic) {
  EXPECT_EQ(SnapshotLines(), SnapshotLines());
}

/// Every workload plan must survive a hint round trip: render the planned
/// tree to the hint grammar (optimizer/plan_hint.h), re-parse it against
/// the same query, and get back a structurally identical plan that renders
/// to the same bytes. This is the contract the fuzzer's hint check and any
/// pg_hint_plan-style LQO integration rely on.
TEST(GoldenPlans, PlansRoundTripThroughHintGrammar) {
  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Small();
  options.seed = 42;
  const auto db = engine::Database::CreateImdb(options);
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  for (const query::Query& q : workload) {
    const auto planned = db->PlanQuery(q);
    const std::string hint = optimizer::RenderPlanHint(planned.plan, q);
    optimizer::PhysicalPlan reparsed;
    std::string error;
    ASSERT_TRUE(optimizer::ParsePlanHint(hint, q, &reparsed, &error))
        << q.id << ": " << error << "\n" << hint;
    EXPECT_TRUE(reparsed == planned.plan) << q.id << "\n" << hint;
    EXPECT_EQ(optimizer::RenderPlanHint(reparsed, q), hint) << q.id;
  }
}

/// The hint parser must reject structurally broken hints instead of
/// handing the executor a malformed tree.
TEST(GoldenPlans, HintParserRejectsMalformedHints) {
  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Small();
  options.seed = 42;
  const auto db = engine::Database::CreateImdb(options);
  const auto workload = query::BuildJobLiteWorkload(db->schema());
  const query::Query& q = workload[0];
  optimizer::PhysicalPlan plan;
  std::string error;
  EXPECT_FALSE(optimizer::ParsePlanHint("", q, &plan, &error));
  EXPECT_FALSE(optimizer::ParsePlanHint("SeqScan(zz)", q, &plan, &error))
      << "unknown alias must be rejected";
  EXPECT_FALSE(optimizer::ParsePlanHint("HashJoin(SeqScan(t))", q, &plan,
                                        &error))
      << "join arity must be enforced";
  const std::string valid = optimizer::RenderPlanHint(
      db->PlanQuery(q).plan, q);
  EXPECT_FALSE(optimizer::ParsePlanHint(valid + ")", q, &plan, &error))
      << "trailing garbage must be rejected";
}

/// Serving the same fingerprint through the plan cache must return a plan
/// byte-identical to the cold plan — and both must match the fixture.
TEST(GoldenPlans, PlanCacheHitsAreByteIdenticalToFixture) {
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.is_open())
      << "missing " << GoldenPath()
      << " — run ./build/tests/test_golden_plans --update-golden";
  std::vector<std::string> golden_plans;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // "<id> | cost=<estimate> | <plan>" — keep the plan segment.
    golden_plans.push_back(line.substr(line.rfind(" | ") + 3));
  }

  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Small();
  options.seed = 42;
  const auto db = engine::Database::CreateImdb(options);
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  serve::ServerOptions server_options;
  server_options.workers = 2;
  serve::QueryServer server(db.get(), server_options);

  size_t g = 0;
  for (size_t i = 0; i < workload.size(); i += 5, ++g) {
    ASSERT_LT(g, golden_plans.size());
    const serve::ServedQuery cold = server.Submit(workload[i]).get();
    const serve::ServedQuery warm = server.Submit(workload[i]).get();
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_TRUE(warm.cache_hit) << workload[i].id;
    EXPECT_EQ(warm.plan, cold.plan) << workload[i].id;
    EXPECT_EQ(cold.plan, golden_plans[g]) << workload[i].id;
  }
  EXPECT_EQ(g, golden_plans.size());
}

/// The SQL route keys the plan cache on the normalized statement template
/// (constants stripped, serve::PlanCacheKeyForTemplate): resubmitting a
/// template with different literals must hit, and the served plan must be
/// byte-identical to the cold plan — which itself must match the struct
/// route's fixture plan (render→parse→bind is plan-preserving).
TEST(GoldenPlans, SqlTemplateCacheHitsAreByteIdenticalToFixture) {
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.is_open())
      << "missing " << GoldenPath()
      << " — run ./build/tests/test_golden_plans --update-golden";
  std::vector<std::string> golden_plans;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    golden_plans.push_back(line.substr(line.rfind(" | ") + 3));
  }

  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Small();
  options.seed = 42;
  const auto db = engine::Database::CreateImdb(options);
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  serve::ServerOptions server_options;
  server_options.workers = 2;
  serve::QueryServer server(db.get(), server_options);

  size_t g = 0;
  for (size_t i = 0; i < workload.size(); i += 5, ++g) {
    ASSERT_LT(g, golden_plans.size());
    const std::string sql = workload[i].ToSql(db->schema());
    const serve::ServedQuery cold =
        server.SubmitSql(sql, workload[i].id).get();
    ASSERT_TRUE(cold.status.ok()) << workload[i].id << ": "
                                  << cold.status.ToString();
    const serve::ServedQuery warm =
        server.SubmitSql(sql, workload[i].id).get();
    EXPECT_FALSE(cold.cache_hit) << workload[i].id;
    EXPECT_TRUE(warm.cache_hit) << workload[i].id;
    EXPECT_EQ(warm.plan, cold.plan) << workload[i].id;
    EXPECT_EQ(cold.plan, golden_plans[g]) << workload[i].id;
  }
  EXPECT_EQ(g, golden_plans.size());

  // The point of template keying: different literals, same template, warm
  // hit with a byte-identical plan.
  const serve::ServedQuery cold = server.SubmitSql(
      "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE "
      "mk.movie_id = t.id AND t.production_year > 2000;").get();
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  const serve::ServedQuery warm = server.SubmitSql(
      "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE "
      "mk.movie_id = t.id AND t.production_year > 1985;").get();
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.plan, cold.plan);

  // Malformed text resolves at admission with an anchored diagnostic and
  // never reaches the cache or the workers.
  const serve::ServedQuery bad =
      server.SubmitSql("SELECT COUNT(*) FROM nowhere x;").get();
  EXPECT_EQ(bad.status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status.message().find("unknown table"), std::string::npos)
      << bad.status.message();
}

/// The execution-engine knobs (DbConfig::vectorized_exec,
/// predicate_transfer) are deliberately invisible to the planner — its cost
/// model stays pinned to the scalar constants — and excluded from the plan
/// cache key. So servers over either engine must serve byte-identical
/// plans, cold and from cache, with identical result rows.
TEST(GoldenPlans, PlansAreByteIdenticalAcrossExecutionEngines) {
  engine::Database::Options options;
  options.profile = datagen::ScaleProfile::Small();
  options.seed = 42;
  options.config.vectorized_exec = false;
  options.config.predicate_transfer = false;
  const auto scalar_db = engine::Database::CreateImdb(options);
  options.config.vectorized_exec = true;
  options.config.predicate_transfer = true;
  const auto vectorized_db = engine::Database::CreateImdb(options);
  const auto workload = query::BuildJobLiteWorkload(vectorized_db->schema());

  serve::ServerOptions server_options;
  server_options.workers = 2;
  serve::QueryServer scalar_server(scalar_db.get(), server_options);
  serve::QueryServer vectorized_server(vectorized_db.get(), server_options);

  for (size_t i = 0; i < workload.size(); i += 5) {
    const query::Query& q = workload[i];
    const serve::ServedQuery scalar_cold = scalar_server.Submit(q).get();
    const serve::ServedQuery cold = vectorized_server.Submit(q).get();
    const serve::ServedQuery warm = vectorized_server.Submit(q).get();
    EXPECT_EQ(cold.plan, scalar_cold.plan) << q.id;
    EXPECT_EQ(cold.result_rows, scalar_cold.result_rows) << q.id;
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_TRUE(warm.cache_hit) << q.id;
    EXPECT_EQ(warm.plan, cold.plan) << q.id;
  }
}

}  // namespace
}  // namespace lqolab

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      lqolab::update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
