// Chaos tests (ctest label: chaos): deterministic fault injection through
// faultlib, containment of injected storage/executor faults as typed
// statuses, deadline cancellation mid-plan, graceful allocation-pressure
// degradation, bounded retry in the serving stack, and the differential
// oracle's fault mode (faults may cost availability, never correctness).
// Everything is seeded; the suite runs in a few seconds.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/deadline.h"
#include "faultlib/faultlib.h"
#include "fuzz/differential.h"
#include "lqo/native_passthrough.h"
#include "obs/metrics.h"
#include "query/job_workload.h"
#include "serve/query_server.h"
#include "util/status.h"

namespace lqolab {
namespace {

using faultlib::FaultInjector;
using faultlib::FaultKind;
using faultlib::FaultPlan;
using faultlib::FaultRule;
using faultlib::ScopedFaultInjection;
using serve::QueryServer;
using serve::RouteMode;
using serve::ServedQuery;
using serve::ServerOptions;
using util::StatusCode;

/// One small database shared by every test in this binary (servers and
/// replicas execute on clones; the shared instance stays pristine).
engine::Database* SharedDb() {
  static std::unique_ptr<engine::Database> db = [] {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    return engine::Database::CreateImdb(options);
  }();
  return db.get();
}

const std::vector<query::Query>& Workload() {
  static const std::vector<query::Query> workload =
      query::BuildJobLiteWorkload(SharedDb()->schema());
  return workload;
}

/// The canonical fault-free replay outcome for occurrence 0 of `q`.
engine::QueryRun CleanRun(const query::Query& q) {
  const auto replica = SharedDb()->CloneContextForWorker();
  const auto planned = replica->PlanQuery(q);
  replica->BeginQueryReplay(SharedDb()->seed(), q);
  return replica->ExecutePlan(q, planned.plan, planned.planning_ns);
}

FaultRule ErrorRule(const char* point) {
  FaultRule rule;
  rule.point = point;
  rule.kind = FaultKind::kError;
  return rule;
}

TEST(FaultInjector, DisabledCheckIsNoop) {
  ASSERT_EQ(faultlib::Current(), nullptr);
  const faultlib::FaultAction action = LQOLAB_FAULT_POINT("buffer.read_page");
  EXPECT_FALSE(action.fired());
}

TEST(FaultInjector, UnarmedPointNeverFires) {
  FaultPlan plan;
  FaultRule rule = ErrorRule("buffer.read_page");
  rule.every_nth = 1;
  plan.Add(rule);
  FaultInjector injector(plan);
  ScopedFaultInjection inject(&injector);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(LQOLAB_FAULT_POINT("exec.node").fired());
  }
  EXPECT_EQ(injector.hits("exec.node"), 0);
  EXPECT_EQ(injector.total_fires(), 0);
}

TEST(FaultInjector, EveryNthFiresDeterministically) {
  FaultPlan plan;
  FaultRule rule = ErrorRule("p");
  rule.every_nth = 3;
  plan.Add(rule);
  FaultInjector injector(plan);
  ScopedFaultInjection inject(&injector);
  std::vector<int> fired_hits;
  for (int i = 0; i < 9; ++i) {
    if (LQOLAB_FAULT_POINT("p").fired()) fired_hits.push_back(i);
  }
  EXPECT_EQ(fired_hits, (std::vector<int>{2, 5, 8}));
  EXPECT_EQ(injector.hits("p"), 9);
  EXPECT_EQ(injector.fires("p"), 3);
}

TEST(FaultInjector, SkipHitsAndMaxFiresBoundTheSchedule) {
  FaultPlan plan;
  FaultRule rule = ErrorRule("p");
  rule.every_nth = 1;
  rule.skip_hits = 5;
  rule.max_fires = 2;
  plan.Add(rule);
  FaultInjector injector(plan);
  ScopedFaultInjection inject(&injector);
  std::vector<int> fired_hits;
  for (int i = 0; i < 12; ++i) {
    if (LQOLAB_FAULT_POINT("p").fired()) fired_hits.push_back(i);
  }
  EXPECT_EQ(fired_hits, (std::vector<int>{5, 6}));
  EXPECT_EQ(injector.fires("p"), 2);
}

TEST(FaultInjector, ProbabilityStreamIsSeededAndDeterministic) {
  auto run = [](uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    FaultRule rule = ErrorRule("p");
    rule.probability = 0.3;
    plan.Add(rule);
    FaultInjector injector(plan);
    ScopedFaultInjection inject(&injector);
    std::vector<bool> decisions;
    for (int i = 0; i < 1000; ++i) {
      decisions.push_back(LQOLAB_FAULT_POINT("p").fired());
    }
    return decisions;
  };

  const std::vector<bool> a = run(7);
  EXPECT_EQ(a, run(7));  // Bit-identical replay under the same seed.
  const int64_t fires =
      static_cast<int64_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 240);  // ~4 sigma around the 300/1000 expectation.
  EXPECT_LT(fires, 360);
  EXPECT_NE(run(8), a);  // Another seed draws another schedule.
}

TEST(FaultInjector, FiresAreCountedOnTheMetricsRegistry) {
  obs::MetricsRegistry metrics;
  obs::MetricsScope scope(&metrics);
  FaultPlan plan;
  FaultRule error = ErrorRule("a");
  error.every_nth = 1;
  FaultRule latency;
  latency.point = "b";
  latency.kind = FaultKind::kLatency;
  latency.latency_ns = 10;
  latency.every_nth = 1;
  plan.Add(error);
  plan.Add(latency);
  FaultInjector injector(plan);
  ScopedFaultInjection inject(&injector);
  (void)LQOLAB_FAULT_POINT("a");
  (void)LQOLAB_FAULT_POINT("b");
  (void)LQOLAB_FAULT_POINT("b");
  EXPECT_EQ(metrics.Get(obs::Counter::kFaultInjectedErrors), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kFaultInjectedLatency), 2);
}

TEST(FaultInjector, ScopesNestAndRestore) {
  FaultPlan plan;
  plan.Add(ErrorRule("p"));
  FaultInjector outer(plan);
  FaultInjector inner(plan);
  ASSERT_EQ(faultlib::Current(), nullptr);
  {
    ScopedFaultInjection a(&outer);
    EXPECT_EQ(faultlib::Current(), &outer);
    {
      ScopedFaultInjection b(&inner);
      EXPECT_EQ(faultlib::Current(), &inner);
    }
    EXPECT_EQ(faultlib::Current(), &outer);
  }
  EXPECT_EQ(faultlib::Current(), nullptr);
}

TEST(ExecutorFaults, ReadPageErrorIsContainedAsTypedStatus) {
  const query::Query& q = Workload()[0];
  const engine::QueryRun clean = CleanRun(q);
  ASSERT_TRUE(clean.status.ok());

  FaultPlan plan;
  FaultRule rule = ErrorRule("buffer.read_page");
  rule.every_nth = 1;
  plan.Add(rule);
  FaultInjector injector(plan);

  const auto replica = SharedDb()->CloneContextForWorker();
  const auto planned = replica->PlanQuery(q);
  replica->BeginQueryReplay(SharedDb()->seed(), q);
  engine::QueryRun faulted;
  {
    ScopedFaultInjection inject(&injector);
    faulted = replica->ExecutePlan(q, planned.plan, planned.planning_ns);
  }
  EXPECT_EQ(faulted.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(faulted.status.retryable());
  EXPECT_FALSE(faulted.timed_out);
  EXPECT_EQ(faulted.result_rows, 0);
  EXPECT_GT(injector.fires("buffer.read_page"), 0);

  // The fault never leaks into later executions: a clean replay on the
  // same replica reproduces the canonical run exactly.
  replica->BeginQueryReplay(SharedDb()->seed(), q);
  const engine::QueryRun after =
      replica->ExecutePlan(q, planned.plan, planned.planning_ns);
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(after.result_rows, clean.result_rows);
  EXPECT_EQ(after.execution_ns, clean.execution_ns);
}

TEST(ExecutorFaults, LatencySpikeChargesVirtualTimeOnly) {
  const query::Query& q = Workload()[0];
  const engine::QueryRun clean = CleanRun(q);

  FaultPlan plan;
  FaultRule rule;
  rule.point = "buffer.read_page";
  rule.kind = FaultKind::kLatency;
  rule.latency_ns = 50'000;
  rule.every_nth = 100;
  plan.Add(rule);
  FaultInjector injector(plan);

  const auto replica = SharedDb()->CloneContextForWorker();
  const auto planned = replica->PlanQuery(q);
  replica->BeginQueryReplay(SharedDb()->seed(), q);
  engine::QueryRun slow;
  {
    ScopedFaultInjection inject(&injector);
    slow = replica->ExecutePlan(q, planned.plan, planned.planning_ns);
  }
  // Latency faults degrade, never break: the answer is intact and slower.
  EXPECT_TRUE(slow.status.ok());
  EXPECT_EQ(slow.result_rows, clean.result_rows);
  EXPECT_GT(slow.execution_ns, clean.execution_ns);
}

TEST(ExecutorFaults, DeadlineCancellationAbortsWithTheCancelCode) {
  obs::MetricsRegistry metrics;
  obs::MetricsScope scope(&metrics);
  const query::Query& q = Workload()[0];
  const auto replica = SharedDb()->CloneContextForWorker();
  const auto planned = replica->PlanQuery(q);

  exec::QueryDeadline deadline;
  EXPECT_FALSE(deadline.cancelled());
  deadline.Cancel(StatusCode::kShutdown);
  // First cancel wins; a racing second cancel must not overwrite the code.
  deadline.Cancel(StatusCode::kCancelled);
  EXPECT_EQ(deadline.code(), StatusCode::kShutdown);

  replica->BeginQueryReplay(SharedDb()->seed(), q);
  const engine::QueryRun run = replica->ExecutePlan(
      q, planned.plan, planned.planning_ns, /*timeout_ns=*/0, &deadline);
  EXPECT_EQ(run.status.code(), StatusCode::kShutdown);
  EXPECT_FALSE(run.status.retryable());
  EXPECT_EQ(run.result_rows, 0);
  EXPECT_EQ(metrics.Get(obs::Counter::kExecCancelled), 1);
}

TEST(ExecutorFaults, StatementTimeoutReportsDeadlineExceeded) {
  const query::Query& q = Workload()[20];
  const auto replica = SharedDb()->CloneContextForWorker();
  const auto planned = replica->PlanQuery(q);
  replica->BeginQueryReplay(SharedDb()->seed(), q);
  const engine::QueryRun run = replica->ExecutePlan(
      q, planned.plan, planned.planning_ns, /*timeout_ns=*/1);
  EXPECT_TRUE(run.timed_out);
  EXPECT_EQ(run.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(run.status.retryable());
}

// --- Batched-engine fault boundaries ---------------------------------------
// The vectorized engine (DbConfig::vectorized_exec) keeps long-lived scratch
// state — selection vectors, grouped join tables, Bloom filters — that an
// aborted run leaves mid-flight. These tests pin that faults, cancellation
// and oracle overflow behave identically on both engines and never poison
// later clean runs through that reused state.

std::unique_ptr<engine::Database> EngineReplica(bool vectorized) {
  auto replica = SharedDb()->CloneContextForWorker();
  engine::DbConfig config = replica->config();
  config.vectorized_exec = vectorized;
  replica->SetConfig(config);
  return replica;
}

TEST(BatchedEngineFaults, ExecNodeFaultMidPlanIsContainedOnBothEngines) {
  const query::Query& q = Workload()[0];
  std::vector<int64_t> clean_rows;
  for (const bool vectorized : {false, true}) {
    const auto replica = EngineReplica(vectorized);
    const auto planned = replica->PlanQuery(q);

    FaultPlan plan;
    FaultRule rule = ErrorRule("exec.node");
    rule.every_nth = 1;
    rule.skip_hits = 2;  // fires at the third node boundary: mid-plan, with
                         // batched scratch already holding partial state
    plan.Add(rule);
    FaultInjector injector(plan);

    replica->BeginQueryReplay(SharedDb()->seed(), q);
    engine::QueryRun faulted;
    {
      ScopedFaultInjection inject(&injector);
      faulted = replica->ExecutePlan(q, planned.plan, planned.planning_ns);
    }
    EXPECT_FALSE(faulted.status.ok()) << (vectorized ? "vec" : "scalar");
    EXPECT_EQ(faulted.result_rows, 0);
    EXPECT_GT(injector.fires("exec.node"), 0);

    // Clean replay on the same replica must be untouched by the abandoned
    // intermediate state.
    replica->BeginQueryReplay(SharedDb()->seed(), q);
    const engine::QueryRun after =
        replica->ExecutePlan(q, planned.plan, planned.planning_ns);
    EXPECT_TRUE(after.status.ok());
    clean_rows.push_back(after.result_rows);
  }
  ASSERT_EQ(clean_rows.size(), 2u);
  EXPECT_EQ(clean_rows[0], clean_rows[1]) << "scalar vs vectorized rows";
}

TEST(BatchedEngineFaults, DeadlineCancellationBehavesIdenticallyPerEngine) {
  const query::Query& q = Workload()[3];
  for (const bool vectorized : {false, true}) {
    obs::MetricsRegistry metrics;
    obs::MetricsScope scope(&metrics);
    const auto replica = EngineReplica(vectorized);
    const auto planned = replica->PlanQuery(q);

    exec::QueryDeadline deadline;
    deadline.Cancel(StatusCode::kCancelled);
    replica->BeginQueryReplay(SharedDb()->seed(), q);
    const engine::QueryRun run = replica->ExecutePlan(
        q, planned.plan, planned.planning_ns, /*timeout_ns=*/0, &deadline);
    EXPECT_EQ(run.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(run.result_rows, 0);
    EXPECT_EQ(metrics.Get(obs::Counter::kExecCancelled), 1);

    replica->BeginQueryReplay(SharedDb()->seed(), q);
    const engine::QueryRun after =
        replica->ExecutePlan(q, planned.plan, planned.planning_ns);
    EXPECT_TRUE(after.status.ok()) << (vectorized ? "vec" : "scalar");
  }
}

TEST(BatchedEngineFaults, OracleOverflowTimesOutIdenticallyOnBothEngines) {
  // Cyclic self-join on the ~12-value role_id column: the triangle's true
  // cardinality exceeds every materialization cap and the cycle defeats the
  // oracle's tree-count fallback, so the subset is an honest overflow. Both
  // engines must classify the plan as timed out rather than disagree on a
  // partial count.
  const catalog::Schema& schema = SharedDb()->schema();
  const catalog::TableId cast_info = schema.FindTable("cast_info");
  ASSERT_NE(cast_info, catalog::kInvalidTable);
  const catalog::ColumnId role_id =
      schema.table(cast_info).FindColumn("role_id");
  ASSERT_NE(role_id, catalog::kInvalidColumn);

  query::Query q;
  q.id = "chaos_overflow_cycle";
  q.relations = {{cast_info, "c1"}, {cast_info, "c2"}, {cast_info, "c3"}};
  q.edges = {{0, role_id, 1, role_id},
             {1, role_id, 2, role_id},
             {2, role_id, 0, role_id}};

  for (const bool vectorized : {false, true}) {
    const auto replica = EngineReplica(vectorized);
    const auto planned = replica->PlanQuery(q);
    replica->BeginQueryReplay(SharedDb()->seed(), q);
    const engine::QueryRun run =
        replica->ExecutePlan(q, planned.plan, planned.planning_ns);
    EXPECT_TRUE(run.timed_out) << (vectorized ? "vec" : "scalar");
    EXPECT_EQ(run.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(run.result_rows, 0);
  }
}

TEST(AllocationPressure, TrySetConfigDegradesToTypedStatus) {
  const auto replica = SharedDb()->CloneContextForWorker();
  const engine::DbConfig before = replica->config();

  engine::DbConfig bad = before;
  bad.shared_buffers_mb = -1;
  const util::Status status = replica->TrySetConfig(bad);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(status.retryable());
  // The rejected config left the engine untouched and still serving.
  EXPECT_EQ(replica->config().shared_buffers_mb, before.shared_buffers_mb);
  const query::Query& q = Workload()[0];
  const auto planned = replica->PlanQuery(q);
  replica->BeginQueryReplay(SharedDb()->seed(), q);
  EXPECT_TRUE(
      replica->ExecutePlan(q, planned.plan, planned.planning_ns).status.ok());

  engine::DbConfig good = before;
  good.shared_buffers_mb = std::max<int64_t>(1, before.shared_buffers_mb / 2);
  EXPECT_TRUE(replica->TrySetConfig(good).ok());
  EXPECT_EQ(replica->config().shared_buffers_mb, good.shared_buffers_mb);
}

TEST(ServeChaos, TransientWorkerFaultIsRetriedToSuccess) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kPglite;
  options.max_retries = 2;
  QueryServer server(SharedDb(), options);

  FaultPlan plan;
  FaultRule rule = ErrorRule("serve.worker");
  rule.every_nth = 1;
  rule.max_fires = 1;  // Exactly one transient fault, then healthy.
  plan.Add(rule);
  FaultInjector injector(plan);
  ScopedFaultInjection inject(&injector);

  const query::Query& q = Workload()[0];
  const ServedQuery served = server.Submit(q).get();
  EXPECT_TRUE(served.status.ok());
  EXPECT_EQ(served.retries, 1);
  EXPECT_GT(served.backoff_ns, 0);
  EXPECT_EQ(served.result_rows, CleanRun(q).result_rows);

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeRetries), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kFaultInjectedErrors), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kServeQueries), 1);
}

TEST(ServeChaos, ExhaustedRetriesSurfaceTheFaultStatus) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kPglite;
  options.max_retries = 1;
  QueryServer server(SharedDb(), options);

  FaultPlan plan;
  FaultRule rule = ErrorRule("serve.worker");
  rule.every_nth = 1;  // Unlimited: every attempt fails.
  plan.Add(rule);
  FaultInjector injector(plan);
  ScopedFaultInjection inject(&injector);

  const ServedQuery served = server.Submit(Workload()[0]).get();
  EXPECT_EQ(served.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(served.retries, 1);
  EXPECT_EQ(injector.fires("serve.worker"), 2);  // Initial try + 1 retry.
}

TEST(ServeChaos, SingleWorkerSoakIsDeterministic) {
  struct Outcome {
    StatusCode code;
    int64_t rows;
    int32_t retries;
  };
  auto soak = [&]() {
    ServerOptions options;
    options.workers = 1;
    options.route = RouteMode::kLqo;
    options.cache.capacity_per_shard = 0;  // Plan every admission.
    QueryServer server(SharedDb(), options);
    server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());

    FaultPlan plan;
    plan.seed = 11;
    FaultRule storage = ErrorRule("buffer.read_page");
    storage.probability = 0.002;
    FaultRule worker = ErrorRule("serve.worker");
    worker.probability = 0.05;
    plan.Add(storage);
    plan.Add(worker);
    FaultInjector injector(plan);
    ScopedFaultInjection inject(&injector);

    std::vector<Outcome> outcomes;
    for (size_t i = 0; i < 20; ++i) {
      const ServedQuery served =
          server.Submit(Workload()[i % Workload().size()]).get();
      outcomes.push_back(
          {served.status.code(), served.result_rows, served.retries});
    }
    server.Shutdown();
    return outcomes;
  };

  const auto a = soak();
  const auto b = soak();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].code, b[i].code) << "query " << i;
    EXPECT_EQ(a[i].rows, b[i].rows) << "query " << i;
    EXPECT_EQ(a[i].retries, b[i].retries) << "query " << i;
    // Faults cost availability, never correctness: every success matches
    // its canonical fault-free replay.
    if (a[i].code == StatusCode::kOk) {
      EXPECT_EQ(a[i].rows, CleanRun(Workload()[i % Workload().size()]).result_rows)
          << "query " << i;
    }
  }
}

TEST(DifferentialFaultMode, FaultsNeverChangeCardinalityOfSuccesses) {
  fuzz::DifferentialOptions options;
  FaultRule storage = ErrorRule("buffer.read_page");
  storage.probability = 0.01;
  FaultRule latency;
  latency.point = "exec.node";
  latency.kind = FaultKind::kLatency;
  latency.latency_ns = 25'000;
  latency.probability = 0.05;
  options.fault_plan.seed = 3;
  options.fault_plan.Add(storage);
  options.fault_plan.Add(latency);

  fuzz::DifferentialOracle oracle(SharedDb(), options);
  fuzz::CheckCounts checks;
  int32_t checked = 0;
  for (const query::Query& q : Workload()) {
    if (q.relation_count() > 4) continue;
    const fuzz::CheckReport report = oracle.Check(q);
    for (const fuzz::Discrepancy& d : report.discrepancies) {
      ADD_FAILURE() << d.check << ": " << d.detail;
    }
    checks += report.checks;
    if (++checked == 3) break;
  }
  ASSERT_EQ(checked, 3);
  EXPECT_EQ(checks.fault_execution, 3);
}

}  // namespace
}  // namespace lqolab
