// Unit tests for the storage layer: columns, tables, indexes, LRU cache,
// two-tier buffer pool.

#include <gtest/gtest.h>

#include "catalog/imdb_schema.h"
#include "storage/buffer_pool.h"
#include "storage/column.h"
#include "storage/index.h"
#include "storage/lru_cache.h"
#include "storage/table.h"

namespace lqolab::storage {
namespace {

catalog::TableDef TwoColumnDef() {
  catalog::TableDef def;
  def.name = "t";
  def.columns = {{"id", catalog::ColumnType::kInt},
                 {"label", catalog::ColumnType::kString}};
  return def;
}

TEST(Column, DictionaryInternsOnce) {
  Column column(catalog::ColumnType::kString);
  const Value a = column.InternString("alpha");
  const Value b = column.InternString("beta");
  EXPECT_EQ(column.InternString("alpha"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(column.dictionary_size(), 2);
  EXPECT_EQ(column.StringAt(a), "alpha");
  EXPECT_EQ(column.LookupString("beta"), b);
  EXPECT_EQ(column.LookupString("missing"), kNullValue);
}

TEST(Table, AppendAndRead) {
  const catalog::TableDef def = TwoColumnDef();
  Table table(0, def);
  const Value label = table.column(1).InternString("x");
  table.AppendRow({1, label});
  table.AppendRow({2, label});
  EXPECT_EQ(table.row_count(), 2);
  EXPECT_EQ(table.column(0).at(1), 2);
  EXPECT_EQ(table.column(1).at(0), label);
}

TEST(Table, PageAccounting) {
  const catalog::TableDef def = TwoColumnDef();
  Table table(0, def);
  EXPECT_EQ(table.page_count(), 0);
  for (int i = 0; i < kRowsPerPage + 1; ++i) table.AppendRow({i, kNullValue});
  EXPECT_EQ(table.page_count(), 2);
  EXPECT_EQ(Table::PageOfRow(0), 0);
  EXPECT_EQ(Table::PageOfRow(static_cast<RowId>(kRowsPerPage)), 1);
}

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : def_(TwoColumnDef()), table_(0, def_) {
    // Values: 0, 5, 5, 10, 15, NULL, 5.
    for (Value v : {0, 5, 5, 10, 15, kNullValue, 5}) {
      table_.AppendRow({v, kNullValue});
    }
    index_ = std::make_unique<Index>(table_, 0);
  }
  catalog::TableDef def_;
  Table table_;
  std::unique_ptr<Index> index_;
};

TEST_F(IndexTest, SkipsNulls) { EXPECT_EQ(index_->entry_count(), 6); }

TEST_F(IndexTest, EqualRange) {
  const auto rows = index_->EqualRange(5);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], 1);
  EXPECT_EQ(rows[1], 2);
  EXPECT_EQ(rows[2], 6);
  EXPECT_TRUE(index_->EqualRange(99).empty());
}

TEST_F(IndexTest, RangeQueries) {
  EXPECT_EQ(index_->Range(5, 10).size(), 4u);
  EXPECT_EQ(index_->CountRange(5, 10), 4);
  EXPECT_EQ(index_->CountRange(0, 15), 6);
  EXPECT_EQ(index_->CountRange(11, 14), 0);
  EXPECT_EQ(index_->CountRange(10, 5), 0);  // inverted range
}

TEST_F(IndexTest, MinMax) {
  EXPECT_EQ(index_->min_value(), 0);
  EXPECT_EQ(index_->max_value(), 15);
}

TEST_F(IndexTest, HeightGrowsWithSize) {
  EXPECT_EQ(index_->height(), 1);
  catalog::TableDef def = TwoColumnDef();
  Table big(0, def);
  for (int i = 0; i < 300 * 256; ++i) big.AppendRow({i, kNullValue});
  Index big_index(big, 0);
  EXPECT_GE(big_index.height(), 2);
}

TEST(LruCache, HitsAndEvictions) {
  LruCache cache(2);
  EXPECT_FALSE(cache.Touch(1));
  EXPECT_FALSE(cache.Touch(2));
  EXPECT_TRUE(cache.Touch(1));   // 1 now most recent
  EXPECT_FALSE(cache.Touch(3));  // evicts 2
  EXPECT_FALSE(cache.Touch(2));  // 2 was evicted
  EXPECT_EQ(cache.size(), 2);
}

TEST(LruCache, ZeroCapacityNeverHits) {
  LruCache cache(0);
  EXPECT_FALSE(cache.Touch(1));
  EXPECT_FALSE(cache.Touch(1));
  EXPECT_EQ(cache.size(), 0);
}

TEST(LruCache, ResizeClears) {
  LruCache cache(4);
  cache.Touch(1);
  cache.Resize(8);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.capacity(), 8);
}

TEST(LruCache, TouchReportsEvictedKey) {
  LruCache cache(1);
  uint64_t evicted = 0;
  EXPECT_FALSE(cache.Touch(7, &evicted));
  EXPECT_EQ(evicted, 0u);  // no eviction on the first insert
  EXPECT_FALSE(cache.Touch(9, &evicted));
  EXPECT_EQ(evicted, 7u);
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(LruCache, ClearCountsDroppedEntriesAsEvictions) {
  LruCache cache(4);
  cache.Touch(1);
  cache.Touch(2);
  cache.Touch(3);
  EXPECT_EQ(cache.evictions(), 0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  // The lifetime eviction counter includes entries dropped wholesale.
  EXPECT_EQ(cache.evictions(), 3);
}

TEST(LruCache, ResizeCountsDroppedEntriesAsEvictions) {
  LruCache cache(4);
  cache.Touch(1);
  cache.Touch(2);
  cache.Resize(1);  // capacity shrink clears, which must count
  EXPECT_EQ(cache.evictions(), 2);
  cache.Touch(3);
  cache.Touch(4);  // evicts 3
  EXPECT_EQ(cache.evictions(), 3);
}

TEST(LruCache, TryResizeRejectsNegativeCapacityAndKeepsState) {
  LruCache cache(4);
  cache.Touch(1);
  const util::Status status = cache.TryResize(-1);
  EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_TRUE(status.retryable());
  // The failed resize changed nothing: same capacity, entry still warm.
  EXPECT_EQ(cache.capacity(), 4);
  EXPECT_TRUE(cache.Contains(1));

  EXPECT_TRUE(cache.TryResize(8).ok());
  EXPECT_EQ(cache.capacity(), 8);
  EXPECT_FALSE(cache.Contains(1));  // a successful resize still clears
}

TEST(BufferPool, TryResizeRejectsNegativeTiersWithoutPartialResize) {
  BufferPool pool(4, 16);
  const uint64_t key = BufferPool::PageKey(1, PageKind::kHeap, -1, 0);
  pool.Access(key);

  // Either tier being unsatisfiable fails the whole resize; neither tier
  // may change (no half-resized pool).
  EXPECT_EQ(pool.TryResize(-1, 16).code(),
            util::StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.TryResize(4, -1).code(),
            util::StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.shared_capacity(), 4);
  EXPECT_EQ(pool.os_capacity(), 16);
  EXPECT_EQ(pool.Access(key), AccessTier::kSharedHit);

  EXPECT_TRUE(pool.TryResize(8, 32).ok());
  EXPECT_EQ(pool.shared_capacity(), 8);
  EXPECT_EQ(pool.os_capacity(), 32);
  EXPECT_EQ(pool.Access(key), AccessTier::kDisk);  // resize drops caches
}

TEST(BufferPool, TierProgression) {
  BufferPool pool(4, 16);
  const uint64_t key = BufferPool::PageKey(1, PageKind::kHeap, -1, 0);
  EXPECT_EQ(pool.Access(key), AccessTier::kDisk);
  EXPECT_EQ(pool.Access(key), AccessTier::kSharedHit);
  EXPECT_EQ(pool.disk_reads(), 1);
  EXPECT_EQ(pool.shared_hits(), 1);
}

TEST(BufferPool, OsTierServesSharedEvictions) {
  BufferPool pool(2, 16);
  // Fill shared buffers beyond capacity; early pages fall back to OS tier.
  for (int64_t p = 0; p < 6; ++p) {
    pool.Access(BufferPool::PageKey(1, PageKind::kHeap, -1, p));
  }
  const AccessTier tier =
      pool.Access(BufferPool::PageKey(1, PageKind::kHeap, -1, 0));
  EXPECT_EQ(tier, AccessTier::kOsHit);
}

TEST(BufferPool, DropCachesColdAgain) {
  BufferPool pool(8, 16);
  const uint64_t key = BufferPool::PageKey(2, PageKind::kIndexLeaf, 3, 5);
  pool.Access(key);
  pool.DropCaches();
  EXPECT_EQ(pool.Access(key), AccessTier::kDisk);
}

TEST(BufferPool, DropSharedKeepsOsTier) {
  BufferPool pool(8, 16);
  const uint64_t key = BufferPool::PageKey(2, PageKind::kHeap, -1, 5);
  pool.Access(key);
  pool.DropSharedBuffers();
  EXPECT_EQ(pool.Access(key), AccessTier::kOsHit);
}

TEST(BufferPool, PageKeyDistinguishesComponents) {
  const uint64_t heap = BufferPool::PageKey(1, PageKind::kHeap, -1, 7);
  const uint64_t leaf = BufferPool::PageKey(1, PageKind::kIndexLeaf, 0, 7);
  const uint64_t leaf_other_col = BufferPool::PageKey(1, PageKind::kIndexLeaf, 1, 7);
  const uint64_t other_table = BufferPool::PageKey(2, PageKind::kHeap, -1, 7);
  const uint64_t other_page = BufferPool::PageKey(1, PageKind::kHeap, -1, 8);
  EXPECT_NE(heap, leaf);
  EXPECT_NE(leaf, leaf_other_col);
  EXPECT_NE(heap, other_table);
  EXPECT_NE(heap, other_page);
}

/// Property sweep: LRU semantics — after touching keys 0..n-1 in order with
/// capacity c, exactly the last c keys are resident.
class LruProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LruProperty, LastCKeysResident) {
  const auto [capacity, touches] = GetParam();
  LruCache cache(capacity);
  for (int i = 0; i < touches; ++i) cache.Touch(static_cast<uint64_t>(i));
  for (int i = 0; i < touches; ++i) {
    const bool expected = i >= touches - capacity;
    EXPECT_EQ(cache.Contains(static_cast<uint64_t>(i)), expected)
        << "capacity=" << capacity << " touches=" << touches << " key=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LruProperty,
    ::testing::Combine(::testing::Values(1, 2, 5, 16),
                       ::testing::Values(1, 4, 17, 64)));

}  // namespace
}  // namespace lqolab::storage
