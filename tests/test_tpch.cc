// Tests for the TPC-H-lite corner: the 8-table schema, the deterministic
// generator, the workloads/tpch_lite.sql templates (load, round-trip,
// execute), the benchkit split samplers over the workload, and the
// orders-rooted cascade subsample used by the fig7 covariate-shift bench.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "benchkit/splits.h"
#include "catalog/tpch_schema.h"
#include "datagen/imdb_generator.h"
#include "datagen/tpch_generator.h"
#include "engine/database.h"
#include "exec/oracle.h"
#include "gtest/gtest.h"
#include "query/sql_workload.h"
#include "sql/binder.h"

namespace lqolab {
namespace {

std::unique_ptr<engine::Database> MakeTpch(uint64_t seed = 42) {
  engine::Database::Options options;
  options.seed = seed;
  return engine::Database::CreateTpch(
      options, datagen::TpchScaleProfile::Small().Scaled(0.5));
}

std::vector<query::Query> LoadTpchWorkload(const catalog::Schema& schema) {
  std::vector<query::Query> workload;
  const util::Status status = query::LoadSqlWorkloadFile(
      std::string(LQOLAB_WORKLOADS_DIR) + "/tpch_lite.sql", schema,
      &workload);
  EXPECT_TRUE(status.ok()) << status.message();
  return workload;
}

TEST(TpchSchema, EightTablesWithSnowflakeForeignKeys) {
  const catalog::Schema schema = catalog::BuildTpchSchema();
  ASSERT_EQ(schema.table_count(), catalog::tpch::kTableCount);
  EXPECT_EQ(schema.table(catalog::tpch::kLineitem).name, "lineitem");
  EXPECT_EQ(schema.table(catalog::tpch::kOrders).name, "orders");
  // The fact-table fan-out the workload joins across: lineitem -> orders,
  // orders -> customer, customer -> nation -> region.
  auto has_fk = [&](catalog::TableId from, catalog::TableId to) {
    for (const auto& fk : schema.table(from).foreign_keys) {
      if (fk.referenced_table == to) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_fk(catalog::tpch::kLineitem, catalog::tpch::kOrders));
  EXPECT_TRUE(has_fk(catalog::tpch::kLineitem, catalog::tpch::kPart));
  EXPECT_TRUE(has_fk(catalog::tpch::kLineitem, catalog::tpch::kSupplier));
  EXPECT_TRUE(has_fk(catalog::tpch::kOrders, catalog::tpch::kCustomer));
  EXPECT_TRUE(has_fk(catalog::tpch::kCustomer, catalog::tpch::kNation));
  EXPECT_TRUE(has_fk(catalog::tpch::kNation, catalog::tpch::kRegion));
}

TEST(TpchDatagen, GenerationIsDeterministicInSeed) {
  auto a = MakeTpch(7);
  auto b = MakeTpch(7);
  const auto& tables_a = a->context().tables();
  const auto& tables_b = b->context().tables();
  // Sizes come from the profile; content from the seed. Same seed must
  // reproduce identical data, which the workload results witness below.
  for (size_t t = 0; t < tables_a.size(); ++t) {
    EXPECT_GT(tables_a[t]->row_count(), 0) << t;
    EXPECT_EQ(tables_a[t]->row_count(), tables_b[t]->row_count()) << t;
  }
  const auto workload = LoadTpchWorkload(a->schema());
  ASSERT_FALSE(workload.empty());
  const engine::QueryRun run_a = a->Run(workload[0]);
  const engine::QueryRun run_b = b->Run(workload[0]);
  ASSERT_TRUE(run_a.status.ok()) << run_a.status.message();
  EXPECT_EQ(run_a.result_rows, run_b.result_rows);
}

TEST(TpchWorkload, LoadsRoundTripsAndExecutes) {
  auto db = MakeTpch();
  const auto workload = LoadTpchWorkload(db->schema());
  std::set<int32_t> families;
  for (const query::Query& q : workload) {
    families.insert(q.template_id);
    // Byte-identical render -> parse+bind -> render round trip.
    const std::string sql = q.ToSql(db->schema());
    query::Query rebound;
    const util::Status status =
        sql::ParseAndBindSql(sql, db->schema(), &rebound);
    ASSERT_TRUE(status.ok()) << q.id << ": " << status.message();
    sql::AssignQueryId(q.id, &rebound);
    EXPECT_EQ(exec::QueryFingerprint(q), exec::QueryFingerprint(rebound))
        << q.id;
    EXPECT_EQ(sql, rebound.ToSql(db->schema())) << q.id;
    // And the bound query executes on the TPC-H-lite database.
    const engine::QueryRun run = db->Run(q);
    ASSERT_TRUE(run.status.ok()) << q.id << ": " << run.status.message();
    EXPECT_GE(run.result_rows, 0) << q.id;
  }
  EXPECT_GE(workload.size(), 30u);
  EXPECT_GE(families.size(), 15u);
}

TEST(TpchWorkload, ExecutionIsDeterministicAcrossReplicas) {
  auto db = MakeTpch();
  auto replica = db->CloneContextForWorker();
  const auto workload = LoadTpchWorkload(db->schema());
  for (size_t i = 0; i < workload.size(); i += 5) {
    const engine::QueryRun a = db->Run(workload[i]);
    const engine::QueryRun b = replica->Run(workload[i]);
    ASSERT_TRUE(a.status.ok()) << workload[i].id;
    EXPECT_EQ(a.result_rows, b.result_rows) << workload[i].id;
  }
}

// The fig3/fig5 split protocol applies unchanged: families group by
// template_id, and base-query sampling holds out whole families.
TEST(TpchWorkload, PaperSplitsGroupFamilies) {
  const catalog::Schema schema = catalog::BuildTpchSchema();
  const auto workload = LoadTpchWorkload(schema);
  const auto splits = benchkit::PaperSplits(workload);
  ASSERT_EQ(splits.size(), 9u);
  for (const auto& split : splits) {
    EXPECT_FALSE(split.train_indices.empty()) << split.name;
    EXPECT_FALSE(split.test_indices.empty()) << split.name;
  }
  // Base-query splits: a family is entirely train or entirely test.
  for (size_t s = 6; s < 9; ++s) {
    std::set<int32_t> test_families;
    for (int32_t i : splits[s].test_indices) {
      test_families.insert(workload[static_cast<size_t>(i)].template_id);
    }
    for (int32_t i : splits[s].train_indices) {
      EXPECT_EQ(test_families.count(
                    workload[static_cast<size_t>(i)].template_id),
                0u)
          << splits[s].name;
    }
  }
}

// The fig7 covariate-shift path: cascade-subsampling from orders keeps
// referential integrity and the workload executable.
TEST(TpchDatagen, OrdersCascadeSubsampleStaysConsistent) {
  auto full = MakeTpch();
  auto half_tables = datagen::SubsampleCascade(
      full->schema(), full->context().tables(), catalog::tpch::kOrders, 0.5,
      43);
  engine::Database::Options options;
  options.seed = 42;
  auto half = engine::Database::FromTables(options, full->schema(),
                                           std::move(half_tables));
  const auto& full_tables = full->context().tables();
  const auto& sub_tables = half->context().tables();
  const int64_t full_orders =
      full_tables[catalog::tpch::kOrders]->row_count();
  const int64_t half_orders = sub_tables[catalog::tpch::kOrders]->row_count();
  EXPECT_LT(half_orders, full_orders);
  EXPECT_GT(half_orders, full_orders / 4);
  // Lineitem cascades with its orders; dimension tables are untouched.
  EXPECT_LT(sub_tables[catalog::tpch::kLineitem]->row_count(),
            full_tables[catalog::tpch::kLineitem]->row_count());
  EXPECT_EQ(sub_tables[catalog::tpch::kCustomer]->row_count(),
            full_tables[catalog::tpch::kCustomer]->row_count());
  EXPECT_EQ(sub_tables[catalog::tpch::kRegion]->row_count(),
            full_tables[catalog::tpch::kRegion]->row_count());
  // The workload still runs on the subsample.
  const auto workload = LoadTpchWorkload(full->schema());
  for (size_t i = 0; i < workload.size(); i += 7) {
    const engine::QueryRun run = half->Run(workload[i]);
    ASSERT_TRUE(run.status.ok()) << workload[i].id;
  }
}

}  // namespace
}  // namespace lqolab
