// Tests for the extension components: RTOS and Lero reimplementations,
// Neo's fixed-holdout early stopping (§5.1 recommendation), the Ext-JOB
// generalization workload, and the estimator-mode ablation switches.

#include <set>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/oracle.h"
#include "lqo/hybridqo.h"
#include "lqo/lero.h"
#include "lqo/loger.h"
#include "lqo/neo.h"
#include "lqo/rtos.h"
#include "query/job_workload.h"

namespace lqolab {
namespace {

using engine::Database;
using engine::DbConfig;
using query::Query;

class ExtensionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    db_ = Database::CreateImdb(options).release();
    workload_ =
        new std::vector<Query>(query::BuildJobLiteWorkload(db_->schema()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
    db_ = nullptr;
    workload_ = nullptr;
  }
  static std::vector<Query> SmallTrainSet(size_t count = 10) {
    std::vector<Query> train;
    std::set<int32_t> seen;
    for (const Query& q : *workload_) {
      if (seen.insert(q.template_id).second && q.relation_count() <= 9) {
        train.push_back(q);
      }
      if (train.size() >= count) break;
    }
    return train;
  }
  static Database* db_;
  static std::vector<Query>* workload_;
};

Database* ExtensionTest::db_ = nullptr;
std::vector<Query>* ExtensionTest::workload_ = nullptr;

// --- RTOS -------------------------------------------------------------------

TEST_F(ExtensionTest, RtosTrainsAndPlans) {
  lqo::RtosOptimizer::Options options;
  options.iterations = 1;
  options.train_epochs = 3;
  lqo::RtosOptimizer rtos(options);
  const auto train = SmallTrainSet();
  const lqo::TrainReport report = rtos.Train(train, db_);
  EXPECT_GT(report.plans_executed, 0);
  EXPECT_GT(report.nn_updates, 0);
  // The CV metric of Table 1 is computed and finite.
  EXPECT_GE(rtos.last_cv_loss(), 0.0);
  const Query& test = (*workload_)[55];
  const lqo::Prediction prediction = rtos.Plan(test, db_);
  prediction.plan.Validate(test);
  EXPECT_GT(prediction.inference_ns, 0);
}

TEST_F(ExtensionTest, RtosPlansAreEngineCompleted) {
  // RTOS only picks the join ORDER; physical operators come from the
  // engine, so its plans are always left-deep with cost-model scans.
  lqo::RtosOptimizer::Options options;
  options.iterations = 1;
  options.train_epochs = 2;
  lqo::RtosOptimizer rtos(options);
  rtos.Train(SmallTrainSet(6), db_);
  for (size_t i = 0; i < workload_->size(); i += 23) {
    const Query& q = (*workload_)[i];
    const lqo::Prediction prediction = rtos.Plan(q, db_);
    prediction.plan.Validate(q);
    EXPECT_TRUE(prediction.plan.IsLeftDeep()) << q.id;
  }
}

TEST_F(ExtensionTest, OrderHelpers) {
  const Query& q = (*workload_)[10];
  // RepairOrder on the identity preference yields a valid connected order.
  std::vector<query::AliasId> preference;
  for (query::AliasId a = q.relation_count() - 1; a >= 0; --a) {
    preference.push_back(a);
  }
  const auto repaired = lqo::RepairOrder(q, preference);
  ASSERT_EQ(repaired.size(), static_cast<size_t>(q.relation_count()));
  query::AliasMask mask = 0;
  for (query::AliasId a : repaired) {
    EXPECT_TRUE(mask == 0 || (q.AdjacencyMask(a) & mask) != 0);
    mask |= query::MaskOf(a);
  }
  EXPECT_EQ(mask, q.FullMask());
  // ExtendGreedily completes any connected prefix.
  const auto extended = lqo::ExtendGreedily(q, {repaired[0]});
  EXPECT_EQ(extended.size(), static_cast<size_t>(q.relation_count()));
}

// --- Lero -------------------------------------------------------------------

TEST_F(ExtensionTest, LeroGeneratesDiverseCandidatesAndRestoresConfig) {
  const DbConfig before = db_->config();
  lqo::LeroOptimizer::Options options;
  options.epochs = 1;
  options.pair_epochs = 2;
  lqo::LeroOptimizer lero(options);
  const auto train = SmallTrainSet(6);
  const lqo::TrainReport report = lero.Train(train, db_);
  // Candidate generation planned under every scale factor.
  EXPECT_EQ(report.planner_calls,
            static_cast<int64_t>(train.size() *
                                 options.scale_factors.size()));
  // Executed at least one plan per query, at most one per candidate.
  EXPECT_GE(report.plans_executed, static_cast<int64_t>(train.size()));
  EXPECT_LE(report.plans_executed,
            report.planner_calls);
  EXPECT_EQ(db_->config().join_selectivity_scale,
            before.join_selectivity_scale);
  const Query& test = (*workload_)[60];
  const lqo::Prediction prediction = lero.Plan(test, db_);
  prediction.plan.Validate(test);
  // DBMS-integrated: reports planning, not inference.
  EXPECT_EQ(prediction.inference_ns, 0);
  EXPECT_GT(prediction.planning_ns, 0);
}

TEST_F(ExtensionTest, SelectivityScaleChangesPlans) {
  // The Lero knob really steers the planner.
  const Query& q = (*workload_)[30];
  DbConfig config = DbConfig::OurFramework();
  int distinct = 0;
  std::set<std::string> plans;
  for (double scale : {0.01, 1.0, 100.0}) {
    config.join_selectivity_scale = scale;
    db_->SetConfig(config);
    plans.insert(db_->PlanQuery(q).plan.ToString(q));
  }
  distinct = static_cast<int>(plans.size());
  db_->SetConfig(DbConfig::OurFramework());
  EXPECT_GE(distinct, 2);
}

// --- LOGER -------------------------------------------------------------------

TEST_F(ExtensionTest, LogerBeamSearchProducesValidHintedPlans) {
  lqo::LogerOptimizer::Options options;
  options.iterations = 1;
  options.train_epochs = 3;
  lqo::LogerOptimizer loger(options);
  const auto train = SmallTrainSet(8);
  const lqo::TrainReport report = loger.Train(train, db_);
  EXPECT_GT(report.plans_executed, 0);
  EXPECT_GT(report.nn_evals, 0);
  for (size_t i = 0; i < workload_->size(); i += 31) {
    const Query& q = (*workload_)[i];
    const lqo::Prediction prediction = loger.Plan(q, db_);
    prediction.plan.Validate(q);
    // LOGER's action space picks relation AND join type per step, so its
    // trees stay linear (left-deep) like RTOS's.
    EXPECT_TRUE(prediction.plan.IsLeftDeep()) << q.id;
    EXPECT_GT(prediction.inference_ns, 0) << q.id;
  }
}

// --- HybridQO ------------------------------------------------------------------

TEST_F(ExtensionTest, HybridQoMctsCandidatesAndChainedModels) {
  lqo::HybridQoOptimizer::Options options;
  options.epochs = 1;
  options.train_epochs = 3;
  options.mcts_iterations = 20;
  lqo::HybridQoOptimizer hybrid(options);
  const auto train = SmallTrainSet(6);
  const lqo::TrainReport report = hybrid.Train(train, db_);
  // The cost side shows up as planner/cost calls (MCTS rollouts).
  EXPECT_GT(report.planner_calls, static_cast<int64_t>(train.size()));
  EXPECT_GT(report.nn_updates, 0);
  const Query& test = (*workload_)[65];
  const lqo::Prediction prediction = hybrid.Plan(test, db_);
  prediction.plan.Validate(test);
  // Inference includes both MCTS rollouts and latency-net evaluations.
  EXPECT_GT(prediction.inference_ns, 0);
  EXPECT_GT(prediction.nn_evals, 0);
}

TEST_F(ExtensionTest, AllEightTable1RowsAreLiveOrSurvey) {
  const auto rows = lqo::Table1EncodingSpecs();
  ASSERT_EQ(rows.size(), 8u);
  // All eight methods now have live implementations backing their rows.
  EXPECT_EQ(rows[0].name, "Neo");
  EXPECT_EQ(rows[1].name, "RTOS");
  EXPECT_EQ(rows[2].name, "Bao");
  EXPECT_EQ(rows[3].name, "Balsa");
  EXPECT_EQ(rows[4].name, "Lero");
  EXPECT_EQ(rows[5].name, "LEON");
  EXPECT_EQ(rows[6].name, "LOGER");
  EXPECT_EQ(rows[7].name, "HybridQO");
  // LOGER outputs hints, HybridQO full plans (Table 1).
  EXPECT_EQ(rows[6].model_output, "Hint");
  EXPECT_EQ(rows[7].model_output, "Plan");
}

// --- Neo fixed-holdout early stopping ---------------------------------------

TEST_F(ExtensionTest, NeoHoldoutEarlyStoppingTracksLosses) {
  lqo::NeoOptimizer::Options options;
  options.iterations = 3;
  options.train_epochs = 3;
  options.holdout_fraction = 0.25;
  options.patience = 1;
  lqo::NeoOptimizer neo(options);
  const auto train = SmallTrainSet(12);
  neo.Train(train, db_);
  EXPECT_FALSE(neo.holdout_losses().empty());
  EXPECT_LE(neo.iterations_run(), options.iterations);
  EXPECT_GE(neo.iterations_run(), 1);
  for (double loss : neo.holdout_losses()) EXPECT_GE(loss, 0.0);
}

TEST_F(ExtensionTest, NeoWithoutHoldoutRunsAllIterations) {
  lqo::NeoOptimizer::Options options;
  options.iterations = 2;
  options.train_epochs = 2;
  options.holdout_fraction = 0.0;
  lqo::NeoOptimizer neo(options);
  neo.Train(SmallTrainSet(6), db_);
  EXPECT_EQ(neo.iterations_run(), 2);
  EXPECT_TRUE(neo.holdout_losses().empty());
}

// --- Ext-JOB workload --------------------------------------------------------

TEST_F(ExtensionTest, ExtJobShapeAndNovelty) {
  const auto ext = query::BuildExtJobWorkload(db_->schema());
  EXPECT_EQ(ext.size(), 20u);
  std::set<std::string> ids;
  for (const auto& q : ext) {
    EXPECT_TRUE(q.IsConnected(q.FullMask())) << q.id;
    EXPECT_GE(q.template_id, 101);
    ids.insert(q.id);
  }
  EXPECT_EQ(ids.size(), ext.size());
  // Structural novelty: no Ext-JOB template shares its (sorted) table
  // multiset AND edge signature with a JOB template.
  auto signature = [](const Query& q) {
    std::multiset<catalog::TableId> tables;
    for (const auto& rel : q.relations) tables.insert(rel.table);
    std::multiset<std::string> edges;
    for (const auto& e : q.edges) {
      edges.insert(std::to_string(e.left_alias) + "." +
                   std::to_string(e.left_column) + "=" +
                   std::to_string(e.right_alias) + "." +
                   std::to_string(e.right_column));
    }
    std::string out;
    for (auto t : tables) out += std::to_string(t) + ",";
    out += "|";
    for (const auto& e : edges) out += e + ";";
    return out;
  };
  std::set<std::string> job_signatures;
  for (const auto& q : *workload_) job_signatures.insert(signature(q));
  for (const auto& q : query::BuildExtJobWorkload(db_->schema())) {
    EXPECT_EQ(job_signatures.count(signature(q)), 0u) << q.id;
  }
}

TEST_F(ExtensionTest, ExtJobRunsOnTheEngine) {
  const auto ext = query::BuildExtJobWorkload(db_->schema());
  int non_empty = 0;
  for (const auto& q : ext) {
    const auto run = db_->Run(q);
    EXPECT_FALSE(run.timed_out) << q.id;
    if (run.result_rows > 0) ++non_empty;
  }
  EXPECT_GT(non_empty, 5);
}

// --- Estimator modes ----------------------------------------------------------

TEST_F(ExtensionTest, EstimatorModesDiffer) {
  auto estimate_under = [&](const Query& q, engine::EstimatorMode mode) {
    DbConfig config = DbConfig::OurFramework();
    config.estimator_mode = mode;
    db_->SetConfig(config);
    return db_->planner().estimator().EstimateJoinRows(q, q.FullMask());
  };
  int strictly_smaller = 0;
  for (size_t i = 0; i < workload_->size(); i += 4) {
    const Query& q = (*workload_)[i];
    const double full = estimate_under(q, engine::EstimatorMode::kFull);
    const double naive =
        estimate_under(q, engine::EstimatorMode::kNaiveProduct);
    ASSERT_GE(full, 1.0) << q.id;
    ASSERT_GE(naive, 1.0) << q.id;
    // The naive product can only collapse estimates (per-step clamping in
    // the full estimator keeps them larger or equal).
    EXPECT_LE(naive, full * 1.001) << q.id;
    if (naive < full * 0.999) ++strictly_smaller;
  }
  db_->SetConfig(DbConfig::OurFramework());
  EXPECT_GT(strictly_smaller, 3);
}

TEST_F(ExtensionTest, NoMcvModeIgnoresSkew) {
  // On a Zipf-skewed join key, dropping the MCV matching changes the edge
  // selectivity.
  const Query q = query::BuildJobQuery(db_->schema(), 3, 'a');
  DbConfig config = DbConfig::OurFramework();
  config.estimator_mode = engine::EstimatorMode::kFull;
  db_->SetConfig(config);
  const double with_mcv =
      db_->planner().estimator().EdgeSelectivity(q, q.edges[1]);
  config.estimator_mode = engine::EstimatorMode::kNoMcvJoins;
  db_->SetConfig(config);
  const double without_mcv =
      db_->planner().estimator().EdgeSelectivity(q, q.edges[1]);
  db_->SetConfig(DbConfig::OurFramework());
  EXPECT_NE(with_mcv, without_mcv);
}

}  // namespace
}  // namespace lqolab
