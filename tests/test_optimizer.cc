// Tests for the cost model, DP planner, GEQO, and plan utilities.

#include <bit>
#include <cmath>
#include <functional>
#include <limits>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "optimizer/cost_model.h"
#include "optimizer/physical_plan.h"
#include "optimizer/planner.h"
#include "query/job_workload.h"

namespace lqolab::optimizer {
namespace {

using engine::Database;
using engine::DbConfig;
using query::AliasId;
using query::AliasMask;
using query::Query;

std::unique_ptr<Database> MakeDb(DbConfig config = DbConfig::OurFramework()) {
  Database::Options options;
  options.profile = datagen::ScaleProfile::Small();
  options.seed = 42;
  options.config = config;
  return Database::CreateImdb(options);
}

TEST(PhysicalPlan, BuildAndValidate) {
  Query q;
  q.id = "plan_test";
  q.relations = {{catalog::imdb::kTitle, "t"},
                 {catalog::imdb::kMovieKeyword, "mk"},
                 {catalog::imdb::kKeyword, "k"}};
  q.edges = {{0, 0, 1, 1}, {1, 2, 2, 0}};
  PhysicalPlan plan;
  const int32_t t = plan.AddScan(0, ScanType::kSeq);
  const int32_t mk = plan.AddScan(1, ScanType::kSeq);
  const int32_t j1 = plan.AddJoin(JoinAlgo::kHash, t, mk);
  const int32_t k = plan.AddScan(2, ScanType::kSeq);
  plan.AddJoin(JoinAlgo::kHash, j1, k);
  plan.Validate(q);
  EXPECT_EQ(plan.join_count(), 2);
  EXPECT_TRUE(plan.IsLeftDeep());
  EXPECT_EQ(plan.node(plan.root).mask, q.FullMask());
  const std::string s = plan.ToString(q);
  EXPECT_NE(s.find("HashJoin"), std::string::npos);
  EXPECT_NE(s.find("SeqScan(t)"), std::string::npos);
}

TEST(PhysicalPlan, BushyDetection) {
  Query q;
  q.id = "bushy_test";
  q.relations = {{catalog::imdb::kTitle, "t"},
                 {catalog::imdb::kMovieKeyword, "mk"},
                 {catalog::imdb::kMovieInfo, "mi"},
                 {catalog::imdb::kInfoType, "it"}};
  q.edges = {{0, 0, 1, 1}, {0, 0, 2, 1}, {2, 2, 3, 0}};
  PhysicalPlan plan;
  const int32_t t = plan.AddScan(0, ScanType::kSeq);
  const int32_t mk = plan.AddScan(1, ScanType::kSeq);
  const int32_t left = plan.AddJoin(JoinAlgo::kHash, t, mk);
  const int32_t mi = plan.AddScan(2, ScanType::kSeq);
  const int32_t it = plan.AddScan(3, ScanType::kSeq);
  const int32_t right = plan.AddJoin(JoinAlgo::kHash, mi, it);
  plan.AddJoin(JoinAlgo::kHash, left, right);
  plan.Validate(q);
  EXPECT_FALSE(plan.IsLeftDeep());
}

TEST(CostModel, SelectiveFilterPrefersIndexOrBitmap) {
  auto db = MakeDb();
  // A highly selective equality on an indexed column.
  Query q;
  q.id = "cost_scan_test";
  q.relations = {{catalog::imdb::kTitle, "t"},
                 {catalog::imdb::kMovieKeyword, "mk"}};
  q.edges = {{0, 0, 1, 1}};
  query::Predicate p;
  p.alias = 0;
  p.column = 0;  // id (unique)
  p.kind = query::Predicate::Kind::kEq;
  p.int_values = {17};
  q.predicates.push_back(p);
  const ScanChoice choice = db->planner().cost_model().BestScan(q, 0);
  EXPECT_NE(choice.type, ScanType::kSeq);
}

TEST(CostModel, UnfilteredTablePrefersSeqScan) {
  auto db = MakeDb();
  Query q;
  q.id = "cost_seq_test";
  q.relations = {{catalog::imdb::kCastInfo, "ci"},
                 {catalog::imdb::kTitle, "t"}};
  q.edges = {{0, 2, 1, 0}};
  const ScanChoice choice = db->planner().cost_model().BestScan(q, 0);
  EXPECT_EQ(choice.type, ScanType::kSeq);
}

TEST(CostModel, DisabledScansGetPenalty) {
  DbConfig config = DbConfig::OurFramework();
  config.enable_seqscan = false;
  auto db = MakeDb(config);
  Query q;
  q.id = "cost_disabled_test";
  q.relations = {{catalog::imdb::kCastInfo, "ci"},
                 {catalog::imdb::kTitle, "t"}};
  q.edges = {{0, 2, 1, 0}};
  const ScanChoice seq = db->planner().cost_model().ScanCost(q, 0,
                                                             ScanType::kSeq);
  EXPECT_GE(seq.cost, kDisabledPathCost);
  // BestScan still succeeds (last-resort semantics).
  const ScanChoice best = db->planner().cost_model().BestScan(q, 0);
  EXPECT_LT(best.cost, kImpossibleCost);
}

TEST(CostModel, TidScanOnlyForIdEquality) {
  auto db = MakeDb();
  Query q;
  q.id = "cost_tid_test";
  q.relations = {{catalog::imdb::kTitle, "t"},
                 {catalog::imdb::kMovieKeyword, "mk"}};
  q.edges = {{0, 0, 1, 1}};
  // Without an id predicate: impossible.
  EXPECT_GE(db->planner().cost_model().ScanCost(q, 0, ScanType::kTid).cost,
            kImpossibleCost);
  query::Predicate p;
  p.alias = 0;
  p.column = 0;
  p.kind = query::Predicate::Kind::kEq;
  p.int_values = {5};
  q.predicates.push_back(p);
  EXPECT_LT(db->planner().cost_model().ScanCost(q, 0, ScanType::kTid).cost,
            kImpossibleCost);
}

TEST(CostModel, JoinCostMonotoneInInputSize) {
  auto db = MakeDb();
  Query q = query::BuildJobQuery(db->schema(), 3, 'a');
  const auto& cm = db->planner().cost_model();
  const double small = cm.JoinCost(q, JoinAlgo::kHash, 1000, 1000, 1000);
  const double large = cm.JoinCost(q, JoinAlgo::kHash, 100000, 100000, 1000);
  EXPECT_GT(large, small);
}

TEST(CostModel, CachedFractionRespondsToEffectiveCacheSize) {
  DbConfig small_cache = DbConfig::Default();
  small_cache.effective_cache_size_mb = 64;
  DbConfig big_cache = DbConfig::Default();
  big_cache.effective_cache_size_mb = 64 * 1024;
  auto db = MakeDb(small_cache);
  const double small_fraction = db->planner().cost_model().CachedFraction();
  db->SetConfig(big_cache);
  const double big_fraction = db->planner().cost_model().CachedFraction();
  EXPECT_LT(small_fraction, big_fraction);
  EXPECT_LE(big_fraction, 1.0);
}

/// Exhaustive reference: enumerate ALL physical plans (bushy, all join
/// algorithms, best scans) for a small query and return the cheapest cost.
double ExhaustiveBestCost(const Planner& planner, const Query& q) {
  const CostModel& cm = planner.cost_model();
  struct Frag {
    PhysicalPlan plan;
    AliasMask mask;
  };
  double best = kImpossibleCost * 2;
  std::function<void(std::vector<Frag>)> recurse =
      [&](std::vector<Frag> frags) {
        if (frags.size() == 1) {
          const double cost = planner.EstimatePlanCost(q, frags[0].plan);
          best = std::min(best, cost);
          return;
        }
        for (size_t i = 0; i < frags.size(); ++i) {
          for (size_t j = 0; j < frags.size(); ++j) {
            if (i == j) continue;
            if (!q.HasEdgeBetween(frags[i].mask, frags[j].mask)) continue;
            for (JoinAlgo algo : {JoinAlgo::kHash, JoinAlgo::kNestLoop,
                                  JoinAlgo::kMerge}) {
              std::vector<Frag> next;
              Frag combined;
              combined.mask = frags[i].mask | frags[j].mask;
              // Rebuild combined plan.
              PhysicalPlan merged = frags[i].plan;
              const int32_t offset =
                  static_cast<int32_t>(merged.nodes.size());
              for (PlanNode node : frags[j].plan.nodes) {
                if (node.type == PlanNode::Type::kJoin) {
                  node.left += offset;
                  node.right += offset;
                }
                merged.nodes.push_back(node);
              }
              PlanNode join;
              join.type = PlanNode::Type::kJoin;
              join.algo = algo;
              join.left = frags[i].plan.root;
              join.right = frags[j].plan.root + offset;
              join.mask = combined.mask;
              merged.nodes.push_back(join);
              merged.root = static_cast<int32_t>(merged.nodes.size()) - 1;
              combined.plan = std::move(merged);
              for (size_t k = 0; k < frags.size(); ++k) {
                if (k != i && k != j) next.push_back(frags[k]);
              }
              next.push_back(combined);
              recurse(std::move(next));
            }
          }
        }
      };
  std::vector<Frag> leaves;
  for (AliasId a = 0; a < q.relation_count(); ++a) {
    Frag frag;
    const ScanChoice scan = cm.BestScan(q, a);
    frag.plan.AddScan(a, scan.type, scan.index_column);
    frag.mask = query::MaskOf(a);
    leaves.push_back(std::move(frag));
  }
  recurse(std::move(leaves));
  return best;
}

TEST(Planner, DpMatchesExhaustiveOnSmallQueries) {
  auto db = MakeDb();
  // Template 3 has 4 relations: exhaustive enumeration is tractable.
  for (char v : {'a', 'b', 'c'}) {
    const Query q = query::BuildJobQuery(db->schema(), 3, v);
    const PlanningResult dp =
        db->planner().PlanDynamicProgramming(q, /*bushy=*/true);
    const double exhaustive = ExhaustiveBestCost(db->planner(), q);
    // DP considers index-NLJ paths the simple reference does not, so DP can
    // only be at least as good.
    EXPECT_LE(dp.estimated_cost, exhaustive * 1.0001) << q.id;
  }
}

TEST(Planner, DpPlanCostConsistentWithEstimatePlanCost) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 4, 'a');
  const PlanningResult dp =
      db->planner().PlanDynamicProgramming(q, /*bushy=*/true);
  const double recost = db->planner().EstimatePlanCost(q, dp.plan);
  EXPECT_NEAR(dp.estimated_cost / recost, 1.0, 0.05);
}

TEST(Planner, LeftDeepNeverBeatsBushy) {
  auto db = MakeDb();
  for (int t : {3, 11, 14}) {
    const Query q = query::BuildJobQuery(db->schema(), t, 'a');
    const PlanningResult bushy =
        db->planner().PlanDynamicProgramming(q, true);
    const PlanningResult left_deep =
        db->planner().PlanDynamicProgramming(q, false);
    EXPECT_LE(bushy.estimated_cost, left_deep.estimated_cost * 1.0001)
        << q.id;
    EXPECT_TRUE(left_deep.plan.IsLeftDeep()) << q.id;
  }
}

TEST(Planner, GeqoProducesValidDeterministicPlans) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 29, 'a');
  const PlanningResult a = db->planner().PlanGenetic(q, GeqoParams{});
  const PlanningResult b = db->planner().PlanGenetic(q, GeqoParams{});
  a.plan.Validate(q);
  EXPECT_TRUE(a.used_geqo);
  EXPECT_EQ(a.estimated_cost, b.estimated_cost);
  EXPECT_EQ(a.plan.ToString(q), b.plan.ToString(q));
}

TEST(Planner, GeqoNotWorseThanRandomOrder) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 30, 'a');
  const PlanningResult geqo = db->planner().PlanGenetic(q, GeqoParams{});
  // A FROM-order plan as the "random" baseline.
  std::vector<AliasId> order;
  for (AliasId a = 0; a < q.relation_count(); ++a) order.push_back(a);
  const double from_order_cost =
      db->planner().CostJoinOrder(q, order, nullptr, nullptr);
  EXPECT_LE(geqo.estimated_cost, from_order_cost * 1.0001);
}

TEST(Planner, DispatchRespectsGeqoThreshold) {
  auto db = MakeDb();
  const Query big = query::BuildJobQuery(db->schema(), 29, 'a');
  const Query small = query::BuildJobQuery(db->schema(), 3, 'a');
  EXPECT_TRUE(db->planner().Plan(big).used_geqo);
  EXPECT_FALSE(db->planner().Plan(small).used_geqo);
  DbConfig no_geqo = DbConfig::OurFramework();
  no_geqo.geqo = false;
  db->SetConfig(no_geqo);
  EXPECT_FALSE(db->planner().Plan(big).used_geqo);
}

TEST(Planner, GeqoSeedFlowsFromConfigIntoPlan) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 29, 'a');

  // Plan() must thread config.geqo_seed into GeqoParams: planning through
  // the dispatcher and calling PlanGenetic with the same seed directly are
  // byte-identical.
  DbConfig config = DbConfig::OurFramework();
  config.geqo_seed = 12345;
  db->SetConfig(config);
  const PlanningResult via_plan = db->planner().Plan(q);
  ASSERT_TRUE(via_plan.used_geqo);
  GeqoParams params;
  params.seed = 12345;
  const PlanningResult direct = db->planner().PlanGenetic(q, params);
  EXPECT_EQ(via_plan.plan.ToString(q), direct.plan.ToString(q));
  EXPECT_EQ(via_plan.estimated_cost, direct.estimated_cost);

  // The knob is live: some nearby seed must genetically plan differently
  // than seed 0 on a 17-relation query.
  const std::string base =
      db->planner().PlanGenetic(q, GeqoParams{}).plan.ToString(q);
  bool differs = false;
  for (uint64_t seed = 1; seed <= 16 && !differs; ++seed) {
    GeqoParams p;
    p.seed = seed;
    differs = db->planner().PlanGenetic(q, p).plan.ToString(q) != base;
  }
  EXPECT_TRUE(differs);

  // Worker replicas inherit the configured seed and plan identically —
  // the property parallel replay and fuzz replays rely on.
  const auto replica = db->CloneContextForWorker();
  EXPECT_EQ(replica->planner().Plan(q).plan.ToString(q),
            via_plan.plan.ToString(q));
}

TEST(Planner, JoinCollapseLimitForcesFromOrder) {
  DbConfig config = DbConfig::OurFramework();
  config.join_collapse_limit = 1;
  auto db = MakeDb(config);
  const Query q = query::BuildJobQuery(db->schema(), 11, 'a');
  const PlanningResult result = db->planner().Plan(q);
  result.plan.Validate(q);
  EXPECT_TRUE(result.plan.IsLeftDeep());
  // Scan leaves appear in FROM order along the left spine.
  std::vector<AliasId> leaf_order;
  for (const auto& node : result.plan.nodes) {
    if (node.type == PlanNode::Type::kScan) leaf_order.push_back(node.alias);
  }
  for (size_t i = 0; i < leaf_order.size(); ++i) {
    EXPECT_EQ(leaf_order[i], static_cast<AliasId>(i));
  }
}

TEST(Planner, DisablingOperatorsChangesPlans) {
  auto db = MakeDb();
  const Query q = query::BuildJobQuery(db->schema(), 13, 'a');
  const PlanningResult with_all = db->planner().Plan(q);
  DbConfig config = DbConfig::OurFramework();
  config.enable_hashjoin = false;
  db->SetConfig(config);
  const PlanningResult without_hash = db->planner().Plan(q);
  without_hash.plan.Validate(q);
  for (const auto& node : without_hash.plan.nodes) {
    if (node.type == PlanNode::Type::kJoin) {
      EXPECT_NE(node.algo, JoinAlgo::kHash) << q.id;
    }
  }
  EXPECT_GE(without_hash.estimated_cost, with_all.estimated_cost * 0.999);
}

TEST(Planner, PlannerStepsPositiveAndLargerForBiggerQueries) {
  auto db = MakeDb();
  const PlanningResult small =
      db->planner().Plan(query::BuildJobQuery(db->schema(), 3, 'a'));
  const PlanningResult medium =
      db->planner().Plan(query::BuildJobQuery(db->schema(), 22, 'a'));
  EXPECT_GT(small.planner_steps, 0);
  EXPECT_GT(medium.planner_steps, small.planner_steps);
}

/// Property sweep: the native planner produces a valid plan for every JOB
/// query under several configurations.
class PlannerWorkloadProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlannerWorkloadProperty, ValidPlans) {
  static Database* db = MakeDb().release();
  static auto workload = query::BuildJobLiteWorkload(db->schema());
  const auto [query_index, config_index] = GetParam();
  DbConfig configs[3] = {DbConfig::OurFramework(), DbConfig::BalsaLeon(),
                         DbConfig::Default()};
  db->SetConfig(configs[config_index]);
  const Query& q = workload[static_cast<size_t>(query_index)];
  const PlanningResult result = db->planner().Plan(q);
  result.plan.Validate(q);
  EXPECT_LT(result.estimated_cost, kImpossibleCost) << q.id;
  // Scan types respect the configuration.
  for (const auto& node : result.plan.nodes) {
    if (node.type != PlanNode::Type::kScan) continue;
    if (!configs[config_index].enable_bitmapscan) {
      EXPECT_NE(node.scan_type, ScanType::kBitmap) << q.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlannerWorkloadProperty,
    ::testing::Combine(::testing::Range(0, 113, 11),
                       ::testing::Range(0, 3)));

}  // namespace
}  // namespace lqolab::optimizer
