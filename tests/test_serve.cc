// Unit tests for the serve/ subsystem: plan cache, cache keying, the
// QueryServer's routing modes, the timeout-fallback protocol (paper §7.1's
// statement-timeout story applied to learned plans), deterministic replay
// across worker counts, and model hot swap.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "faultlib/faultlib.h"
#include "lqo/native_passthrough.h"
#include "obs/metrics.h"
#include "query/job_workload.h"
#include "serve/hot_swap.h"
#include "serve/plan_cache.h"
#include "serve/query_server.h"
#include "util/status.h"

namespace lqolab {
namespace {

using serve::CachedPlan;
using serve::PlanCache;
using serve::PlanCacheOptions;
using serve::QueryServer;
using serve::RouteMode;
using serve::ServedQuery;
using serve::ServerOptions;

/// One small database shared by every test in this binary (immutable from
/// the tests' perspective: servers execute on worker replicas only).
engine::Database* SharedDb() {
  static std::unique_ptr<engine::Database> db = [] {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    return engine::Database::CreateImdb(options);
  }();
  return db.get();
}

const std::vector<query::Query>& Workload() {
  static const std::vector<query::Query> workload =
      query::BuildJobLiteWorkload(SharedDb()->schema());
  return workload;
}

/// The canonical replay outcome the server must reproduce for occurrence 0
/// of `q`.
engine::QueryRun ExpectedRun(const query::Query& q, uint64_t salt = 0) {
  const auto replica = SharedDb()->CloneContextForWorker();
  const auto planned = replica->PlanQuery(q);
  replica->BeginQueryReplay(SharedDb()->seed(), q, salt);
  return replica->ExecutePlan(q, planned.plan, planned.planning_ns);
}

CachedPlan MarkedPlan(double marker) {
  CachedPlan plan;
  plan.estimated_cost = marker;
  return plan;
}

TEST(PlanCache, InsertLookupEvict) {
  obs::MetricsRegistry metrics;
  obs::MetricsScope scope(&metrics);

  PlanCacheOptions options;
  options.shards = 1;
  options.capacity_per_shard = 2;
  PlanCache cache(options);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.capacity(), 2);

  EXPECT_EQ(cache.Lookup(1), nullptr);
  cache.Insert(1, std::make_shared<const CachedPlan>(MarkedPlan(1.0)));
  cache.Insert(2, std::make_shared<const CachedPlan>(MarkedPlan(2.0)));
  const auto hit = cache.Lookup(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->estimated_cost, 1.0);

  // Key 2 is now least recent; inserting 3 evicts it.
  cache.Insert(3, std::make_shared<const CachedPlan>(MarkedPlan(3.0)));
  EXPECT_EQ(cache.Lookup(2), nullptr);
  ASSERT_NE(cache.Lookup(3), nullptr);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.evictions(), 1);

  EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheHits), 2);
  EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheMisses), 2);
  EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheEvictions), 1);
}

TEST(PlanCache, ReinsertReplacesPayloadWithoutEviction) {
  PlanCacheOptions options;
  options.shards = 1;
  options.capacity_per_shard = 2;
  PlanCache cache(options);
  cache.Insert(7, std::make_shared<const CachedPlan>(MarkedPlan(1.0)));
  cache.Insert(7, std::make_shared<const CachedPlan>(MarkedPlan(2.0)));
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.evictions(), 0);
  EXPECT_EQ(cache.Lookup(7)->estimated_cost, 2.0);
}

TEST(PlanCache, ClearCountsDroppedPlansAsEvictions) {
  obs::MetricsRegistry metrics;
  obs::MetricsScope scope(&metrics);
  PlanCacheOptions options;
  options.shards = 2;
  options.capacity_per_shard = 4;
  PlanCache cache(options);
  for (uint64_t key = 1; key <= 5; ++key) {
    cache.Insert(key, std::make_shared<const CachedPlan>(MarkedPlan(1.0)));
  }
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.evictions(), 5);
  EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheEvictions), 5);
}

TEST(PlanCache, DisabledCacheNeverStores) {
  PlanCacheOptions options;
  options.capacity_per_shard = 0;
  PlanCache cache(options);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(1, std::make_shared<const CachedPlan>(MarkedPlan(1.0)));
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.size(), 0);
}

TEST(PlanCacheKey, SeparatesQueryConfigAndModelVersion) {
  const query::Query& a = Workload()[0];
  const query::Query& b = Workload()[1];
  const engine::DbConfig config = engine::DbConfig::OurFramework();

  EXPECT_EQ(serve::PlanCacheKey(a, config), serve::PlanCacheKey(a, config));
  EXPECT_NE(serve::PlanCacheKey(a, config), serve::PlanCacheKey(b, config));
  EXPECT_NE(serve::PlanCacheKey(a, config, 1), serve::PlanCacheKey(a, config, 2));

  engine::DbConfig no_hash = config;
  no_hash.enable_hashjoin = false;
  EXPECT_NE(serve::PlanCacheKey(a, config), serve::PlanCacheKey(a, no_hash));

  // The display name is not part of the identity.
  engine::DbConfig renamed = config;
  renamed.name = "renamed";
  EXPECT_EQ(serve::PlanCacheKey(a, config), serve::PlanCacheKey(a, renamed));
}

TEST(QueryServer, PgliteRouteMatchesCanonicalReplay) {
  ServerOptions options;
  options.workers = 2;
  options.route = RouteMode::kPglite;
  QueryServer server(SharedDb(), options);

  for (size_t i = 0; i < 8; ++i) {
    const query::Query& q = Workload()[i * 5];
    const ServedQuery served = server.Submit(q).get();
    const engine::QueryRun expected = ExpectedRun(q);
    EXPECT_EQ(served.query_id, q.id);
    EXPECT_EQ(served.result_rows, expected.result_rows) << q.id;
    EXPECT_EQ(served.execution_ns, expected.execution_ns) << q.id;
    EXPECT_EQ(served.timed_out, expected.timed_out) << q.id;
    EXPECT_FALSE(served.fell_back);
    EXPECT_FALSE(served.cache_hit);
  }
  server.Drain();
  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeQueries), 8);
  EXPECT_EQ(metrics.Get(obs::Counter::kServeFallbacks), 0);
  EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheMisses), 8);
}

TEST(QueryServer, CacheHitReturnsIdenticalPlanWithReducedPlanningTime) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kPglite;
  QueryServer server(SharedDb(), options);

  const query::Query& q = Workload()[10];
  const ServedQuery cold = server.Submit(q).get();
  const ServedQuery warm = server.Submit(q).get();

  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  // Byte-identical plan, cheaper planning: the whole point of the cache.
  EXPECT_EQ(warm.plan, cold.plan);
  EXPECT_EQ(warm.planning_ns, serve::kPlanCacheHitNs);
  EXPECT_LT(warm.planning_ns, cold.planning_ns);
  EXPECT_EQ(warm.result_rows, cold.result_rows);

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheHits), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheMisses), 1);
}

/// A deliberately bad learned optimizer: takes the native plan and degrades
/// every operator to the slowest choice (sequential scans, materialized
/// nested loops). Execution then blows well past a tight deadline in the
/// virtual clock — the injected "runaway learned plan".
class SlowPlanOptimizer : public lqo::NativePassthroughOptimizer {
 public:
  std::string name() const override { return "slow_plan"; }

  lqo::Prediction Plan(const query::Query& q,
                       engine::Database* db) override {
    lqo::Prediction prediction = NativePassthroughOptimizer::Plan(q, db);
    for (optimizer::PlanNode& node : prediction.plan.nodes) {
      if (node.type == optimizer::PlanNode::Type::kScan) {
        node.scan_type = optimizer::ScanType::kSeq;
        node.index_column = catalog::kInvalidColumn;
      } else {
        node.algo = optimizer::JoinAlgo::kNestLoop;
      }
    }
    return prediction;
  }
};

TEST(QueryServer, TimeoutFallbackReturnsPgliteResult) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kLqo;
  // 50 us of virtual time: far below any cold multi-join execution, so the
  // degraded plan is guaranteed to hit the deadline.
  options.lqo_deadline_ns = 50'000;
  QueryServer server(SharedDb(), options);
  server.PublishModel(std::make_shared<SlowPlanOptimizer>());

  const query::Query& q = Workload()[20];
  const ServedQuery served = server.Submit(q).get();

  // The fallback executes the pglite plan; its replay stream is salted, so
  // compare against the canonical fallback replay.
  const engine::QueryRun expected = ExpectedRun(q, /*salt=*/1ull << 63);
  EXPECT_TRUE(served.fell_back);
  EXPECT_FALSE(served.timed_out);
  EXPECT_EQ(served.result_rows, expected.result_rows);
  EXPECT_EQ(served.execution_ns, expected.execution_ns);
  // The aborted attempt burned exactly the deadline.
  EXPECT_EQ(served.wasted_ns, options.lqo_deadline_ns);
  EXPECT_GE(served.latency_ns(),
            served.execution_ns + options.lqo_deadline_ns);

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeFallbacks), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kServeQueries), 1);
}

/// Workload()[109] is the one JOB-lite query whose fully degraded plan
/// (all-seq-scan, all-nest-loop) runs ~3x slower than the native plan
/// (~7.2ms vs ~2.4ms of virtual time, cold): a 5ms deadline admits every
/// healthy plan and rejects every degraded one, with margin on both sides.
constexpr size_t kDegradableQuery = 109;
constexpr util::VirtualNanos kDiscriminatingDeadlineNs = 5'000'000;

TEST(QueryServer, InjectedSlowPlanFaultTriggersTimeoutFallback) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kLqo;
  options.lqo_deadline_ns = kDiscriminatingDeadlineNs;
  QueryServer server(SharedDb(), options);
  // A healthy model this time: the runaway plan comes from faultlib
  // poisoning a single inference, not from the model itself.
  server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());

  faultlib::FaultPlan plan;
  faultlib::FaultRule poison;
  poison.point = "lqo.infer";
  poison.kind = faultlib::FaultKind::kPoison;
  poison.every_nth = 1;
  poison.max_fires = 1;
  plan.Add(poison);
  faultlib::FaultInjector injector(plan);

  const query::Query& q = Workload()[kDegradableQuery];
  ServedQuery served;
  {
    faultlib::ScopedFaultInjection inject(&injector);
    served = server.Submit(q).get();
  }
  // The poisoned plan blew the deadline; the pglite plan answered.
  const engine::QueryRun expected = ExpectedRun(q, /*salt=*/1ull << 63);
  EXPECT_TRUE(served.fell_back);
  EXPECT_EQ(served.result_rows, expected.result_rows);
  EXPECT_EQ(served.wasted_ns, options.lqo_deadline_ns);

  // The poison was not cached: the next admission of the same query serves
  // the clean model plan with no fallback.
  const ServedQuery clean = server.Submit(q).get();
  EXPECT_FALSE(clean.fell_back);
  EXPECT_EQ(clean.result_rows, ExpectedRun(q).result_rows);

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeFallbacks), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kFaultInjectedPoison), 1);
}

TEST(QueryServer, InferenceFaultServesNativelyAndIsCounted) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kLqo;
  QueryServer server(SharedDb(), options);
  server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());

  faultlib::FaultPlan plan;
  faultlib::FaultRule rule;
  rule.point = "lqo.infer";
  rule.kind = faultlib::FaultKind::kError;
  rule.every_nth = 1;
  rule.max_fires = 1;
  plan.Add(rule);
  faultlib::FaultInjector injector(plan);
  faultlib::ScopedFaultInjection inject(&injector);

  const query::Query& q = Workload()[0];
  const ServedQuery served = server.Submit(q).get();
  // Inference failed, so the native planner answered — correct result,
  // no fallback (nothing was executing under the LQO deadline).
  EXPECT_TRUE(served.infer_fault);
  EXPECT_TRUE(served.status.ok());
  EXPECT_FALSE(served.fell_back);
  EXPECT_EQ(served.result_rows, ExpectedRun(q).result_rows);

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeInferFaults), 1);
}

TEST(QueryServer, CircuitBreakerTripsAndRecovers) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kLqo;
  options.lqo_deadline_ns = kDiscriminatingDeadlineNs;
  options.cache.capacity_per_shard = 0;  // Plan (and fail) every admission.
  options.breaker.failure_threshold = 2;
  options.breaker.open_requests = 2;
  options.breaker.probe_successes = 1;
  QueryServer server(SharedDb(), options);
  server.PublishModel(std::make_shared<SlowPlanOptimizer>());

  const query::Query& q = Workload()[kDegradableQuery];
  // Two straight timeout-fallbacks trip the breaker.
  for (int i = 0; i < 2; ++i) {
    const ServedQuery served = server.Submit(q).get();
    EXPECT_TRUE(served.fell_back);
    EXPECT_FALSE(served.breaker_short_circuit);
  }
  EXPECT_EQ(server.breaker().state(), serve::CircuitBreaker::State::kOpen);
  EXPECT_EQ(server.breaker().trips(), 1);

  // The model is fixed, but the breaker is open: the next admission
  // short-circuits straight to the pglite plan (no LQO attempt, no
  // deadline burned).
  server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());
  const ServedQuery shorted = server.Submit(q).get();
  EXPECT_TRUE(shorted.breaker_short_circuit);
  EXPECT_FALSE(shorted.fell_back);
  EXPECT_EQ(shorted.wasted_ns, 0);
  EXPECT_EQ(shorted.result_rows, ExpectedRun(q).result_rows);

  // The second open-state arrival half-opens the breaker and runs as the
  // probe; the healthy model succeeds, closing the circuit again.
  const ServedQuery probe = server.Submit(q).get();
  EXPECT_FALSE(probe.breaker_short_circuit);
  EXPECT_FALSE(probe.fell_back);
  EXPECT_EQ(server.breaker().state(), serve::CircuitBreaker::State::kClosed);
  EXPECT_EQ(server.breaker().recoveries(), 1);

  // Closed again: traffic flows through the LQO route normally.
  const ServedQuery after = server.Submit(q).get();
  EXPECT_FALSE(after.breaker_short_circuit);
  EXPECT_FALSE(after.fell_back);

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeBreakerTrips), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kServeBreakerShortCircuits), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kServeBreakerProbes), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kServeBreakerRecoveries), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kServeFallbacks), 2);
}

TEST(QueryServer, TripLqoBreakerShortCircuitsOutOfBand) {
  // The out-of-band trip (used by the cost-model drift detector) must open
  // the breaker without a request in flight, and tripping an already-open
  // breaker must be a no-op.
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kLqo;
  QueryServer server(SharedDb(), options);
  server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());

  EXPECT_EQ(server.breaker().state(), serve::CircuitBreaker::State::kClosed);
  server.TripLqoBreaker();
  EXPECT_EQ(server.breaker().state(), serve::CircuitBreaker::State::kOpen);
  EXPECT_EQ(server.breaker().trips(), 1);
  server.TripLqoBreaker();
  EXPECT_EQ(server.breaker().trips(), 1);

  const ServedQuery shorted = server.Submit(Workload()[3]).get();
  EXPECT_TRUE(shorted.breaker_short_circuit);
  EXPECT_EQ(shorted.result_rows, ExpectedRun(Workload()[3]).result_rows);
}

TEST(QueryServer, SubmitAfterShutdownResolvesAsShutdownStatus) {
  ServerOptions options;
  options.workers = 1;
  QueryServer server(SharedDb(), options);
  EXPECT_TRUE(server.Submit(Workload()[0]).get().status.ok());
  server.Shutdown();

  const ServedQuery refused = server.Submit(Workload()[1]).get();
  EXPECT_EQ(refused.status.code(), util::StatusCode::kShutdown);
  EXPECT_EQ(refused.result_rows, 0);

  std::future<ServedQuery> tried;
  ASSERT_TRUE(server.TrySubmit(Workload()[2], &tried));
  EXPECT_EQ(tried.get().status.code(), util::StatusCode::kShutdown);

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeShutdownDropped), 2);
  EXPECT_EQ(metrics.Get(obs::Counter::kServeQueries), 1);
}

TEST(QueryServer, GenerousDeadlineDoesNotFallBack) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kLqo;
  options.lqo_deadline_ns = 0;  // statement timeout only
  QueryServer server(SharedDb(), options);
  server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());

  const query::Query& q = Workload()[0];
  const ServedQuery served = server.Submit(q).get();
  EXPECT_FALSE(served.fell_back);
  EXPECT_FALSE(served.timed_out);
  EXPECT_EQ(served.result_rows, ExpectedRun(q).result_rows);
}

TEST(QueryServer, LqoRouteWithoutModelServesNatively) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kLqo;
  QueryServer server(SharedDb(), options);

  const query::Query& q = Workload()[3];
  const ServedQuery served = server.Submit(q).get();
  EXPECT_EQ(served.result_rows, ExpectedRun(q).result_rows);
  EXPECT_FALSE(served.fell_back);
  EXPECT_TRUE(served.shadow_plan.empty());
}

TEST(QueryServer, ShadowModeExecutesNativePlan) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kShadow;
  QueryServer server(SharedDb(), options);
  server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());

  const query::Query& q = Workload()[15];
  const ServedQuery served = server.Submit(q).get();
  const engine::QueryRun expected = ExpectedRun(q);
  EXPECT_EQ(served.result_rows, expected.result_rows);
  EXPECT_EQ(served.execution_ns, expected.execution_ns);
  // The passthrough model shadows the native planner, so the recorded
  // shadow plan equals the executed one.
  EXPECT_FALSE(served.shadow_plan.empty());
  EXPECT_EQ(served.shadow_plan, served.plan);
  EXPECT_FALSE(served.fell_back);
}

TEST(QueryServer, ResultsAreIdenticalForAnyWorkerCount) {
  std::vector<ServedQuery> baseline;
  for (const int32_t workers : {1, 4}) {
    ServerOptions options;
    options.workers = workers;
    options.route = RouteMode::kPglite;
    QueryServer server(SharedDb(), options);
    std::vector<std::future<ServedQuery>> futures;
    for (size_t i = 0; i < Workload().size(); i += 7) {
      futures.push_back(server.Submit(Workload()[i]));
    }
    std::vector<ServedQuery> results;
    for (auto& f : futures) results.push_back(f.get());
    if (workers == 1) {
      baseline = std::move(results);
      continue;
    }
    ASSERT_EQ(results.size(), baseline.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].query_id, baseline[i].query_id);
      EXPECT_EQ(results[i].result_rows, baseline[i].result_rows);
      EXPECT_EQ(results[i].execution_ns, baseline[i].execution_ns);
      EXPECT_EQ(results[i].timed_out, baseline[i].timed_out);
      EXPECT_EQ(results[i].plan, baseline[i].plan);
    }
  }
}

TEST(QueryServer, HotSwapInvalidatesLqoCachedPlans) {
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kLqo;
  QueryServer server(SharedDb(), options);

  obs::MetricsRegistry publisher_metrics;
  obs::MetricsScope scope(&publisher_metrics);

  EXPECT_EQ(server.model_version(), 0u);
  server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());
  EXPECT_EQ(server.model_version(), 1u);

  const query::Query& q = Workload()[5];
  EXPECT_FALSE(server.Submit(q).get().cache_hit);
  EXPECT_TRUE(server.Submit(q).get().cache_hit);

  // Publishing a new model changes the cache key: the next lookup misses
  // and re-plans through the new model.
  server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());
  EXPECT_EQ(server.model_version(), 2u);
  EXPECT_FALSE(server.Submit(q).get().cache_hit);

  EXPECT_EQ(publisher_metrics.Get(obs::Counter::kServeModelSwaps), 2);
  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeLqoPlanned), 2);
}

TEST(QueryServer, ModelSwapInvalidatesTemplateKeyedFallbackPlans) {
  // Regression: the fallback path used to cache its native plan under
  // model_version 0 regardless of which model's timeout produced it, so a
  // hot swap left the stale template-keyed fallback entry live and the new
  // model's fallback silently reused it. The fallback entry must be keyed
  // by the era of the model that triggered it.
  ServerOptions options;
  options.workers = 1;
  options.route = RouteMode::kLqo;
  // Every degraded plan blows this deadline, so every submission exercises
  // the fallback cache path.
  options.lqo_deadline_ns = 50'000;
  // Keep the breaker out of the picture: three straight fallbacks would
  // otherwise trip it and short-circuit the third submission.
  options.breaker.failure_threshold = 1 << 20;
  QueryServer server(SharedDb(), options);
  server.PublishModel(std::make_shared<SlowPlanOptimizer>());

  const query::Query& q = Workload()[20];
  const std::string sql = q.ToSql(SharedDb()->schema());

  const ServedQuery cold = server.SubmitSql(sql, q.id).get();
  EXPECT_TRUE(cold.fell_back);
  const ServedQuery warm = server.SubmitSql(sql, q.id).get();
  EXPECT_TRUE(warm.fell_back);
  {
    // Second submission hit both template entries: the LQO plan and the
    // fallback native plan.
    const obs::MetricsRegistry metrics = server.SnapshotMetrics();
    EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheHits), 2);
    EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheMisses), 2);
  }

  // Swap models. The next submission must re-plan BOTH entries; before the
  // fix the fallback native plan hit the stale version-agnostic key and
  // hits would read 3.
  server.PublishModel(std::make_shared<SlowPlanOptimizer>());
  const ServedQuery swapped = server.SubmitSql(sql, q.id).get();
  EXPECT_TRUE(swapped.fell_back);
  EXPECT_EQ(swapped.result_rows, warm.result_rows);
  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheHits), 2);
  EXPECT_EQ(metrics.Get(obs::Counter::kPlanCacheMisses), 4);
}

/// Blocks Plan() until released, to hold a worker busy deterministically.
class GatedOptimizer : public lqo::NativePassthroughOptimizer {
 public:
  lqo::Prediction Plan(const query::Query& q,
                       engine::Database* db) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return released_; });
    }
    return NativePassthroughOptimizer::Plan(q, db);
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

TEST(QueryServer, TrySubmitRejectsWhenQueueIsFull) {
  obs::MetricsRegistry metrics;
  obs::MetricsScope scope(&metrics);

  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.route = RouteMode::kLqo;
  QueryServer server(SharedDb(), options);
  auto gate = std::make_shared<GatedOptimizer>();
  server.PublishModel(gate);

  // First query occupies the worker (blocked in Plan); cache misses keep
  // the second in the queue; the third must be rejected.
  std::future<ServedQuery> first = server.Submit(Workload()[0]);
  std::future<ServedQuery> second;
  while (!server.TrySubmit(Workload()[1], &second)) {
    // The worker may not have dequeued the first ticket yet; spin until
    // the queue has room (it will, as soon as the worker picks it up).
  }
  std::future<ServedQuery> third;
  bool accepted = true;
  // Queue (capacity 1) now holds the second ticket while the worker blocks
  // on the first: this admission must fail.
  accepted = server.TrySubmit(Workload()[2], &third);
  EXPECT_FALSE(accepted);
  EXPECT_GE(metrics.Get(obs::Counter::kServeRejected), 1);

  gate->Release();
  EXPECT_GT(first.get().result_rows, -1);
  EXPECT_GT(second.get().result_rows, -1);
  server.Drain();
}

TEST(HotSwapSlot, VersionsAreMonotonicAndSnapshotConsistent) {
  serve::HotSwapSlot<int> slot;
  EXPECT_EQ(slot.Acquire().value, nullptr);
  EXPECT_EQ(slot.version(), 0u);
  EXPECT_EQ(slot.Publish(std::make_shared<int>(7)), 1u);
  const auto snapshot = slot.Acquire();
  ASSERT_NE(snapshot.value, nullptr);
  EXPECT_EQ(*snapshot.value, 7);
  EXPECT_EQ(snapshot.version, 1u);
  EXPECT_EQ(slot.Publish(std::make_shared<int>(9)), 2u);
  // The old snapshot stays valid after the swap (shared ownership).
  EXPECT_EQ(*snapshot.value, 7);
  EXPECT_EQ(*slot.Acquire().value, 9);
}

}  // namespace
}  // namespace lqolab
