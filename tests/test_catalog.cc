// Tests for the schema model and the IMDB schema definition.

#include <set>

#include <gtest/gtest.h>

#include "catalog/imdb_schema.h"
#include "catalog/schema.h"

namespace lqolab::catalog {
namespace {

TEST(Schema, AddAndFindTables) {
  Schema schema;
  TableDef def;
  def.name = "widgets";
  def.columns = {{"id", ColumnType::kInt}, {"name", ColumnType::kString}};
  const TableId id = schema.AddTable(def);
  EXPECT_EQ(id, 0);
  EXPECT_EQ(schema.FindTable("widgets"), 0);
  EXPECT_EQ(schema.FindTable("missing"), kInvalidTable);
  EXPECT_EQ(schema.table(0).FindColumn("name"), 1);
  EXPECT_EQ(schema.table(0).FindColumn("nope"), kInvalidColumn);
}

class ImdbSchemaTest : public ::testing::Test {
 protected:
  Schema schema_ = BuildImdbSchema();
};

TEST_F(ImdbSchemaTest, HasAll21Tables) {
  EXPECT_EQ(schema_.table_count(), imdb::kTableCount);
  EXPECT_EQ(schema_.table_count(), 21);
  EXPECT_EQ(schema_.FindTable("title"), imdb::kTitle);
  EXPECT_EQ(schema_.FindTable("cast_info"), imdb::kCastInfo);
  EXPECT_EQ(schema_.FindTable("movie_info_idx"), imdb::kMovieInfoIdx);
}

TEST_F(ImdbSchemaTest, EveryTableHasIdPrimaryKey) {
  for (TableId t = 0; t < schema_.table_count(); ++t) {
    ASSERT_FALSE(schema_.table(t).columns.empty());
    EXPECT_EQ(schema_.table(t).columns[0].name, "id");
    EXPECT_EQ(schema_.table(t).columns[0].type, ColumnType::kInt);
  }
}

TEST_F(ImdbSchemaTest, ForeignKeysAreValid) {
  int32_t fk_count = 0;
  for (TableId t = 0; t < schema_.table_count(); ++t) {
    for (const auto& fk : schema_.table(t).foreign_keys) {
      ++fk_count;
      ASSERT_GE(fk.column, 1);
      ASSERT_LT(fk.column,
                static_cast<ColumnId>(schema_.table(t).columns.size()));
      ASSERT_GE(fk.referenced_table, 0);
      ASSERT_LT(fk.referenced_table, schema_.table_count());
      // FK columns are integers.
      EXPECT_EQ(schema_.table(t).columns[static_cast<size_t>(fk.column)].type,
                ColumnType::kInt);
    }
  }
  // The IMDB schema has a rich FK graph (movie_link alone has 3).
  EXPECT_GE(fk_count, 20);
}

TEST_F(ImdbSchemaTest, TitleIsReferencedByAllMovieFactTables) {
  for (TableId t : {imdb::kAkaTitle, imdb::kCastInfo, imdb::kCompleteCast,
                    imdb::kMovieCompanies, imdb::kMovieInfo,
                    imdb::kMovieInfoIdx, imdb::kMovieKeyword,
                    imdb::kMovieLink}) {
    bool references_title = false;
    for (const auto& fk : schema_.table(t).foreign_keys) {
      references_title |= fk.referenced_table == imdb::kTitle;
    }
    EXPECT_TRUE(references_title) << schema_.table(t).name;
  }
}

TEST_F(ImdbSchemaTest, ShortAliasesAreUnique) {
  std::set<std::string> aliases;
  for (TableId t = 0; t < schema_.table_count(); ++t) {
    aliases.insert(ImdbShortAlias(t));
  }
  EXPECT_EQ(static_cast<int32_t>(aliases.size()), schema_.table_count());
}

}  // namespace
}  // namespace lqolab::catalog
