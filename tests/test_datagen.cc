// Tests for the synthetic IMDB generator: determinism, referential
// integrity, skew, injected correlations, and the covariate-shift
// subsampler of Fig. 7.

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "catalog/imdb_schema.h"
#include "datagen/imdb_generator.h"
#include "storage/table.h"

namespace lqolab::datagen {
namespace {

using catalog::imdb::Table;

class DatagenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    schema_ = new catalog::Schema(catalog::BuildImdbSchema());
    tables_ = new std::vector<std::shared_ptr<storage::Table>>();
    for (auto& t : GenerateImdb(*schema_, ScaleProfile::Small(), 42)) {
      tables_->push_back(std::move(t));
    }
  }
  static void TearDownTestSuite() {
    delete tables_;
    delete schema_;
    tables_ = nullptr;
    schema_ = nullptr;
  }

  const storage::Table& table(catalog::TableId t) {
    return *(*tables_)[static_cast<size_t>(t)];
  }

  static catalog::Schema* schema_;
  static std::vector<std::shared_ptr<storage::Table>>* tables_;
};

catalog::Schema* DatagenTest::schema_ = nullptr;
std::vector<std::shared_ptr<storage::Table>>* DatagenTest::tables_ = nullptr;

TEST_F(DatagenTest, RowCountsMatchProfile) {
  const ScaleProfile profile = ScaleProfile::Small();
  EXPECT_EQ(table(Table::kTitle).row_count(), profile.title);
  EXPECT_EQ(table(Table::kCastInfo).row_count(), profile.cast_info);
  EXPECT_EQ(table(Table::kKindType).row_count(), 7);
  EXPECT_EQ(table(Table::kInfoType).row_count(), 113);
  EXPECT_EQ(table(Table::kCompanyType).row_count(), 4);
  EXPECT_EQ(table(Table::kRoleType).row_count(), 12);
}

TEST_F(DatagenTest, DeterministicForSameSeed) {
  auto again = GenerateImdb(*schema_, ScaleProfile::Small(), 42);
  const auto& a = table(Table::kCastInfo);
  const auto& b = *again[Table::kCastInfo];
  ASSERT_EQ(a.row_count(), b.row_count());
  for (storage::RowId r = 0; r < a.row_count(); r += 97) {
    for (int32_t c = 0; c < a.column_count(); ++c) {
      EXPECT_EQ(a.column(c).at(r), b.column(c).at(r));
    }
  }
}

TEST_F(DatagenTest, DifferentSeedDiffers) {
  auto other = GenerateImdb(*schema_, ScaleProfile::Small(), 43);
  const auto& a = table(Table::kCastInfo);
  const auto& b = *other[Table::kCastInfo];
  int differences = 0;
  for (storage::RowId r = 0; r < std::min<int64_t>(200, a.row_count()); ++r) {
    if (a.column(2).at(r) != b.column(2).at(r)) ++differences;
  }
  EXPECT_GT(differences, 50);
}

TEST_F(DatagenTest, ReferentialIntegrity) {
  for (catalog::TableId t = 0; t < schema_->table_count(); ++t) {
    for (const auto& fk : schema_->table(t).foreign_keys) {
      const storage::Table& referenced =
          table(fk.referenced_table);
      std::unordered_set<storage::Value> ids;
      for (storage::RowId r = 0; r < referenced.row_count(); ++r) {
        ids.insert(referenced.column(0).at(r));
      }
      const storage::Column& fk_col = table(t).column(fk.column);
      for (storage::RowId r = 0; r < table(t).row_count(); ++r) {
        const storage::Value v = fk_col.at(r);
        if (v == storage::kNullValue) continue;
        ASSERT_TRUE(ids.count(v) > 0)
            << schema_->table(t).name << " row " << r << " fk col "
            << fk.column << " dangling value " << v;
      }
    }
  }
}

TEST_F(DatagenTest, MoviePopularityIsSkewed) {
  // The busiest movie in cast_info should have far more credits than the
  // median one.
  std::unordered_map<storage::Value, int64_t> credits;
  const storage::Column& movie = table(Table::kCastInfo).column(2);
  for (storage::RowId r = 0; r < table(Table::kCastInfo).row_count(); ++r) {
    ++credits[movie.at(r)];
  }
  int64_t max_credits = 0;
  for (const auto& [id, count] : credits) {
    max_credits = std::max(max_credits, count);
  }
  const double avg = static_cast<double>(table(Table::kCastInfo).row_count()) /
                     static_cast<double>(credits.size());
  EXPECT_GT(static_cast<double>(max_credits), 4.0 * avg);
}

TEST_F(DatagenTest, GenderRoleCorrelation) {
  // Actresses (role 2) should be predominantly female; actors (role 1)
  // predominantly male — the injected correlation.
  const auto& ci = table(Table::kCastInfo);
  const auto& names = table(Table::kName);
  std::unordered_map<storage::Value, storage::Value> gender_by_id;
  for (storage::RowId r = 0; r < names.row_count(); ++r) {
    gender_by_id[names.column(0).at(r)] = names.column(2).at(r);
  }
  const storage::Value female = names.column(2).LookupString("f");
  int64_t actress_total = 0;
  int64_t actress_female = 0;
  for (storage::RowId r = 0; r < ci.row_count(); ++r) {
    if (ci.column(4).at(r) != 2) continue;  // role_id 2 = actress
    ++actress_total;
    if (gender_by_id[ci.column(1).at(r)] == female) ++actress_female;
  }
  ASSERT_GT(actress_total, 50);
  EXPECT_GT(static_cast<double>(actress_female) /
                static_cast<double>(actress_total),
            0.6);
}

TEST_F(DatagenTest, TitleYearsWithinRange) {
  const auto& title = table(Table::kTitle);
  int64_t nulls = 0;
  for (storage::RowId r = 0; r < title.row_count(); ++r) {
    const storage::Value year = title.column(3).at(r);
    if (year == storage::kNullValue) {
      ++nulls;
      continue;
    }
    ASSERT_GE(year, 1900);
    ASSERT_LE(year, 2024);
  }
  // ~4% null production years.
  EXPECT_GT(nulls, 0);
  EXPECT_LT(static_cast<double>(nulls) / static_cast<double>(title.row_count()),
            0.10);
}

TEST_F(DatagenTest, RatingPoolValuesPresent) {
  // The workload filters on "rating_*" / "votes_*" literals; they must
  // exist in the movie_info_idx dictionary (regression test for the pool
  // naming bug).
  const storage::Column& info = table(Table::kMovieInfoIdx).column(3);
  EXPECT_NE(info.LookupString("rating_5"), storage::kNullValue);
  EXPECT_NE(info.LookupString("votes_3"), storage::kNullValue);
}

TEST_F(DatagenTest, GenrePoolValuesPresent) {
  const storage::Column& info = table(Table::kMovieInfo).column(3);
  for (const char* genre : {"drama", "comedy", "horror", "documentary"}) {
    EXPECT_NE(info.LookupString(genre), storage::kNullValue) << genre;
  }
  EXPECT_NE(info.LookupString("country_0"), storage::kNullValue);
  EXPECT_NE(info.LookupString("lang_0"), storage::kNullValue);
}

TEST(ScaleProfile, ScaledKeepsMinimumRows) {
  const ScaleProfile tiny = ScaleProfile::Medium().Scaled(1e-9);
  EXPECT_GE(tiny.title, 8);
  EXPECT_GE(tiny.cast_info, 8);
}

class SubsampleTest : public DatagenTest {};

TEST_F(SubsampleTest, CascadePreservesIntegrity) {
  auto half = SubsampleTitleCascade(*schema_, *tables_, 0.5, 7);
  // Surviving title ids.
  std::unordered_set<storage::Value> kept;
  const auto& title = *half[Table::kTitle];
  for (storage::RowId r = 0; r < title.row_count(); ++r) {
    kept.insert(title.column(0).at(r));
  }
  // Roughly half the titles survive.
  const double fraction =
      static_cast<double>(title.row_count()) /
      static_cast<double>(table(Table::kTitle).row_count());
  EXPECT_NEAR(fraction, 0.5, 0.06);
  // Every title FK in every table points at a surviving title.
  for (catalog::TableId t = 0; t < schema_->table_count(); ++t) {
    for (const auto& fk : schema_->table(t).foreign_keys) {
      if (fk.referenced_table != Table::kTitle) continue;
      const auto& tab = *half[static_cast<size_t>(t)];
      for (storage::RowId r = 0; r < tab.row_count(); ++r) {
        const storage::Value v = tab.column(fk.column).at(r);
        if (v == storage::kNullValue) continue;
        ASSERT_TRUE(kept.count(v) > 0) << schema_->table(t).name;
      }
    }
  }
}

TEST_F(SubsampleTest, NonMovieTablesUntouched) {
  auto half = SubsampleTitleCascade(*schema_, *tables_, 0.5, 7);
  EXPECT_EQ((*half[Table::kName]).row_count(),
            table(Table::kName).row_count());
  EXPECT_EQ((*half[Table::kKeyword]).row_count(),
            table(Table::kKeyword).row_count());
  EXPECT_EQ((*half[Table::kInfoType]).row_count(), 113);
}

TEST_F(SubsampleTest, MovieFactTablesShrink) {
  auto half = SubsampleTitleCascade(*schema_, *tables_, 0.5, 7);
  for (catalog::TableId t : {Table::kCastInfo, Table::kMovieInfo,
                             Table::kMovieKeyword, Table::kMovieCompanies}) {
    const double fraction =
        static_cast<double>((*half[static_cast<size_t>(t)]).row_count()) /
        static_cast<double>(table(t).row_count());
    EXPECT_GT(fraction, 0.25) << schema_->table(t).name;
    EXPECT_LT(fraction, 0.75) << schema_->table(t).name;
  }
}

TEST_F(SubsampleTest, FullFractionKeepsEverything) {
  auto all = SubsampleTitleCascade(*schema_, *tables_, 1.0, 7);
  for (catalog::TableId t = 0; t < schema_->table_count(); ++t) {
    EXPECT_EQ((*all[static_cast<size_t>(t)]).row_count(),
              table(t).row_count());
  }
}

TEST_F(SubsampleTest, StringsSurviveReencoding) {
  auto half = SubsampleTitleCascade(*schema_, *tables_, 0.5, 7);
  const storage::Column& info = (*half[Table::kMovieInfo]).column(3);
  EXPECT_NE(info.LookupString("drama"), storage::kNullValue);
}

}  // namespace
}  // namespace lqolab::datagen
