// Tests for the open-loop overload harness (docs/overload.md): the seeded
// arrival generator (rate shapes, tenant mixes, Zipf skew, determinism),
// the SLO accountant's outcome taxonomy, the deterministic G/G/k virtual
// dispatcher, QueryServer::SubmitAt admission (rejection, shedding,
// deadline stamping at arrival), deterministic half-open breaker probes,
// and the end-to-end OpenLoopRunner reproducibility guarantee.

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "loadgen/arrival.h"
#include "loadgen/open_loop.h"
#include "loadgen/slo.h"
#include "query/job_workload.h"
#include "serve/circuit_breaker.h"
#include "serve/dispatcher.h"
#include "serve/query_server.h"
#include "util/virtual_clock.h"

namespace lqolab {
namespace {

using loadgen::Arrival;
using loadgen::ArrivalGenerator;
using loadgen::RateProfile;
using loadgen::SloAccountant;
using loadgen::SloReport;
using loadgen::TenantSpec;
using serve::CircuitBreaker;
using serve::CircuitBreakerOptions;
using serve::OpenLoopArrival;
using serve::OpenLoopCompletion;
using serve::QueryServer;
using serve::ServedQuery;
using serve::ServerOptions;
using serve::VirtualDispatcher;
using util::kNanosPerSecond;
using util::VirtualNanos;

std::vector<TenantSpec> TwoTenants() {
  return {
      {"hot", /*weight=*/3.0, /*zipf_s=*/1.5, /*deadline=*/0},
      {"flat", /*weight=*/1.0, /*zipf_s=*/0.0, /*deadline=*/0},
  };
}

TEST(RateProfile, ShapesAndEnvelope) {
  const RateProfile constant = RateProfile::Constant(50.0);
  EXPECT_DOUBLE_EQ(constant.QpsAt(0), 50.0);
  EXPECT_DOUBLE_EQ(constant.QpsAt(kNanosPerSecond), 50.0);
  EXPECT_DOUBLE_EQ(constant.MaxQps(), 50.0);

  const RateProfile diurnal =
      RateProfile::Diurnal(100.0, 0.5, 60 * kNanosPerSecond);
  // Peak at a quarter period (sin = 1), trough at three quarters.
  EXPECT_NEAR(diurnal.QpsAt(15 * kNanosPerSecond), 150.0, 1e-6);
  EXPECT_NEAR(diurnal.QpsAt(45 * kNanosPerSecond), 50.0, 1e-6);
  EXPECT_NEAR(diurnal.MaxQps(), 150.0, 1e-6);

  const RateProfile burst = RateProfile::Burst(
      10.0, 5.0, 10 * kNanosPerSecond, kNanosPerSecond);
  EXPECT_DOUBLE_EQ(burst.QpsAt(0), 50.0);  // Inside the window.
  EXPECT_DOUBLE_EQ(burst.QpsAt(5 * kNanosPerSecond), 10.0);
  EXPECT_DOUBLE_EQ(burst.MaxQps(), 50.0);
}

TEST(ArrivalGenerator, DeterministicAndSorted) {
  ArrivalGenerator gen_a(RateProfile::Constant(200.0), TwoTenants(),
                         /*workload_size=*/50, /*seed=*/7);
  ArrivalGenerator gen_b(RateProfile::Constant(200.0), TwoTenants(),
                         /*workload_size=*/50, /*seed=*/7);
  const auto a = gen_a.Generate(5 * kNanosPerSecond);
  const auto b = gen_b.Generate(5 * kNanosPerSecond);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].query_index, b[i].query_index);
    if (i > 0) {
      EXPECT_GE(a[i].at, a[i - 1].at);
    }
    EXPECT_GE(a[i].at, 0);
    EXPECT_LT(a[i].at, 5 * kNanosPerSecond);
  }

  // A different seed reshuffles the stream.
  ArrivalGenerator gen_c(RateProfile::Constant(200.0), TwoTenants(),
                         /*workload_size=*/50, /*seed=*/8);
  const auto c = gen_c.Generate(5 * kNanosPerSecond);
  bool any_different = c.size() != a.size();
  for (size_t i = 0; !any_different && i < a.size(); ++i) {
    any_different = a[i].at != c[i].at;
  }
  EXPECT_TRUE(any_different);
}

TEST(ArrivalGenerator, RateMatchesProfile) {
  // 200 qps over 20 virtual seconds: expect ~4000 arrivals; Poisson sd is
  // ~63, so +-5 sd is a safe deterministic band for one fixed seed.
  ArrivalGenerator gen(RateProfile::Constant(200.0), TwoTenants(),
                       /*workload_size=*/50, /*seed=*/42);
  const auto arrivals = gen.Generate(20 * kNanosPerSecond);
  EXPECT_GT(arrivals.size(), 3650u);
  EXPECT_LT(arrivals.size(), 4350u);
}

TEST(ArrivalGenerator, BurstWindowsConcentrateArrivals) {
  // 10 qps baseline, 8x inside a 1s window every 10s: the window holds
  // ~44% of all arrivals despite covering 10% of the horizon.
  ArrivalGenerator gen(
      RateProfile::Burst(10.0, 8.0, 10 * kNanosPerSecond, kNanosPerSecond),
      TwoTenants(), /*workload_size=*/50, /*seed=*/42);
  const auto arrivals = gen.Generate(40 * kNanosPerSecond);
  ASSERT_FALSE(arrivals.empty());
  int64_t inside = 0;
  for (const Arrival& a : arrivals) {
    if (a.at % (10 * kNanosPerSecond) < kNanosPerSecond) ++inside;
  }
  const double inside_share =
      static_cast<double>(inside) / static_cast<double>(arrivals.size());
  EXPECT_GT(inside_share, 0.3);
}

TEST(ArrivalGenerator, TenantMixAndSkew) {
  ArrivalGenerator gen(RateProfile::Constant(500.0), TwoTenants(),
                       /*workload_size=*/40, /*seed=*/42);
  EXPECT_NEAR(gen.TenantShare(0), 0.75, 1e-9);
  EXPECT_NEAR(gen.TenantShare(1), 0.25, 1e-9);

  const auto arrivals = gen.Generate(20 * kNanosPerSecond);
  ASSERT_GT(arrivals.size(), 1000u);
  int64_t hot = 0;
  std::vector<int64_t> hot_counts(40, 0);
  for (const Arrival& a : arrivals) {
    ASSERT_GE(a.query_index, 0);
    ASSERT_LT(a.query_index, 40);
    if (a.tenant == 0) {
      ++hot;
      ++hot_counts[static_cast<size_t>(a.query_index)];
    }
  }
  const double hot_share =
      static_cast<double>(hot) / static_cast<double>(arrivals.size());
  EXPECT_NEAR(hot_share, 0.75, 0.05);

  // Zipf s=1.5: the hot tenant's most popular query carries far more mass
  // than uniform (1/40), and the generator's stated probabilities match.
  const int64_t top =
      *std::max_element(hot_counts.begin(), hot_counts.end());
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(hot), 0.2);
  double mass = 0.0;
  for (int32_t i = 0; i < 40; ++i) mass += gen.QueryProbability(0, i);
  EXPECT_NEAR(mass, 1.0, 1e-9);
  // The flat tenant is uniform.
  EXPECT_NEAR(gen.QueryProbability(1, 0), 1.0 / 40.0, 1e-9);
  EXPECT_NEAR(gen.QueryProbability(1, 39), 1.0 / 40.0, 1e-9);
}

TEST(ArrivalGenerator, TenantHotSetsAreDisjointPermutations) {
  // Two equally-skewed tenants favour different queries: the per-tenant
  // seeded permutation decorrelates their hot sets.
  std::vector<TenantSpec> tenants = {
      {"a", 1.0, 1.5, 0},
      {"b", 1.0, 1.5, 0},
  };
  ArrivalGenerator gen(RateProfile::Constant(100.0), tenants,
                       /*workload_size=*/100, /*seed=*/42);
  int32_t top_a = 0, top_b = 0;
  double best_a = -1.0, best_b = -1.0;
  for (int32_t i = 0; i < 100; ++i) {
    if (gen.QueryProbability(0, i) > best_a) {
      best_a = gen.QueryProbability(0, i);
      top_a = i;
    }
    if (gen.QueryProbability(1, i) > best_b) {
      best_b = gen.QueryProbability(1, i);
      top_b = i;
    }
  }
  EXPECT_NE(top_a, top_b);
}

ServedQuery MakeServed(int32_t tenant, VirtualNanos queue_wait,
                       VirtualNanos exec) {
  ServedQuery served;
  served.status = util::Status::Ok();
  served.tenant = tenant;
  served.queue_wait_ns = queue_wait;
  served.execution_ns = exec;
  return served;
}

TEST(SloAccountant, OutcomeTaxonomyAndRates) {
  SloAccountant acct({"alpha", "beta"});

  // Tenant 0: two ok (one missed deadline), one shed.
  ServedQuery ok1 = MakeServed(0, 1'000'000, 9'000'000);
  ok1.completion_vt = 10'000'000;
  acct.Record(ok1);
  ServedQuery ok2 = MakeServed(0, 2'000'000, 18'000'000);
  ok2.completion_vt = 20'000'000;
  ok2.deadline_missed = true;
  ok2.replans = 1;
  acct.Record(ok2);
  ServedQuery shed = MakeServed(0, 0, 0);
  shed.status = util::Status(util::StatusCode::kUnavailable, "shed");
  shed.shed = true;
  acct.Record(shed);

  // Tenant 1: one rejected, one timed out, one failed.
  ServedQuery rejected = MakeServed(1, 0, 0);
  rejected.status =
      util::Status(util::StatusCode::kResourceExhausted, "queue full");
  rejected.rejected = true;
  acct.Record(rejected);
  ServedQuery timed_out = MakeServed(1, 0, 50'000'000);
  timed_out.status =
      util::Status(util::StatusCode::kDeadlineExceeded, "statement timeout");
  timed_out.timed_out = true;
  acct.Record(timed_out);
  ServedQuery failed = MakeServed(1, 0, 0);
  failed.status = util::Status(util::StatusCode::kInternal, "boom");
  acct.Record(failed);

  EXPECT_EQ(acct.recorded(), 6);
  const SloReport report = acct.Report(/*horizon_ns=*/2 * kNanosPerSecond);

  ASSERT_EQ(report.tenants.size(), 2u);
  const loadgen::TenantSlo& alpha = report.tenants[0];
  EXPECT_EQ(alpha.name, "alpha");
  EXPECT_EQ(alpha.offered, 3);
  EXPECT_EQ(alpha.ok, 2);
  EXPECT_EQ(alpha.shed, 1);
  EXPECT_EQ(alpha.deadline_missed, 1);
  EXPECT_EQ(alpha.replans, 1);
  // Goodput only credits on-time completions: (2 ok - 1 missed) / 2s.
  EXPECT_NEAR(alpha.goodput_qps, 0.5, 1e-9);
  EXPECT_NEAR(alpha.miss_rate, 0.5, 1e-9);
  // Latencies: 10ms and 20ms totals; p50 interpolates the midpoint.
  EXPECT_NEAR(alpha.p99_total_ms, 20.0, 0.5);

  const loadgen::TenantSlo& beta = report.tenants[1];
  EXPECT_EQ(beta.offered, 3);
  EXPECT_EQ(beta.ok, 0);
  EXPECT_EQ(beta.rejected, 1);
  EXPECT_EQ(beta.timed_out, 1);
  EXPECT_EQ(beta.failed, 1);
  EXPECT_NEAR(beta.goodput_qps, 0.0, 1e-9);

  const loadgen::TenantSlo& all = report.aggregate;
  EXPECT_EQ(all.offered, 6);
  EXPECT_EQ(all.ok, 2);
  EXPECT_EQ(all.shed + all.rejected + all.timed_out + all.failed, 4);
}

OpenLoopCompletion MakeCompletion(VirtualNanos arrival, VirtualNanos service,
                                  VirtualNanos deadline_vt = 0) {
  OpenLoopCompletion completion;
  completion.arrival_vt = arrival;
  completion.service_ns = service;
  completion.deadline_vt = deadline_vt;
  completion.served.status = util::Status::Ok();
  return completion;
}

TEST(VirtualDispatcher, HandComputedGG1PlacementOutOfOrder) {
  // k=1, three admissions. Arrivals at 0, 10, 100; services 30, 20, 5.
  //   seq 0: start 0,  done 30 (wait 0)
  //   seq 1: start 30, done 50 (wait 20)
  //   seq 2: start 100, done 105 (wait 0)
  VirtualDispatcher dispatcher(/*virtual_workers=*/1);
  std::future<ServedQuery> f0, f1, f2;
  {
    OpenLoopCompletion c0 = MakeCompletion(0, 30);
    OpenLoopCompletion c1 = MakeCompletion(10, 20, /*deadline_vt=*/45);
    OpenLoopCompletion c2 = MakeCompletion(100, 5);
    f0 = c0.promise.get_future();
    f1 = c1.promise.get_future();
    f2 = c2.promise.get_future();
    // Report completions out of admission order: the dispatcher must
    // buffer seq 1 and 2 until seq 0 lands, then place all three FIFO.
    dispatcher.Complete(2, std::move(c2));
    dispatcher.Complete(1, std::move(c1));
    EXPECT_EQ(dispatcher.finalized(), 0);
    dispatcher.Complete(0, std::move(c0));
  }
  const ServedQuery s0 = f0.get();
  const ServedQuery s1 = f1.get();
  const ServedQuery s2 = f2.get();
  EXPECT_EQ(s0.queue_wait_ns, 0);
  EXPECT_EQ(s0.completion_vt, 30);
  EXPECT_FALSE(s0.deadline_missed);
  EXPECT_EQ(s1.queue_wait_ns, 20);
  EXPECT_EQ(s1.completion_vt, 50);
  EXPECT_TRUE(s1.deadline_missed);  // 50 > deadline 45.
  EXPECT_EQ(s2.queue_wait_ns, 0);
  EXPECT_EQ(s2.completion_vt, 105);
  EXPECT_EQ(dispatcher.finalized(), 3);
  EXPECT_EQ(dispatcher.deadline_missed(), 1);
  EXPECT_EQ(dispatcher.horizon(), 105);
}

TEST(VirtualDispatcher, ParallelWorkersOverlap) {
  // k=2: both arrivals at t=0 start immediately on distinct workers.
  VirtualDispatcher dispatcher(/*virtual_workers=*/2);
  OpenLoopCompletion c0 = MakeCompletion(0, 40);
  OpenLoopCompletion c1 = MakeCompletion(0, 10);
  auto f0 = c0.promise.get_future();
  auto f1 = c1.promise.get_future();
  dispatcher.Complete(0, std::move(c0));
  dispatcher.Complete(1, std::move(c1));
  EXPECT_EQ(f0.get().completion_vt, 40);
  const ServedQuery s1 = f1.get();
  EXPECT_EQ(s1.queue_wait_ns, 0);
  EXPECT_EQ(s1.completion_vt, 10);
}

TEST(CircuitBreaker, ProbeSpacingSelectsDeterministically) {
  // probe_spacing=3: in half-open, requests 0, 3, 6, ... are probes no
  // matter how long earlier probes stay unreported — selection is a pure
  // function of the request index, not of outcome timing.
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_requests = 2;
  options.probe_successes = 100;  // Stay half-open for the whole test.
  options.probe_spacing = 3;
  CircuitBreaker breaker(options);

  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();  // Trip.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  // open_requests elapsed: this request transitions to half-open and is
  // itself admitted as the window's index-0 probe.
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  std::vector<bool> admitted;
  for (int i = 0; i < 9; ++i) {
    admitted.push_back(breaker.AllowRequest());
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  }
  // Window indices 1..9: probes at 3, 6, 9 — with NO outcome reported in
  // between, which under the classic one-at-a-time policy would have
  // admitted none (the index-0 probe is still in flight).
  const std::vector<bool> expected = {false, false, true,  false, false,
                                      true,  false, false, true};
  EXPECT_EQ(admitted, expected);
  // Resolve the probes (protocol: every true must be paired).
  breaker.RecordSuccess();
  breaker.RecordSuccess();
  breaker.RecordSuccess();
  breaker.RecordSuccess();
}

/// One small database shared by the server-level tests.
engine::Database* SharedDb() {
  static std::unique_ptr<engine::Database> db = [] {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    return engine::Database::CreateImdb(options);
  }();
  return db.get();
}

const std::vector<query::Query>& Workload() {
  static const std::vector<query::Query> workload =
      query::BuildJobLiteWorkload(SharedDb()->schema());
  return workload;
}

TEST(SubmitAt, QueueFullRejectsInsteadOfBlocking) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.virtual_workers = 1;
  QueryServer server(SharedDb(), options);

  // Flood far beyond the queue: open-loop admission must never block the
  // arrival process, so overflow resolves as explicit rejections.
  std::vector<std::future<ServedQuery>> futures;
  for (int i = 0; i < 64; ++i) {
    OpenLoopArrival arrival;
    arrival.arrival_vt = static_cast<VirtualNanos>(i);
    futures.push_back(server.SubmitAt(Workload()[0], arrival));
  }
  int64_t ok = 0, rejected = 0;
  for (auto& future : futures) {
    const ServedQuery served = future.get();
    if (served.rejected) {
      EXPECT_EQ(served.status.code(), util::StatusCode::kResourceExhausted);
      EXPECT_TRUE(served.status.retryable());
      ++rejected;
    } else if (served.status.ok()) {
      ++ok;
    }
  }
  EXPECT_EQ(ok + rejected, 64);
  EXPECT_GT(ok, 0);
  EXPECT_GT(rejected, 0);
}

TEST(SubmitAt, ShedsPredictedDeadlineMisses) {
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 256;
  options.virtual_workers = 1;
  options.shed_on_predicted_miss = true;
  QueryServer server(SharedDb(), options);

  // All arrivals at t=0 with a budget of 3 service times: the predictor
  // (fed estimated_service_ns = 1ms each) can fit ~3 in the budget on one
  // virtual worker and must shed the rest at admission.
  std::vector<std::future<ServedQuery>> futures;
  for (int i = 0; i < 16; ++i) {
    OpenLoopArrival arrival;
    arrival.arrival_vt = 0;
    arrival.deadline_budget_ns = 3'000'000;
    arrival.estimated_service_ns = 1'000'000;
    futures.push_back(server.SubmitAt(Workload()[0], arrival));
  }
  int64_t shed = 0, admitted = 0;
  for (auto& future : futures) {
    const ServedQuery served = future.get();
    if (served.shed) {
      EXPECT_EQ(served.status.code(), util::StatusCode::kUnavailable);
      EXPECT_EQ(served.result_rows, 0);
      ++shed;
    } else {
      ++admitted;
    }
  }
  EXPECT_EQ(shed + admitted, 16);
  EXPECT_GE(shed, 10);  // Budget fits ~3 estimated services.
  EXPECT_GT(admitted, 0);
}

TEST(SubmitAt, DeadlineStampedAtArrivalCountsQueueWait) {
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 256;
  options.virtual_workers = 1;  // Serialize: later admissions queue.
  QueryServer server(SharedDb(), options);

  // Same arrival instant, tight budget, no shedding: the first admission
  // meets its deadline, the ones behind it in the virtual queue miss
  // theirs purely from queue wait.
  std::vector<std::future<ServedQuery>> futures;
  for (int i = 0; i < 8; ++i) {
    OpenLoopArrival arrival;
    arrival.arrival_vt = 0;
    arrival.deadline_budget_ns = 1;  // Nothing but the first can make it.
    arrival.tenant = i % 3;
    futures.push_back(server.SubmitAt(Workload()[0], arrival));
  }
  int64_t missed = 0;
  VirtualNanos last_completion = 0;
  for (auto& future : futures) {
    const ServedQuery served = future.get();
    ASSERT_TRUE(served.status.ok()) << served.status.ToString();
    EXPECT_EQ(served.completion_vt,
              served.arrival_vt + served.total_latency_ns());
    EXPECT_GE(served.completion_vt, last_completion);  // FIFO on k=1.
    last_completion = served.completion_vt;
    if (served.deadline_missed) ++missed;
  }
  EXPECT_GE(missed, 7);
}

TEST(OpenLoopRunner, EndToEndDeterministicFingerprint) {
  loadgen::OpenLoopRunner runner(SharedDb(), Workload());
  loadgen::OpenLoopOptions options;
  options.offered_multiple = 1.2;
  options.tenants = TwoTenants();
  options.target_arrivals = 60;
  options.deadline_service_multiple = 4.0;
  options.virtual_workers = 2;
  options.real_workers = 2;
  options.shed_on_predicted_miss = true;
  options.seed = 42;

  const loadgen::OpenLoopResult first = runner.Run(options);
  EXPECT_GT(first.arrivals, 0);
  EXPECT_GT(first.capacity_qps, 0.0);
  EXPECT_EQ(first.report.aggregate.offered, first.arrivals);

  // Same options, different real worker count: every virtual metric and
  // the completion fingerprint must be bit-identical (the dispatcher
  // decouples virtual placement from thread scheduling).
  loadgen::OpenLoopOptions wider = options;
  wider.real_workers = 4;
  const loadgen::OpenLoopResult second = runner.Run(wider);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.arrivals, second.arrivals);
  EXPECT_EQ(first.report.aggregate.ok, second.report.aggregate.ok);
  EXPECT_EQ(first.report.aggregate.shed, second.report.aggregate.shed);
  EXPECT_EQ(first.report.aggregate.deadline_missed,
            second.report.aggregate.deadline_missed);
  EXPECT_DOUBLE_EQ(first.report.aggregate.p99_total_ms,
                   second.report.aggregate.p99_total_ms);
}

}  // namespace
}  // namespace lqolab
