// Tests pinning the Table 2 configuration presets to the paper's published
// values, and the memory-scaling helpers.

#include <gtest/gtest.h>

#include "engine/config.h"
#include "engine/database.h"

namespace lqolab::engine {
namespace {

TEST(Config, DefaultsMatchPostgres) {
  const DbConfig c = DbConfig::Default();
  EXPECT_TRUE(c.geqo);
  EXPECT_EQ(c.geqo_threshold, 12);
  EXPECT_EQ(c.work_mem_mb, 4);
  EXPECT_EQ(c.shared_buffers_mb, 128);
  EXPECT_EQ(c.temp_buffers_mb, 8);
  EXPECT_EQ(c.effective_cache_size_mb, 4096);
  EXPECT_EQ(c.max_parallel_workers, 8);
  EXPECT_EQ(c.max_worker_processes, 2);
  EXPECT_TRUE(c.enable_bitmapscan);
  EXPECT_TRUE(c.enable_tidscan);
}

TEST(Config, JobPaperPreset) {
  const DbConfig c = DbConfig::JobPaper();
  EXPECT_EQ(c.geqo_threshold, 18);
  EXPECT_EQ(c.work_mem_mb, 2 * 1024);
  EXPECT_EQ(c.shared_buffers_mb, 4 * 1024);
  EXPECT_EQ(c.effective_cache_size_mb, 32 * 1024);
}

TEST(Config, BalsaLeonDisablesScansAndGeqo) {
  const DbConfig c = DbConfig::BalsaLeon();
  EXPECT_FALSE(c.geqo);
  EXPECT_FALSE(c.enable_bitmapscan);
  EXPECT_FALSE(c.enable_tidscan);
  EXPECT_EQ(c.work_mem_mb, 4 * 1024);
  EXPECT_EQ(c.shared_buffers_mb, 32 * 1024);
  EXPECT_EQ(c.temp_buffers_mb, 32 * 1024);
  EXPECT_EQ(c.max_worker_processes, 8);
}

TEST(Config, LogerAndLeroDisableParallelism) {
  const DbConfig loger = DbConfig::Loger();
  EXPECT_EQ(loger.max_parallel_workers, 1);
  EXPECT_EQ(loger.shared_buffers_mb, 64 * 1024);
  EXPECT_EQ(loger.ram_mb, 256 * 1024);
  const DbConfig lero = DbConfig::Lero();
  EXPECT_EQ(lero.max_parallel_workers, 0);
  EXPECT_EQ(lero.max_parallel_workers_per_gather, 0);
  EXPECT_EQ(lero.ram_mb, 512 * 1024);
}

TEST(Config, OurFrameworkPreset) {
  const DbConfig c = DbConfig::OurFramework();
  EXPECT_TRUE(c.geqo);
  EXPECT_TRUE(c.enable_bitmapscan);  // re-enabled vs Balsa
  EXPECT_TRUE(c.enable_tidscan);
  EXPECT_EQ(c.effective_cache_size_mb, 32 * 1024);
  EXPECT_EQ(c.shared_buffers_mb, 32 * 1024);
  EXPECT_EQ(c.max_worker_processes, 8);
}

TEST(Config, Table2PresetsComplete) {
  const auto presets = DbConfig::Table2Presets();
  ASSERT_EQ(presets.size(), 7u);
  EXPECT_EQ(presets[0].name, "default");
  EXPECT_EQ(presets.back().name, "our_framework");
}

TEST(Config, ScaledBytesAppliesMemoryScale) {
  EXPECT_EQ(ScaledBytes(kMemoryScale), 1024 * 1024);
  EXPECT_EQ(ScaledPages(kMemoryScale),
            1024 * 1024 / storage::kPageSizeBytes);
  // Capacities never collapse below a handful of pages.
  EXPECT_GE(ScaledPages(0), 16);
}

TEST(Config, FreshConfigsUseFullEstimator) {
  const DbConfig c = DbConfig::OurFramework();
  EXPECT_EQ(c.estimator_mode, EstimatorMode::kFull);
  EXPECT_EQ(c.join_selectivity_scale, 1.0);
}

}  // namespace
}  // namespace lqolab::engine
