#!/usr/bin/env bash
# Gates the recorded benchmark artifacts at the repo root (docs/benchmarks.md
# catalogues them). Fails when a committed BENCH_*.json regressed below the
# floor its benchmark is expected to hold:
#   - BENCH_parallel_runner.json: virtual work-stealing speedup > 1.5x at 4
#     workers for every scale factor, byte-identical parallel measurements,
#     and a scale-factor curve reaching a 10M+-row database.
#   - BENCH_fuzz.json: zero discrepancies, and the SQL round-trip arm ran
#     over at least 1000 queries.
#   - BENCH_serve.json: recorded with --sql, every arm deterministic, and
#     the normalized-template plan-cache key beats per-literal keying on
#     the varied-literal workload by > 0.3 hit rate.
#   - BENCH_costmodel.json: the learned cost model's median q-error beats
#     the calibrated analytic model on at least one workload, the serve
#     loop's first refresh promoted, the gate refused the poisoned
#     candidate, and harvest->retrain was worker-count deterministic.
#   - BENCH_overload.json: deadline-aware shedding preserves >= 2x the
#     goodput of the no-shedding server at 1.5x capacity, adaptive replans
#     beat straight-through p99 under the poisoned estimator, the replan
#     differential stayed byte-identical, and the run was reproducible.
# Regenerate with: build/bench/micro_parallel_runner BENCH_parallel_runner.json
#                  build/bench/fuzz_soak BENCH_fuzz.json
#                  build/bench/serve_throughput --sql BENCH_serve.json
#                  build/bench/cost_model_bakeoff BENCH_costmodel.json
#                  build/bench/overload_soak BENCH_overload.json
set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
json="$root/BENCH_parallel_runner.json"
fail=0

if [ ! -f "$json" ]; then
  echo "FAIL: missing $json"
  exit 1
fi

speedups=$(grep -o '"parallelism": 4[^}]*' "$json" |
  grep -o '"virtual_speedup": [0-9.]*' | awk '{print $2}')
if [ -z "$speedups" ]; then
  echo "FAIL: no 4-worker virtual_speedup entries in $json"
  fail=1
fi
for s in $speedups; do
  if ! awk -v s="$s" 'BEGIN { exit !(s > 1.5) }'; then
    echo "FAIL: virtual_speedup $s at 4 workers is <= 1.5 in $json"
    fail=1
  fi
done

if grep -q '"deterministic": false' "$json"; then
  echo "FAIL: non-deterministic parallel measurement recorded in $json"
  fail=1
fi

max_rows=$(grep -o '"total_rows": [0-9]*' "$json" | awk '{print $2}' |
  sort -n | tail -1)
if [ "${max_rows:-0}" -lt 10000000 ]; then
  echo "FAIL: scale-factor curve tops out at ${max_rows:-0} rows (< 10M)"
  fail=1
fi

fuzz="$root/BENCH_fuzz.json"
if [ ! -f "$fuzz" ]; then
  echo "FAIL: missing $fuzz"
  fail=1
else
  if ! grep -q '"discrepancies": 0,' "$fuzz"; then
    echo "FAIL: fuzz soak recorded discrepancies in $fuzz"
    fail=1
  fi
  round_trips=$(grep -o '"sql_round_trips": [0-9]*' "$fuzz" | awk '{print $2}')
  if [ "${round_trips:-0}" -lt 1000 ]; then
    echo "FAIL: only ${round_trips:-0} SQL round trips recorded (< 1000) in $fuzz"
    fail=1
  fi
fi

serve="$root/BENCH_serve.json"
if [ ! -f "$serve" ]; then
  echo "FAIL: missing $serve"
  fail=1
else
  if ! grep -q '"sql_mode": true' "$serve"; then
    echo "FAIL: $serve was not recorded with --sql"
    fail=1
  fi
  if grep -q '"deterministic": false' "$serve"; then
    echo "FAIL: non-deterministic serving arm recorded in $serve"
    fail=1
  fi
  if ! grep -q '"open_loop":' "$serve"; then
    echo "FAIL: no open-loop tail-latency sweep recorded in $serve"
    fail=1
  fi
  tmpl_hit=$(grep '"route": "sql_pglite_varied"' "$serve" |
    grep -o '"cache_hit_rate": [0-9.]*' | awk '{print $2}')
  literal_hit=$(grep '"route": "struct_pglite_varied"' "$serve" |
    grep -o '"cache_hit_rate": [0-9.]*' | awk '{print $2}')
  if [ -z "$tmpl_hit" ] || [ -z "$literal_hit" ]; then
    echo "FAIL: varied-literal arm pair missing from $serve"
    fail=1
  elif ! awk -v t="$tmpl_hit" -v l="$literal_hit" \
      'BEGIN { exit !(t > l + 0.3) }'; then
    echo "FAIL: template hit rate $tmpl_hit <= per-literal $literal_hit + 0.3 in $serve"
    fail=1
  fi
fi

costmodel="$root/BENCH_costmodel.json"
if [ ! -f "$costmodel" ]; then
  echo "FAIL: missing $costmodel"
  fail=1
else
  wins=$(grep -o '"learned_beats_analytic_workloads": [0-9]*' "$costmodel" |
    awk '{print $2}')
  if [ "${wins:-0}" -lt 1 ]; then
    echo "FAIL: learned model beats analytic on ${wins:-0} workloads (< 1) in $costmodel"
    fail=1
  fi
  if ! grep -q '"first_refresh_promoted": true' "$costmodel"; then
    echo "FAIL: serve-loop refresh did not promote a candidate in $costmodel"
    fail=1
  fi
  if ! grep -q '"poisoned_candidate_rejected": true' "$costmodel"; then
    echo "FAIL: promotion gate accepted the poisoned candidate in $costmodel"
    fail=1
  fi
  if ! grep -q '"refresh_deterministic": true' "$costmodel"; then
    echo "FAIL: harvest->retrain differed across worker counts in $costmodel"
    fail=1
  fi
fi

overload="$root/BENCH_overload.json"
if [ ! -f "$overload" ]; then
  echo "FAIL: missing $overload"
  fail=1
else
  ratio=$(grep -o '"shed_goodput_ratio": [0-9.]*' "$overload" | awk '{print $2}')
  if [ -z "$ratio" ]; then
    echo "FAIL: no shed_goodput_ratio recorded in $overload"
    fail=1
  elif ! awk -v r="$ratio" 'BEGIN { exit !(r >= 2.0) }'; then
    echo "FAIL: shed goodput ratio $ratio < 2.0 at 1.5x capacity in $overload"
    fail=1
  fi
  off_p99=$(grep -o '"no_replan_p99_ms": [0-9.]*' "$overload" | awk '{print $2}')
  on_p99=$(grep -o '"replan_p99_ms": [0-9.]*' "$overload" | awk '{print $2}')
  if [ -z "$off_p99" ] || [ -z "$on_p99" ]; then
    echo "FAIL: replan pair missing from $overload"
    fail=1
  elif ! awk -v on="$on_p99" -v off="$off_p99" 'BEGIN { exit !(on < off) }'; then
    echo "FAIL: replan p99 $on_p99 >= no-replan p99 $off_p99 in $overload"
    fail=1
  fi
  if ! grep -q '"reproducible": true' "$overload"; then
    echo "FAIL: overload soak fingerprint not reproducible in $overload"
    fail=1
  fi
  if ! grep -q '"replan_differential_identical": true' "$overload"; then
    echo "FAIL: replan differential produced different answers in $overload"
    fail=1
  fi
  diff_replans=$(grep -o '"replan_differential_replans": [0-9]*' "$overload" |
    awk '{print $2}')
  if [ "${diff_replans:-0}" -lt 1 ]; then
    echo "FAIL: replan differential never replanned in $overload"
    fail=1
  fi
fi

if [ "$fail" -eq 0 ]; then
  echo "OK: benchmark gates hold ($json, $fuzz, $serve, $costmodel, $overload)"
fi
exit "$fail"
