#!/usr/bin/env bash
# Gates the recorded benchmark artifacts at the repo root (docs/benchmarks.md
# catalogues them). Fails when a committed BENCH_*.json regressed below the
# floor its benchmark is expected to hold:
#   - BENCH_parallel_runner.json: virtual work-stealing speedup > 1.5x at 4
#     workers for every scale factor, byte-identical parallel measurements,
#     and a scale-factor curve reaching a 10M+-row database.
# Regenerate with: build/bench/micro_parallel_runner BENCH_parallel_runner.json
set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
json="$root/BENCH_parallel_runner.json"
fail=0

if [ ! -f "$json" ]; then
  echo "FAIL: missing $json"
  exit 1
fi

speedups=$(grep -o '"parallelism": 4[^}]*' "$json" |
  grep -o '"virtual_speedup": [0-9.]*' | awk '{print $2}')
if [ -z "$speedups" ]; then
  echo "FAIL: no 4-worker virtual_speedup entries in $json"
  fail=1
fi
for s in $speedups; do
  if ! awk -v s="$s" 'BEGIN { exit !(s > 1.5) }'; then
    echo "FAIL: virtual_speedup $s at 4 workers is <= 1.5 in $json"
    fail=1
  fi
done

if grep -q '"deterministic": false' "$json"; then
  echo "FAIL: non-deterministic parallel measurement recorded in $json"
  fail=1
fi

max_rows=$(grep -o '"total_rows": [0-9]*' "$json" | awk '{print $2}' |
  sort -n | tail -1)
if [ "${max_rows:-0}" -lt 10000000 ]; then
  echo "FAIL: scale-factor curve tops out at ${max_rows:-0} rows (< 10M)"
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "OK: benchmark gates hold ($json)"
fi
exit "$fail"
