// Tests for the parallel workload runner's determinism contract
// (docs/parallelism.md): measurements are bit-identical for every worker
// count and across repeated runs with the same seed, and the thread pool
// dispatches every item exactly once.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "benchkit/parallel_runner.h"
#include "benchkit/schedule_sim.h"
#include "engine/database.h"
#include "engine/exec_batch.h"
#include "lqo/bao.h"
#include "query/job_workload.h"
#include "util/thread_pool.h"

namespace lqolab::benchkit {
namespace {

using engine::Database;
using query::Query;

TEST(ThreadPoolTest, ParallelForRunsEveryItemExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int32_t>> hits(257);
  pool.ParallelFor(static_cast<int64_t>(hits.size()),
                   [&](int32_t worker, int64_t item) {
                     EXPECT_GE(worker, 0);
                     EXPECT_LT(worker, 4);
                     ++hits[static_cast<size_t>(item)];
                   });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossJobsAndEmptyJob) {
  util::ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, [&](int32_t, int64_t) { sum += 1000; });
  EXPECT_EQ(sum.load(), 0);
  for (int round = 0; round < 3; ++round) {
    pool.ParallelFor(10, [&](int32_t, int64_t item) { sum += item; });
  }
  EXPECT_EQ(sum.load(), 3 * 45);
}

TEST(ThreadPoolTest, DefaultParallelismIsPositive) {
  EXPECT_GE(util::ThreadPool::DefaultParallelism(), 1);
}

// Forces a steal deterministically: worker 0's block is {0, 1} and item 0
// blocks until the three other items completed. Item 1 can therefore only
// run if worker 1 steals it from the back of worker 0's block after
// draining its own block {2, 3}; without stealing this test deadlocks (and
// the gtest timeout fails it) instead of passing vacuously.
TEST(ThreadPoolTest, IdleWorkerStealsFromBlockedWorkersBlock) {
  util::ThreadPool pool(2);
  const int64_t steals_before = pool.steals();
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  pool.ParallelFor(4, [&](int32_t, int64_t item) {
    std::unique_lock<std::mutex> lock(mu);
    if (item == 0) {
      cv.wait(lock, [&] { return done == 3; });
    }
    ++done;
    cv.notify_all();
  });
  EXPECT_EQ(done, 4);
  EXPECT_GE(pool.steals() - steals_before, 1);
}

TEST(ScheduleSimTest, SerialMakespanIsTotalCost) {
  const std::vector<util::VirtualNanos> costs = {5, 10, 15, 20};
  const ScheduleResult sim = SimulateWorkStealing(costs, 1);
  EXPECT_EQ(sim.makespan_ns, 50);
  EXPECT_EQ(sim.steals, 0);
  EXPECT_DOUBLE_EQ(sim.speedup(), 1.0);
}

TEST(ScheduleSimTest, BalancedTasksScaleNearLinearly) {
  const std::vector<util::VirtualNanos> costs(64, 100);
  const ScheduleResult sim = SimulateWorkStealing(costs, 4);
  EXPECT_EQ(sim.makespan_ns, 1600);  // 64 * 100 / 4, perfectly balanced
  EXPECT_DOUBLE_EQ(sim.speedup(), 4.0);
}

TEST(ScheduleSimTest, StealingRebalancesSkewedBlocks) {
  // All heavy tasks land in worker 0's static block; without stealing the
  // makespan would be 8 * 1000 = 8000. The thief drains its trivial block
  // and then steals, so the simulated pool splits the heavy tasks evenly.
  std::vector<util::VirtualNanos> costs(16, 1);
  for (size_t i = 0; i < 8; ++i) costs[i] = 1000;
  const ScheduleResult sim = SimulateWorkStealing(costs, 2);
  EXPECT_GT(sim.steals, 0);
  EXPECT_LT(sim.makespan_ns, 8000);
  EXPECT_GE(sim.makespan_ns, 4000);  // half the heavy work is a lower bound
}

TEST(ScheduleSimTest, DeterministicAndBoundedByLongestTask) {
  std::vector<util::VirtualNanos> costs;
  for (int i = 0; i < 37; ++i) costs.push_back(((i * 7919) % 97) + 1);
  const ScheduleResult a = SimulateWorkStealing(costs, 4);
  const ScheduleResult b = SimulateWorkStealing(costs, 4);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.steals, b.steals);
  util::VirtualNanos total = 0, longest = 0;
  for (util::VirtualNanos cost : costs) {
    total += cost;
    longest = std::max(longest, cost);
  }
  EXPECT_GE(a.makespan_ns, std::max(longest, total / 4));
  EXPECT_LE(a.makespan_ns, total);
  util::VirtualNanos busy = 0;
  for (util::VirtualNanos w : a.worker_busy_ns) busy += w;
  EXPECT_EQ(busy, total);  // every task executed exactly once
}

TEST(ScheduleSimTest, MoreWorkersThanTasks) {
  const std::vector<util::VirtualNanos> costs = {10, 20};
  const ScheduleResult sim = SimulateWorkStealing(costs, 8);
  EXPECT_EQ(sim.makespan_ns, 20);
  const ScheduleResult empty = SimulateWorkStealing({}, 4);
  EXPECT_EQ(empty.makespan_ns, 0);
  EXPECT_DOUBLE_EQ(empty.speedup(), 1.0);
}

class ParallelRunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    db_ = Database::CreateImdb(options).release();
    workload_ =
        new std::vector<Query>(query::BuildJobLiteWorkload(db_->schema()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
    db_ = nullptr;
    workload_ = nullptr;
  }

  static void ExpectSameMeasurements(
      const std::vector<QueryMeasurement>& a,
      const std::vector<QueryMeasurement>& b, const char* label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    for (size_t i = 0; i < a.size(); ++i) {
      SCOPED_TRACE(std::string(label) + " query " + a[i].query_id);
      EXPECT_EQ(a[i].query_id, b[i].query_id);
      EXPECT_EQ(a[i].joins, b[i].joins);
      EXPECT_EQ(a[i].inference_ns, b[i].inference_ns);
      EXPECT_EQ(a[i].planning_ns, b[i].planning_ns);
      EXPECT_EQ(a[i].execution_ns, b[i].execution_ns);
      EXPECT_EQ(a[i].timed_out, b[i].timed_out);
      EXPECT_EQ(a[i].result_rows, b[i].result_rows);
      EXPECT_EQ(a[i].run_execution_ns, b[i].run_execution_ns);
      EXPECT_EQ(a[i].node_rows, b[i].node_rows);
    }
  }

  static Database* db_;
  static std::vector<Query>* workload_;
};

Database* ParallelRunnerTest::db_ = nullptr;
std::vector<Query>* ParallelRunnerTest::workload_ = nullptr;

TEST_F(ParallelRunnerTest, BitIdenticalAcrossWorkerCounts) {
  std::vector<Query> queries(workload_->begin(), workload_->begin() + 16);
  Protocol protocol;
  RunnerOptions serial;
  serial.parallelism = 1;
  const WorkloadMeasurement baseline =
      MeasureWorkload(db_, nullptr, queries, protocol, serial);
  ASSERT_EQ(baseline.queries.size(), queries.size());
  EXPECT_EQ(baseline.method, "pglite");
  for (const int32_t parallelism : {2, 4, 7}) {
    RunnerOptions options;
    options.parallelism = parallelism;
    const WorkloadMeasurement result =
        MeasureWorkload(db_, nullptr, queries, protocol, options);
    ExpectSameMeasurements(baseline.queries, result.queries,
                           parallelism == 2   ? "N=2"
                           : parallelism == 4 ? "N=4"
                                              : "N=7");
  }
}

TEST_F(ParallelRunnerTest, RepeatedRunsWithSameSeedMatch) {
  std::vector<Query> queries(workload_->begin(), workload_->begin() + 8);
  Protocol protocol;
  RunnerOptions options;
  options.parallelism = 3;
  options.seed = 7;
  const auto first = MeasureWorkload(db_, nullptr, queries, protocol, options);
  const auto second = MeasureWorkload(db_, nullptr, queries, protocol, options);
  ExpectSameMeasurements(first.queries, second.queries, "repeat");
}

TEST_F(ParallelRunnerTest, SeedChangesExecutionNoise) {
  std::vector<Query> queries(workload_->begin(), workload_->begin() + 4);
  Protocol protocol;
  RunnerOptions a;
  a.parallelism = 2;
  a.seed = 1;
  RunnerOptions b = a;
  b.seed = 2;
  const auto first = MeasureWorkload(db_, nullptr, queries, protocol, a);
  const auto second = MeasureWorkload(db_, nullptr, queries, protocol, b);
  // The modeled latency noise derives from the seed; at least one run of
  // one query must differ between two different seeds.
  bool any_difference = false;
  for (size_t i = 0; i < first.queries.size(); ++i) {
    any_difference |=
        first.queries[i].run_execution_ns != second.queries[i].run_execution_ns;
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(ParallelRunnerTest, LqoPathBitIdenticalAcrossWorkerCounts) {
  std::vector<Query> train(workload_->begin(), workload_->begin() + 6);
  std::vector<Query> test(workload_->begin() + 6, workload_->begin() + 14);
  lqo::BaoOptimizer::Options bao_options;
  bao_options.epochs = 1;
  bao_options.train_epochs = 2;
  lqo::BaoOptimizer bao(bao_options);
  bao.Train(train, db_);
  Protocol protocol;
  std::vector<WorkloadMeasurement> results;
  for (const int32_t parallelism : {1, 4}) {
    RunnerOptions options;
    options.parallelism = parallelism;
    results.push_back(MeasureWorkload(db_, &bao, test, protocol, options));
    EXPECT_EQ(results.back().method, "bao");
  }
  ExpectSameMeasurements(results[0].queries, results[1].queries, "bao 1 vs 4");
  // Bao reports its per-hint-set plannings inside planning time.
  for (const auto& m : results[0].queries) EXPECT_GT(m.planning_ns, 0);
}

// Stress case: many more items than workers, so every worker replica is
// reused for many queries in scheduler-determined order. Run under
// -DLQOLAB_SANITIZE=thread this doubles as the data-race check.
TEST_F(ParallelRunnerTest, StressManyQueriesFewWorkers) {
  std::vector<Query> queries;
  for (int round = 0; round < 4; ++round) {
    queries.insert(queries.end(), workload_->begin(), workload_->begin() + 12);
  }
  Protocol protocol;
  protocol.runs = 2;
  protocol.take = 1;
  RunnerOptions serial;
  serial.parallelism = 1;
  RunnerOptions wide;
  wide.parallelism = 3;
  const auto a = MeasureWorkload(db_, nullptr, queries, protocol, serial);
  const auto b = MeasureWorkload(db_, nullptr, queries, protocol, wide);
  ExpectSameMeasurements(a.queries, b.queries, "stress");
  // Repeated copies of a query replay the same canonical state, so the
  // duplicate measurements must match each other too.
  ExpectSameMeasurements(
      std::vector<QueryMeasurement>(b.queries.begin(), b.queries.begin() + 12),
      std::vector<QueryMeasurement>(b.queries.begin() + 12,
                                    b.queries.begin() + 24),
      "stress duplicate rounds");
}

TEST_F(ParallelRunnerTest, RunnerReuseAcrossWorkloads) {
  std::vector<Query> queries(workload_->begin(), workload_->begin() + 6);
  Protocol protocol;
  RunnerOptions options;
  options.parallelism = 2;
  ParallelRunner runner(db_, options);
  EXPECT_EQ(runner.parallelism(), 2);
  EXPECT_EQ(runner.parent(), db_);
  const auto first = MeasureWorkload(&runner, nullptr, queries, protocol);
  const auto second = MeasureWorkload(&runner, nullptr, queries, protocol);
  ExpectSameMeasurements(first.queries, second.queries, "runner reuse");
}

TEST_F(ParallelRunnerTest, CloneSharesStorageAndPlansIdentically) {
  const auto replica = db_->CloneContextForWorker();
  // Tables and indexes are shared, not copied.
  EXPECT_EQ(replica->context().tables()[0].get(), db_->context().tables()[0].get());
  const Query& q = (*workload_)[10];
  const auto a = db_->PlanQuery(q);
  const auto b = replica->PlanQuery(q);
  EXPECT_EQ(a.planning_ns, b.planning_ns);
  EXPECT_DOUBLE_EQ(a.estimated_cost, b.estimated_cost);
  EXPECT_EQ(a.plan.ToString(q), b.plan.ToString(q));
}

TEST_F(ParallelRunnerTest, TrainingBatchesDeterministicAcrossWorkerCounts) {
  std::vector<Query> train(workload_->begin(), workload_->begin() + 6);
  std::vector<Query> test(workload_->begin() + 6, workload_->begin() + 10);
  // Two Bao instances trained with the replay batch path at different
  // worker counts must land on identical models (same measurements on the
  // same test set) — the training trajectory may not depend on scheduling.
  std::vector<WorkloadMeasurement> results;
  for (const int32_t parallelism : {1, 3}) {
    lqo::BaoOptimizer::Options options;
    options.epochs = 2;
    options.train_epochs = 2;
    options.parallelism = parallelism;
    lqo::BaoOptimizer bao(options);
    bao.Train(train, db_);
    Protocol protocol;
    RunnerOptions measure;
    measure.parallelism = 1;
    results.push_back(MeasureWorkload(db_, &bao, test, protocol, measure));
  }
  ExpectSameMeasurements(results[0].queries, results[1].queries,
                         "bao trained at 1 vs 3 workers");
}

TEST_F(ParallelRunnerTest, BatchExecutorReplaysWarmupTrajectory) {
  const Query& q = (*workload_)[0];
  const auto planned = db_->PlanQuery(q);
  engine::BatchExecutor batch(db_, 42, 2);
  std::vector<engine::PlanExec> tasks(3);
  for (auto& task : tasks) {
    task.query = &q;
    task.plan = &planned.plan;
  }
  // One batch with three executions of the same query: run_index 0, 1, 2.
  const auto runs = batch.Execute(tasks);
  ASSERT_EQ(runs.size(), 3u);
  // First execution is cold, later ones warm: strictly cheaper.
  EXPECT_GT(runs[0].execution_ns, runs[1].execution_ns);
  // A second batch executor with the same seed replays the same trajectory.
  engine::BatchExecutor replay(db_, 42, 5);
  const auto again = replay.Execute(tasks);
  ASSERT_EQ(again.size(), 3u);
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].execution_ns, again[i].execution_ns) << i;
    EXPECT_EQ(runs[i].result_rows, again[i].result_rows) << i;
  }
}

}  // namespace
}  // namespace lqolab::benchkit
