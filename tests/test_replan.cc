// Mid-query adaptive re-optimization (docs/overload.md): the differential
// contract (replans may only cost time, never change answers), the replan
// cap, spooled-intermediate reuse making abandoned attempts affordable,
// cardinality-pin seeding (QueryRun::replan_pins), and the serve path's
// plan feedback that lets repeat arrivals run the corrected plan straight
// through.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "faultlib/faultlib.h"
#include "obs/metrics.h"
#include "query/job_workload.h"
#include "serve/query_server.h"
#include "util/rng.h"

namespace lqolab {
namespace {

using serve::QueryServer;
using serve::RouteMode;
using serve::ServedQuery;
using serve::ServerOptions;

constexpr uint64_t kSeed = 42;

/// One small database shared by every test in this binary. Tests that need
/// a different DbConfig set it on an isolated worker replica, never here.
engine::Database* SharedDb() {
  static std::unique_ptr<engine::Database> db = [] {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = kSeed;
    return engine::Database::CreateImdb(options);
  }();
  return db.get();
}

const std::vector<query::Query>& Workload() {
  static const std::vector<query::Query> workload =
      query::BuildJobLiteWorkload(SharedDb()->schema());
  return workload;
}

/// The estimator-poison schedule of bench/overload_soak.cpp: catastrophic
/// 1e-4 underestimates on a seeded quarter of the (query, subplan) key
/// space, a pure function of the key — identical for every interleaving.
faultlib::FaultPlan PoisonPlan() {
  faultlib::FaultPlan plan;
  plan.name = "estimate_poison";
  plan.seed = util::MixSeed(kSeed, 0x9e150'7150ull);
  faultlib::FaultRule rule;
  rule.point = "stats.estimate";
  rule.kind = faultlib::FaultKind::kPoison;
  rule.probability = 0.25;
  rule.poison_scale = 1e-4;
  plan.Add(rule);
  return plan;
}

engine::DbConfig AdaptiveConfig(const engine::DbConfig& base) {
  engine::DbConfig adaptive = base;
  adaptive.adaptive_replan = true;
  adaptive.replan_qerror_threshold = 4.0;
  adaptive.replan_min_rows = 1;
  // The Small-profile tables make divergence ubiquitous under this poison
  // schedule; a roomier cap lets a useful fraction of the workload converge
  // below it (the "cleanly corrected" queries some tests need).
  adaptive.replan_max_per_query = 4;
  return adaptive;
}

/// One adaptive differential sample: the poisoned plan and the adaptive run
/// that executed it, plus the clean oracle answer to compare against.
struct AdaptiveSample {
  engine::QueryRun clean;
  optimizer::PhysicalPlan poisoned_plan;
  engine::QueryRun adaptive;
};

AdaptiveSample RunAdaptive(const query::Query& q,
                           faultlib::FaultInjector* poison) {
  AdaptiveSample sample;
  {
    const auto replica = SharedDb()->CloneContextForWorker();
    replica->BeginQueryReplay(kSeed, q);
    const auto planned = replica->PlanQuery(q);
    replica->BeginQueryReplay(kSeed, q);
    sample.clean = replica->ExecutePlan(q, planned.plan);
  }
  faultlib::ScopedFaultInjection inject(poison);
  const auto replica = SharedDb()->CloneContextForWorker();
  replica->SetConfig(AdaptiveConfig(replica->config()));
  replica->BeginQueryReplay(kSeed, q);
  sample.poisoned_plan = replica->PlanQuery(q).plan;
  replica->BeginQueryReplay(kSeed, q);
  sample.adaptive = replica->ExecutePlanAdaptive(q, sample.poisoned_plan);
  return sample;
}

TEST(AdaptiveReplan, PassThroughWhenDisabled) {
  const query::Query& q = Workload()[0];
  const auto replica = SharedDb()->CloneContextForWorker();
  ASSERT_FALSE(replica->config().adaptive_replan);
  const auto planned = replica->PlanQuery(q);

  replica->BeginQueryReplay(kSeed, q);
  const engine::QueryRun plain = replica->ExecutePlan(q, planned.plan);
  replica->BeginQueryReplay(kSeed, q);
  const engine::QueryRun adaptive =
      replica->ExecutePlanAdaptive(q, planned.plan);

  EXPECT_EQ(adaptive.result_rows, plain.result_rows);
  EXPECT_EQ(adaptive.execution_ns, plain.execution_ns);
  EXPECT_EQ(adaptive.replans, 0);
  EXPECT_EQ(adaptive.replan_wasted_ns, 0);
  EXPECT_EQ(adaptive.replanned_plan, nullptr);
  EXPECT_EQ(adaptive.replan_pins, nullptr);
}

// The acceptance contract: every JOB-lite query under the poisoned
// estimator returns byte-identical results whether the degraded plan runs
// straight through or adaptively — replans may only cost time. Also pins
// down the replan cap and the replan_* reporting fields.
TEST(AdaptiveReplan, DifferentialByteIdenticalUnderPoison) {
  faultlib::FaultInjector poison(PoisonPlan());
  const int32_t cap = AdaptiveConfig(SharedDb()->config()).replan_max_per_query;
  int64_t total_replans = 0;
  for (const query::Query& q : Workload()) {
    const AdaptiveSample sample = RunAdaptive(q, &poison);

    // The poisoned plan straight through (no monitor) for the same replay.
    engine::QueryRun straight;
    {
      faultlib::ScopedFaultInjection inject(&poison);
      const auto replica = SharedDb()->CloneContextForWorker();
      replica->BeginQueryReplay(kSeed, q);
      straight = replica->ExecutePlan(q, sample.poisoned_plan);
    }

    ASSERT_TRUE(sample.clean.status.ok()) << q.id;
    ASSERT_TRUE(straight.status.ok()) << q.id;
    ASSERT_TRUE(sample.adaptive.status.ok()) << q.id;
    EXPECT_EQ(straight.result_rows, sample.clean.result_rows) << q.id;
    EXPECT_EQ(sample.adaptive.result_rows, sample.clean.result_rows) << q.id;

    EXPECT_LE(sample.adaptive.replans, cap) << q.id;
    total_replans += sample.adaptive.replans;
    if (sample.adaptive.replans > 0) {
      EXPECT_NE(sample.adaptive.replanned_plan, nullptr) << q.id;
      EXPECT_NE(sample.adaptive.replan_pins, nullptr) << q.id;
      EXPECT_GT(sample.adaptive.replan_wasted_ns, 0) << q.id;
      EXPECT_GT(sample.adaptive.replan_planning_ns, 0) << q.id;
    } else {
      EXPECT_EQ(sample.adaptive.replanned_plan, nullptr) << q.id;
      EXPECT_EQ(sample.adaptive.replan_pins, nullptr) << q.id;
    }
  }
  // The schedule must actually exercise the machinery.
  EXPECT_GT(total_replans, 0);
}

// Spooled-intermediate reuse: the final adaptive attempt re-reads join
// results fully paid for by abandoned attempts instead of recomputing
// their subtrees, so it never costs more than executing the corrected plan
// from scratch — and across the workload it costs strictly less.
TEST(AdaptiveReplan, SpoolReuseMakesFinalAttemptCheaper) {
  faultlib::FaultInjector poison(PoisonPlan());
  int64_t replanning_queries = 0;
  double final_attempt_ns = 0.0;
  double from_scratch_ns = 0.0;
  for (const query::Query& q : Workload()) {
    const AdaptiveSample sample = RunAdaptive(q, &poison);
    if (sample.adaptive.replans == 0) continue;
    ++replanning_queries;

    // The corrected plan from scratch, same replay state and fault plan.
    engine::QueryRun scratch;
    {
      faultlib::ScopedFaultInjection inject(&poison);
      const auto replica = SharedDb()->CloneContextForWorker();
      replica->BeginQueryReplay(kSeed, q);
      scratch = replica->ExecutePlan(q, *sample.adaptive.replanned_plan);
    }
    ASSERT_TRUE(scratch.status.ok()) << q.id;
    EXPECT_EQ(scratch.result_rows, sample.adaptive.result_rows) << q.id;

    const auto final_attempt = sample.adaptive.execution_ns -
                               sample.adaptive.replan_wasted_ns -
                               sample.adaptive.replan_planning_ns;
    final_attempt_ns += static_cast<double>(final_attempt);
    from_scratch_ns += static_cast<double>(scratch.execution_ns);
  }
  ASSERT_GT(replanning_queries, 0);
  EXPECT_LT(final_attempt_ns, from_scratch_ns);
}

/// First workload query whose adaptive run replanned but did not hit the
/// cap (so its final attempt ran monitor-armed and clean — the corrected
/// plan provably holds under this poison schedule).
const query::Query* FindCleanlyCorrectedQuery(faultlib::FaultInjector* poison,
                                              AdaptiveSample* out) {
  const int32_t cap = AdaptiveConfig(SharedDb()->config()).replan_max_per_query;
  for (const query::Query& q : Workload()) {
    AdaptiveSample sample = RunAdaptive(q, poison);
    if (sample.adaptive.replans > 0 && sample.adaptive.replans < cap) {
      *out = std::move(sample);
      return &q;
    }
  }
  return nullptr;
}

// Seeding the accumulated pins back into a fresh adaptive run of the
// corrected plan suppresses every re-trigger: the run goes straight
// through, cheaper than the run that had to discover the truths.
TEST(AdaptiveReplan, SeededPinsSuppressReplans) {
  faultlib::FaultInjector poison(PoisonPlan());
  AdaptiveSample sample;
  const query::Query* q = FindCleanlyCorrectedQuery(&poison, &sample);
  ASSERT_NE(q, nullptr) << "poison schedule produced no cleanly corrected "
                           "query; retune the test";

  faultlib::ScopedFaultInjection inject(&poison);
  const auto replica = SharedDb()->CloneContextForWorker();
  replica->SetConfig(AdaptiveConfig(replica->config()));
  replica->BeginQueryReplay(kSeed, *q);
  const engine::QueryRun corrected = replica->ExecutePlanAdaptive(
      *q, *sample.adaptive.replanned_plan, /*planning_ns=*/0, /*timeout_ns=*/0,
      /*deadline=*/nullptr, sample.adaptive.replan_pins.get());

  ASSERT_TRUE(corrected.status.ok());
  EXPECT_EQ(corrected.replans, 0);
  EXPECT_EQ(corrected.result_rows, sample.adaptive.result_rows);
  EXPECT_LT(corrected.execution_ns, sample.adaptive.execution_ns);
}

// The serve path's plan feedback: a closed-loop execution that replanned
// writes the corrected plan and its pins back into the plan cache, so the
// next arrival of the same query is a cache hit that executes straight
// through — same answer, zero replans.
TEST(ServeFeedback, ClosedLoopCachesCorrectedPlan) {
  faultlib::FaultInjector poison(PoisonPlan());
  AdaptiveSample sample;
  const query::Query* q = FindCleanlyCorrectedQuery(&poison, &sample);
  ASSERT_NE(q, nullptr);

  engine::Database* db = SharedDb();
  const engine::DbConfig base_config = db->config();
  db->SetConfig(AdaptiveConfig(base_config));
  faultlib::ScopedFaultInjection inject(&poison);
  {
    ServerOptions options;
    options.workers = 1;
    options.route = RouteMode::kPglite;
    options.deterministic_replay = true;
    options.seed = kSeed;
    QueryServer server(db, options);

    const ServedQuery first = server.Submit(*q).get();
    ASSERT_TRUE(first.status.ok()) << first.status.ToString();
    EXPECT_EQ(first.result_rows, sample.clean.result_rows);
    EXPECT_GT(first.replans, 0);

    const ServedQuery second = server.Submit(*q).get();
    ASSERT_TRUE(second.status.ok()) << second.status.ToString();
    EXPECT_EQ(second.result_rows, sample.clean.result_rows);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(second.replans, 0);

    server.Shutdown();
    const obs::MetricsRegistry metrics = server.SnapshotMetrics();
    EXPECT_GE(metrics.Get(obs::Counter::kServePlanFeedback), 1);
    EXPECT_GE(metrics.Get(obs::Counter::kServeReplannedQueries), 1);
  }
  db->SetConfig(base_config);
}

}  // namespace
}  // namespace lqolab
