// Tests for the benchmarking framework: split samplers (Fig. 3) and the
// measurement protocol (§7.3).

#include <set>

#include <gtest/gtest.h>

#include "benchkit/measurement.h"
#include "benchkit/splits.h"
#include "engine/database.h"
#include "lqo/bao.h"
#include "query/job_workload.h"

namespace lqolab::benchkit {
namespace {

using engine::Database;
using query::Query;

class SplitTest : public ::testing::Test {
 protected:
  SplitTest()
      : schema_(catalog::BuildImdbSchema()),
        workload_(query::BuildJobLiteWorkload(schema_)) {}
  catalog::Schema schema_;
  std::vector<Query> workload_;
};

TEST_F(SplitTest, DisjointAndCovering) {
  for (SplitKind kind : {SplitKind::kLeaveOneOut, SplitKind::kRandom,
                         SplitKind::kBaseQuery}) {
    const Split split = SampleSplit(workload_, kind, 0.2, 1);
    std::set<int32_t> all;
    for (int32_t i : split.train_indices) all.insert(i);
    for (int32_t i : split.test_indices) {
      EXPECT_TRUE(all.insert(i).second) << SplitKindName(kind);
    }
    EXPECT_EQ(all.size(), workload_.size()) << SplitKindName(kind);
  }
}

TEST_F(SplitTest, LeaveOneOutExactlyOnePerFamily) {
  const Split split =
      SampleSplit(workload_, SplitKind::kLeaveOneOut, 0.2, 3);
  std::map<int32_t, int32_t> per_family;
  for (int32_t i : split.test_indices) {
    ++per_family[workload_[static_cast<size_t>(i)].template_id];
  }
  EXPECT_EQ(per_family.size(),
            static_cast<size_t>(query::kJobTemplateCount));
  for (const auto& [family, count] : per_family) {
    EXPECT_EQ(count, 1) << family;
  }
}

TEST_F(SplitTest, RandomSplitHoldsOutTwentyPercent) {
  const Split split = SampleSplit(workload_, SplitKind::kRandom, 0.2, 5);
  EXPECT_NEAR(static_cast<double>(split.test_indices.size()) /
                  static_cast<double>(workload_.size()),
              0.2, 0.02);
}

TEST_F(SplitTest, BaseQueryKeepsFamiliesIntact) {
  const Split split = SampleSplit(workload_, SplitKind::kBaseQuery, 0.2, 7);
  std::set<int32_t> test_families;
  for (int32_t i : split.test_indices) {
    test_families.insert(workload_[static_cast<size_t>(i)].template_id);
  }
  // No family straddles the boundary.
  for (int32_t i : split.train_indices) {
    EXPECT_EQ(test_families.count(
                  workload_[static_cast<size_t>(i)].template_id),
              0u);
  }
  EXPECT_NEAR(static_cast<double>(split.test_indices.size()) /
                  static_cast<double>(workload_.size()),
              0.2, 0.08);
}

TEST_F(SplitTest, DeterministicBySeed) {
  const Split a = SampleSplit(workload_, SplitKind::kRandom, 0.2, 9);
  const Split b = SampleSplit(workload_, SplitKind::kRandom, 0.2, 9);
  const Split c = SampleSplit(workload_, SplitKind::kRandom, 0.2, 10);
  EXPECT_EQ(a.test_indices, b.test_indices);
  EXPECT_NE(a.test_indices, c.test_indices);
}

TEST_F(SplitTest, PaperSplitsGrid) {
  const auto splits = PaperSplits(workload_);
  ASSERT_EQ(splits.size(), 9u);
  std::set<std::string> names;
  for (const auto& split : splits) names.insert(split.name);
  EXPECT_EQ(names.size(), 9u);
  EXPECT_TRUE(names.count("leave_one_out_1"));
  EXPECT_TRUE(names.count("base_query_3"));
}

TEST_F(SplitTest, SelectQueriesMaterializes) {
  const Split split = SampleSplit(workload_, SplitKind::kRandom, 0.2, 2);
  const auto test = SelectQueries(workload_, split.test_indices);
  ASSERT_EQ(test.size(), split.test_indices.size());
  EXPECT_EQ(test[0].id,
            workload_[static_cast<size_t>(split.test_indices[0])].id);
}

class MeasurementTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    db_ = Database::CreateImdb(options).release();
    workload_ =
        new std::vector<Query>(query::BuildJobLiteWorkload(db_->schema()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
    db_ = nullptr;
    workload_ = nullptr;
  }
  static Database* db_;
  static std::vector<Query>* workload_;
};

Database* MeasurementTest::db_ = nullptr;
std::vector<Query>* MeasurementTest::workload_ = nullptr;

TEST_F(MeasurementTest, ProtocolRecordsAllRuns) {
  Protocol protocol;
  protocol.runs = 5;
  protocol.take = 2;
  db_->DropCaches();
  const QueryMeasurement m = MeasureNative(db_, (*workload_)[0], protocol);
  ASSERT_EQ(m.run_execution_ns.size(), 5u);
  EXPECT_EQ(m.execution_ns, m.run_execution_ns[2]);
  EXPECT_GT(m.planning_ns, 0);
  EXPECT_EQ(m.joins, (*workload_)[0].join_count());
}

TEST_F(MeasurementTest, ThirdRunNotSlowerThanFirstCold) {
  db_->DropCaches();
  Protocol protocol;
  const QueryMeasurement m = MeasureNative(db_, (*workload_)[7], protocol);
  EXPECT_LT(m.run_execution_ns[2], m.run_execution_ns[0]);
}

TEST_F(MeasurementTest, WorkloadAggregates) {
  Protocol protocol;
  std::vector<Query> queries((*workload_).begin(), (*workload_).begin() + 5);
  const WorkloadMeasurement wm =
      MeasureWorkloadNative(db_, queries, protocol);
  ASSERT_EQ(wm.queries.size(), 5u);
  EXPECT_EQ(wm.method, "pglite");
  util::VirtualNanos expected_exec = 0;
  for (const auto& q : wm.queries) expected_exec += q.execution_ns;
  EXPECT_EQ(wm.total_execution_ns(), expected_exec);
  EXPECT_EQ(wm.total_end_to_end_ns(),
            wm.total_inference_ns() + wm.total_planning_ns() +
                wm.total_execution_ns());
  EXPECT_EQ(wm.timeout_count(), 0);
}

TEST_F(MeasurementTest, LqoMeasurementCarriesInferenceTime) {
  lqo::BaoOptimizer::Options options;
  options.epochs = 1;
  options.train_epochs = 2;
  lqo::BaoOptimizer bao(options);
  std::vector<Query> train((*workload_).begin(), (*workload_).begin() + 6);
  bao.Train(train, db_);
  Protocol protocol;
  const QueryMeasurement m = MeasureLqo(db_, &bao, (*workload_)[20], protocol);
  // Bao reports inside planning time.
  EXPECT_GT(m.planning_ns, 0);
  EXPECT_EQ(m.run_execution_ns.size(), 3u);
}

TEST_F(MeasurementTest, ProtocolValidationAborts) {
  // Regression: Protocol{runs, take} used to accept a negative take and
  // silently measure nothing. All three invariants are CHECKed at the
  // shared run loop, so every measurement entry point trips them.
  Protocol negative_take;
  negative_take.take = -1;
  EXPECT_DEATH(MeasureNative(db_, (*workload_)[0], negative_take), "take");
  Protocol take_out_of_range;
  take_out_of_range.runs = 3;
  take_out_of_range.take = 3;
  EXPECT_DEATH(MeasureNative(db_, (*workload_)[0], take_out_of_range),
               "take");
  Protocol no_runs;
  no_runs.runs = 0;
  EXPECT_DEATH(MeasureNative(db_, (*workload_)[0], no_runs), "runs");
}

TEST_F(MeasurementTest, Ci95FromExtraRuns) {
  Protocol protocol;
  protocol.runs = 6;
  protocol.take = 2;
  std::vector<Query> queries((*workload_).begin(), (*workload_).begin() + 4);
  const WorkloadMeasurement wm =
      MeasureWorkloadNative(db_, queries, protocol);
  EXPECT_GT(wm.execution_ci95_ns(), 0.0);
}

}  // namespace
}  // namespace lqolab::benchkit
