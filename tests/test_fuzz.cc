// Differential plan-correctness fuzzing (docs/fuzzing.md). The main test
// drives ~500 random queries through every oracle check — exhaustive plan
// enumeration, cross-plan execution, estimator invariants, plan-cache and
// hint round trips — and demands zero discrepancies. The committed corpus
// under tests/fuzz_corpus/ replays past findings and hand-picked shapes.
//
// Replay one reproducer directly:
//   ./build/tests/test_fuzz --replay tests/fuzz_corpus/<name>.repro

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/imdb_schema.h"
#include "engine/database.h"
#include "exec/oracle.h"
#include "fuzz/corpus.h"
#include "fuzz/differential.h"
#include "fuzz/fuzzer.h"
#include "fuzz/query_generator.h"
#include "lqo/bao.h"
#include "lqo/native_passthrough.h"

namespace lqolab {
namespace {

engine::Database* SharedDb() {
  static std::unique_ptr<engine::Database> db = [] {
    engine::Database::Options options;
    // Quarter of the Small profile: the differential oracle's execution
    // check is linear in table size, and a smaller database keeps the full
    // 500-query run inside the fuzz label's time budget while exercising
    // exactly the same code paths.
    options.profile = datagen::ScaleProfile::Small().Scaled(0.25);
    options.seed = 42;
    return engine::Database::CreateImdb(options);
  }();
  return db.get();
}

fuzz::GeneratorOptions TestGeneratorOptions() {
  return fuzz::GeneratorOptions{};
}

std::string Serialize(const query::Query& q) {
  return fuzz::SerializeQuery(q, SharedDb()->schema());
}

TEST(FuzzGenerator, DeterministicAcrossInstances) {
  fuzz::QueryGenerator a(&SharedDb()->context(), TestGeneratorOptions(), 7);
  fuzz::QueryGenerator b(&SharedDb()->context(), TestGeneratorOptions(), 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(Serialize(a.Next()), Serialize(b.Next())) << "query " << i;
  }
}

TEST(FuzzGenerator, SeedChangesTheStream) {
  fuzz::QueryGenerator a(&SharedDb()->context(), TestGeneratorOptions(), 7);
  fuzz::QueryGenerator b(&SharedDb()->context(), TestGeneratorOptions(), 8);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (Serialize(a.Next()) != Serialize(b.Next())) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST(FuzzGenerator, RespectsBoundsAndConnectivity) {
  fuzz::GeneratorOptions options = TestGeneratorOptions();
  fuzz::QueryGenerator gen(&SharedDb()->context(), options, 11);
  bool saw_clique = false;
  bool saw_large = false;
  for (int i = 0; i < 200; ++i) {
    const query::Query q = gen.Next();
    ASSERT_GE(q.relation_count(), 1);
    ASSERT_LE(q.relation_count(), options.max_relations);
    ASSERT_TRUE(q.relation_count() < 2 || q.IsConnected(q.FullMask())) << q.id;
    // Cliques have more edges than any tree shape.
    if (static_cast<int32_t>(q.edges.size()) > q.join_count()) {
      saw_clique = true;
    }
    if (q.relation_count() >= 9) saw_large = true;
  }
  EXPECT_TRUE(saw_clique);
  EXPECT_TRUE(saw_large);
}

TEST(FuzzCorpus, GeneratedQueriesRoundTrip) {
  fuzz::QueryGenerator gen(&SharedDb()->context(), TestGeneratorOptions(), 3);
  for (int i = 0; i < 30; ++i) {
    const query::Query q = gen.Next();
    const std::string text = Serialize(q);
    query::Query back;
    std::string error;
    ASSERT_TRUE(fuzz::ParseQuery(text, SharedDb()->schema(), &back, &error))
        << error << "\n" << text;
    EXPECT_EQ(exec::QueryFingerprint(back), exec::QueryFingerprint(q));
    EXPECT_EQ(Serialize(back), text);
  }
}

TEST(FuzzCorpus, RejectsMalformedInput) {
  const catalog::Schema& schema = SharedDb()->schema();
  query::Query q;
  std::string error;
  EXPECT_FALSE(fuzz::ParseQuery("", schema, &q, &error));
  EXPECT_FALSE(fuzz::ParseQuery("relation not_a_table x\n", schema, &q,
                                &error));
  EXPECT_FALSE(fuzz::ParseQuery(
      "relation title t\nrelation title t\n", schema, &q, &error))
      << "duplicate alias must be rejected";
  EXPECT_FALSE(fuzz::ParseQuery(
      "relation title t\npred t.production_year range 3\n", schema, &q,
      &error))
      << "range needs lo and hi";
  EXPECT_FALSE(fuzz::ParseQuery(
      "relation title t\npred t.title eq 'unterminated\n", schema, &q,
      &error));
  EXPECT_FALSE(fuzz::ParseQuery(
      "relation title t\nfrobnicate t\n", schema, &q, &error));
  EXPECT_FALSE(fuzz::ParseQuery(
      "relation title t\npred t.nope eq 3\n", schema, &q, &error));
}

TEST(FuzzCorpus, ReproducerFilesRoundTrip) {
  fuzz::QueryGenerator gen(&SharedDb()->context(), TestGeneratorOptions(), 5);
  const query::Query q = gen.Next();
  const std::string dir = ::testing::TempDir() + "fuzz_repro_roundtrip";
  const std::string path =
      fuzz::WriteReproducer(dir, q, SharedDb()->schema(), "note line");
  ASSERT_FALSE(path.empty());
  query::Query back;
  std::string error;
  ASSERT_TRUE(fuzz::LoadReproducer(path, SharedDb()->schema(), &back, &error))
      << error;
  EXPECT_EQ(exec::QueryFingerprint(back), exec::QueryFingerprint(q));
  EXPECT_EQ(fuzz::ListCorpus(dir).size(), 1u);
}

TEST(FuzzShrink, ReducesToTheFailingCore) {
  // Synthetic failure: "any query touching movie_companies fails". Shrink
  // must strip the other relations and every predicate.
  using catalog::imdb::Table;
  query::Query q;
  q.id = "shrink_me";
  q.relations.push_back({Table::kTitle, "t"});
  q.relations.push_back({Table::kMovieCompanies, "mc"});
  q.relations.push_back({Table::kCompanyName, "cn"});
  q.edges.push_back({0, 0, 1, 1});
  q.edges.push_back({1, 2, 2, 0});
  query::Predicate pred;
  pred.alias = 0;
  pred.column = 3;
  pred.kind = query::Predicate::Kind::kNotNull;
  q.predicates.push_back(pred);

  const query::Query minimal =
      fuzz::Fuzzer::Shrink(q, [](const query::Query& candidate) {
        for (const auto& rel : candidate.relations) {
          if (rel.table == Table::kMovieCompanies) return true;
        }
        return false;
      });
  ASSERT_EQ(minimal.relation_count(), 1);
  EXPECT_EQ(minimal.relations[0].table, Table::kMovieCompanies);
  EXPECT_TRUE(minimal.predicates.empty());
  EXPECT_TRUE(minimal.edges.empty());
}

void ReportDiscrepancies(const std::vector<fuzz::Discrepancy>& discrepancies) {
  for (const fuzz::Discrepancy& d : discrepancies) {
    ADD_FAILURE() << d.check << ": " << d.detail;
  }
}

TEST(FuzzDifferential, FiveHundredQueriesZeroDiscrepancies) {
  fuzz::FuzzOptions options;
  options.seed = 42;
  options.num_queries = 500;
  options.corpus_dir = ::testing::TempDir() + "fuzz_found";
  fuzz::Fuzzer fuzzer(SharedDb(), options);
  lqo::NativePassthroughOptimizer passthrough;
  fuzzer.AddLqoArm(&passthrough);

  const fuzz::FuzzStats stats = fuzzer.Run();
  EXPECT_EQ(stats.queries, 500);
  ReportDiscrepancies(stats.discrepancies);
  EXPECT_TRUE(stats.reproducers.empty());
  // Every check family must actually have run.
  EXPECT_GT(stats.checks.cost_enumeration, 0);
  EXPECT_GT(stats.checks.execution, 0);
  EXPECT_GT(stats.checks.estimator, 0);
  EXPECT_GT(stats.checks.plan_cache, 0);
  EXPECT_GT(stats.checks.hint_roundtrip, 0);
  EXPECT_GT(stats.checks.corpus_roundtrip, 0);
  EXPECT_GT(stats.checks.engine_differential, 0);
  EXPECT_GT(stats.checks.shard_differential, 0);
  EXPECT_GT(stats.checks.sql_round_trip, 0);
  std::printf("fuzz: %lld queries, %lld checks, %lld plans executed, "
              "%lld timeouts in %lld ms\n",
              static_cast<long long>(stats.queries),
              static_cast<long long>(stats.checks.total()),
              static_cast<long long>(stats.plans_executed),
              static_cast<long long>(stats.timeouts),
              static_cast<long long>(stats.elapsed_ms));
}

TEST(FuzzDifferential, BaoArmAgreesWithTheEngine) {
  // A shorter run with a real (untrained) LQO arm in the execution
  // cross-check; Bao plans under several hint-set overlays per query.
  fuzz::FuzzOptions options;
  options.seed = 7;
  options.num_queries = 60;
  options.generator.max_relations = 8;
  fuzz::Fuzzer fuzzer(SharedDb(), options);
  lqo::BaoOptimizer bao;
  fuzzer.AddLqoArm(&bao);
  const fuzz::FuzzStats stats = fuzzer.Run();
  EXPECT_EQ(stats.queries, 60);
  ReportDiscrepancies(stats.discrepancies);
}

TEST(FuzzDifferential, CommittedCorpusReplaysClean) {
  const std::vector<std::string> corpus =
      fuzz::ListCorpus(LQOLAB_FUZZ_CORPUS_DIR);
  ASSERT_GE(corpus.size(), 3u) << "committed corpus missing from "
                               << LQOLAB_FUZZ_CORPUS_DIR;
  fuzz::FuzzOptions options;
  fuzz::Fuzzer fuzzer(SharedDb(), options);
  lqo::NativePassthroughOptimizer passthrough;
  fuzzer.AddLqoArm(&passthrough);
  for (const std::string& path : corpus) {
    std::string error;
    const fuzz::CheckReport report = fuzzer.Replay(path, &error);
    EXPECT_FALSE(report.failed()) << path;
    ReportDiscrepancies(report.discrepancies);
  }
}

}  // namespace
}  // namespace lqolab

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--replay") {
      lqolab::fuzz::FuzzOptions options;
      lqolab::fuzz::Fuzzer fuzzer(lqolab::SharedDb(), options);
      lqolab::lqo::NativePassthroughOptimizer passthrough;
      fuzzer.AddLqoArm(&passthrough);
      std::string error;
      const lqolab::fuzz::CheckReport report =
          fuzzer.Replay(argv[i + 1], &error);
      for (const auto& d : report.discrepancies) {
        std::printf("DISCREPANCY %s: %s\n", d.check.c_str(),
                    d.detail.c_str());
      }
      std::printf("%s: %lld checks, %zu discrepancies\n", argv[i + 1],
                  static_cast<long long>(report.checks.total()),
                  report.discrepancies.size());
      return report.failed() ? 1 : 0;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
