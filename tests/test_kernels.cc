// Differential test suite for the batched execution engine (ctest label
// `exec`): the vectorized oracle hot path must return byte-identical
// results to the tuple-at-a-time scalar reference — same FilteredRows /
// SinglePredicateRows / TrueJoinRows (including overflow flags) across all
// JOB-lite queries and the fuzz replay corpus, with and without predicate
// transfer. Plus property tests for the Bloom filter and a steady-state
// zero-allocation check for the kernels.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/bloom.h"
#include "exec/kernels.h"
#include "exec/oracle.h"
#include "fuzz/corpus.h"
#include "query/job_workload.h"
#include "query/predicate_binding.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator-new in this binary bumps the
// counter, so tests can assert that a warmed kernel pipeline performs zero
// heap allocations in steady state (satellite: no per-tuple heap memory).
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace lqolab::exec {
namespace {

using query::AliasId;
using query::AliasMask;
using query::Query;
using storage::RowId;
using storage::Value;

// ---------------------------------------------------------------------------
// Differential A/B: scalar reference vs vectorized (± predicate transfer).
// Three separate Database instances over the same (profile, seed) hold the
// same physical data but run independent oracles, so agreement is a genuine
// recomputation check, not a memo hit.
// ---------------------------------------------------------------------------

struct EngineLab {
  std::unique_ptr<engine::Database> scalar;
  std::unique_ptr<engine::Database> vectorized;
  std::unique_ptr<engine::Database> vectorized_no_transfer;
  std::vector<Query> workload;

  engine::Database& db(size_t i) {
    engine::Database* dbs[] = {scalar.get(), vectorized.get(),
                               vectorized_no_transfer.get()};
    return *dbs[i];
  }
  static const char* Name(size_t i) {
    const char* names[] = {"scalar", "vectorized", "vectorized_no_transfer"};
    return names[i];
  }
};

EngineLab& Lab() {
  static EngineLab* lab = [] {
    auto* l = new EngineLab;
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Medium().Scaled(0.01);
    options.seed = 42;

    options.config.vectorized_exec = false;
    options.config.predicate_transfer = false;
    l->scalar = engine::Database::CreateImdb(options);

    options.config.vectorized_exec = true;
    options.config.predicate_transfer = true;
    l->vectorized = engine::Database::CreateImdb(options);

    options.config.vectorized_exec = true;
    options.config.predicate_transfer = false;
    l->vectorized_no_transfer = engine::Database::CreateImdb(options);

    l->workload = query::BuildJobLiteWorkload(l->scalar->schema());
    return l;
  }();
  return *lab;
}

/// Every connected mask the differential sweep compares: all single
/// aliases, all connected pairs, and the full query.
std::vector<AliasMask> DifferentialMasks(const Query& q) {
  std::vector<AliasMask> masks;
  const int32_t n = q.relation_count();
  for (AliasId a = 0; a < n; ++a) masks.push_back(query::MaskOf(a));
  for (AliasId a = 0; a < n; ++a) {
    for (AliasId b = static_cast<AliasId>(a + 1); b < n; ++b) {
      const AliasMask mask = query::MaskOf(a) | query::MaskOf(b);
      if (q.IsConnected(mask)) masks.push_back(mask);
    }
  }
  if (n > 2) masks.push_back(q.FullMask());
  return masks;
}

/// Runs the full byte-identity sweep for one query across the three
/// engines: filtered rows per alias, single-predicate rows per predicate,
/// and join cardinalities (rows AND overflow flag) per differential mask.
void CheckQueryAgreement(const Query& q) {
  EngineLab& lab = Lab();
  const size_t kEngines = 3;

  for (AliasId a = 0; a < q.relation_count(); ++a) {
    const std::vector<RowId>& reference =
        lab.scalar->oracle().FilteredRows(q, a);
    for (size_t e = 1; e < kEngines; ++e) {
      const std::vector<RowId>& got = lab.db(e).oracle().FilteredRows(q, a);
      ASSERT_TRUE(got == reference)
          << q.id << " alias " << static_cast<int>(a) << ": " << lab.Name(e)
          << " FilteredRows diverged (" << got.size() << " vs "
          << reference.size() << " rows)";
    }

    const size_t pred_count =
        lab.scalar->oracle().BoundPredicates(q, a).size();
    for (size_t p = 0; p < pred_count; ++p) {
      const std::vector<RowId>& ref_single =
          lab.scalar->oracle().SinglePredicateRows(q, a, p);
      for (size_t e = 1; e < kEngines; ++e) {
        const std::vector<RowId>& got =
            lab.db(e).oracle().SinglePredicateRows(q, a, p);
        ASSERT_TRUE(got == ref_single)
            << q.id << " alias " << static_cast<int>(a) << " pred " << p
            << ": " << lab.Name(e) << " SinglePredicateRows diverged";
      }
    }
  }

  for (const AliasMask mask : DifferentialMasks(q)) {
    const Oracle::CardResult reference =
        lab.scalar->oracle().TrueJoinRows(q, mask);
    for (size_t e = 1; e < kEngines; ++e) {
      const Oracle::CardResult got = lab.db(e).oracle().TrueJoinRows(q, mask);
      ASSERT_EQ(got.rows, reference.rows)
          << q.id << " mask " << mask << ": " << lab.Name(e) << " diverged";
      ASSERT_EQ(got.overflow, reference.overflow)
          << q.id << " mask " << mask << ": " << lab.Name(e)
          << " overflow flag diverged";
    }
  }
}

class AllQueriesDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(AllQueriesDifferential, VectorizedMatchesScalarByteForByte) {
  CheckQueryAgreement(Lab().workload[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(JobLite, AllQueriesDifferential,
                         ::testing::Range<size_t>(0, 113));

TEST(CorpusDifferential, ReplayCorpusMatchesScalar) {
  EngineLab& lab = Lab();
  const std::vector<std::string> paths =
      fuzz::ListCorpus(LQOLAB_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(paths.empty()) << "no corpus under " << LQOLAB_FUZZ_CORPUS_DIR;
  for (const std::string& path : paths) {
    Query q;
    std::string error;
    ASSERT_TRUE(fuzz::LoadReproducer(path, lab.scalar->schema(), &q, &error))
        << path << ": " << error;
    CheckQueryAgreement(q);
  }
}

/// The overflow path must trip identically in both engines. Tree-shaped
/// queries never overflow (TreeCount computes them exactly without
/// materializing), so this builds a 4-cycle cast_info self-join on the
/// low-cardinality role_id column: every 3-alias sub-path explodes past
/// kMaxIntermediateRows (so no submask materialization exists to stream an
/// extension count from) and the cycle defeats TreeCount — each engine must
/// give up at exactly the same point and report overflow, while the
/// adjacent 2-alias subsets still materialize exactly.
TEST(OverflowDifferential, SelfJoinOverflowFlagsAgree) {
  EngineLab& lab = Lab();
  const catalog::Schema& schema = lab.scalar->schema();
  const catalog::TableId cast_info = schema.FindTable("cast_info");
  ASSERT_NE(cast_info, catalog::kInvalidTable);
  const catalog::ColumnId role_id =
      schema.table(cast_info).FindColumn("role_id");
  ASSERT_NE(role_id, catalog::kInvalidColumn);

  Query q;
  q.id = "kernels_overflow_cycle";
  q.relations = {{cast_info, "c1"},
                 {cast_info, "c2"},
                 {cast_info, "c3"},
                 {cast_info, "c4"}};
  q.edges = {{0, role_id, 1, role_id},
             {1, role_id, 2, role_id},
             {2, role_id, 3, role_id},
             {3, role_id, 0, role_id}};

  const Oracle::CardResult reference =
      lab.scalar->oracle().TrueJoinRows(q, q.FullMask());
  for (size_t e = 1; e < 3; ++e) {
    const Oracle::CardResult got =
        lab.db(e).oracle().TrueJoinRows(q, q.FullMask());
    EXPECT_EQ(got.rows, reference.rows) << lab.Name(e);
    EXPECT_EQ(got.overflow, reference.overflow) << lab.Name(e);
  }
  // Pin the shape so the test genuinely covers the overflow branch: the
  // triple explodes past the intermediate caps, the pair stays exact.
  EXPECT_TRUE(reference.overflow);
  const Oracle::CardResult pair =
      lab.scalar->oracle().TrueJoinRows(q, query::MaskOf(0) | query::MaskOf(1));
  EXPECT_FALSE(pair.overflow);
  EXPECT_GT(pair.rows, 0);
}

// ---------------------------------------------------------------------------
// Kernel unit tests against the scalar predicate semantics.
// ---------------------------------------------------------------------------

std::vector<Value> SyntheticColumn(int64_t rows, uint64_t seed,
                                   int32_t domain, double null_fraction) {
  util::Rng rng(seed);
  std::vector<Value> column(static_cast<size_t>(rows));
  for (auto& v : column) {
    if (rng.Uniform() < null_fraction) {
      v = storage::kNullValue;
    } else {
      v = static_cast<Value>(rng.UniformInt(0, domain - 1));
    }
  }
  return column;
}

std::vector<RowId> BruteForceSelect(const std::vector<Value>& column,
                                    const query::BoundPredicate& pred) {
  std::vector<RowId> rows;
  for (size_t r = 0; r < column.size(); ++r) {
    if (pred.Matches(column[r])) rows.push_back(static_cast<RowId>(r));
  }
  return rows;
}

TEST(SelectionKernels, MatchScalarSemanticsAcrossKinds) {
  const auto column = SyntheticColumn(10'000, 7, 500, 0.1);

  std::vector<query::BoundPredicate> preds;
  query::BoundPredicate eq;
  eq.kind = query::Predicate::Kind::kEq;
  eq.values = {123};
  preds.push_back(eq);

  query::BoundPredicate small_in;
  small_in.kind = query::Predicate::Kind::kIn;
  small_in.values = {3, 77, 123, 401};
  preds.push_back(small_in);

  query::BoundPredicate big_in;
  big_in.kind = query::Predicate::Kind::kIn;
  for (Value v = 0; v < 400; v += 13) big_in.values.push_back(v);
  preds.push_back(big_in);

  query::BoundPredicate range;
  range.kind = query::Predicate::Kind::kRange;
  range.lo = 100;
  range.hi = 299;
  preds.push_back(range);

  // Unbounded-below range: the batched kernel folds the null exclusion
  // into the lower bound; INT32_MIN is exactly the null sentinel.
  query::BoundPredicate open_range;
  open_range.kind = query::Predicate::Kind::kRange;
  open_range.lo = INT32_MIN;
  open_range.hi = 250;
  preds.push_back(open_range);

  query::BoundPredicate isnull;
  isnull.kind = query::Predicate::Kind::kIsNull;
  preds.push_back(isnull);

  query::BoundPredicate notnull;
  notnull.kind = query::Predicate::Kind::kNotNull;
  preds.push_back(notnull);

  query::BoundPredicate empty_in;
  empty_in.kind = query::Predicate::Kind::kIn;
  preds.push_back(empty_in);

  for (size_t i = 0; i < preds.size(); ++i) {
    const std::vector<RowId> expected = BruteForceSelect(column, preds[i]);
    std::vector<RowId> got;
    kernels::SelectPredicate(column.data(),
                             static_cast<int64_t>(column.size()), preds[i],
                             &got);
    EXPECT_TRUE(got == expected) << "predicate " << i;

    // Refine from the all-rows vector must land on the same set.
    std::vector<RowId> refined;
    kernels::SelectAll(static_cast<int64_t>(column.size()), &refined);
    kernels::RefinePredicate(column.data(), preds[i], &refined);
    EXPECT_TRUE(refined == expected) << "predicate " << i;
  }
}

TEST(JoinHashTableKernel, ProbeReplaysReferenceInsertionOrder) {
  const auto column = SyntheticColumn(20'000, 11, 300, 0.05);
  std::vector<RowId> rows;
  kernels::SelectAll(static_cast<int64_t>(column.size()), &rows);

  kernels::JoinHashTable table;
  table.Build(column.data(), rows.data(), static_cast<int64_t>(rows.size()));

  // Reference: the scalar path's per-key vectors.
  std::unordered_map<Value, std::vector<RowId>> reference;
  for (const RowId r : rows) {
    const Value v = column[static_cast<size_t>(r)];
    if (v != storage::kNullValue) reference[v].push_back(r);
  }

  int64_t groups = 0;
  for (const auto& [key, expected] : reference) {
    const kernels::JoinHashTable::Group group = table.Probe(key);
    ASSERT_EQ(group.count, static_cast<int32_t>(expected.size())) << key;
    for (int32_t i = 0; i < group.count; ++i) {
      ASSERT_EQ(group.rows[i], expected[static_cast<size_t>(i)])
          << "key " << key << " position " << i;
    }
    ++groups;
  }
  EXPECT_EQ(table.distinct(), groups);
  EXPECT_EQ(table.Probe(-7).count, 0);  // absent key
}

// ---------------------------------------------------------------------------
// Bloom filter property tests.
// ---------------------------------------------------------------------------

TEST(BloomFilter, ZeroFalseNegativesByConstruction) {
  for (const uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    BloomFilter bloom(5'000, 0.01, seed);
    util::Rng rng(seed + 1);
    std::vector<Value> keys;
    for (int i = 0; i < 5'000; ++i) {
      keys.push_back(static_cast<Value>(rng.UniformInt(-1'000'000'000,
                                                       1'000'000'000)));
      bloom.Add(keys.back());
    }
    for (const Value key : keys) {
      ASSERT_TRUE(bloom.MayContain(key)) << "seed " << seed;
    }
  }
}

TEST(BloomFilter, MeasuredFprWithinTwiceTarget) {
  constexpr double kTargetFpr = 0.01;
  constexpr int kKeys = 20'000;
  constexpr int kProbes = 200'000;
  for (const uint64_t seed : {7ull, 99ull, 1234ull, 0xabcdefull}) {
    BloomFilter bloom(kKeys, kTargetFpr, seed);
    // Insert even keys, probe odd keys: disjoint by construction.
    for (Value k = 0; k < 2 * kKeys; k += 2) bloom.Add(k);
    int64_t false_positives = 0;
    for (Value probe = 1; probe < 2 * kProbes; probe += 2) {
      if (bloom.MayContain(probe)) ++false_positives;
    }
    const double fpr =
        static_cast<double>(false_positives) / static_cast<double>(kProbes);
    EXPECT_LE(fpr, 2.0 * kTargetFpr) << "seed " << seed;
  }
}

TEST(BloomFilter, DeterministicBitsPerSeed) {
  auto build = [](uint64_t seed) {
    BloomFilter bloom(1'000, 0.02, seed);
    for (Value k = 0; k < 1'000; ++k) bloom.Add(k * 3);
    return bloom;
  };
  const BloomFilter a = build(42);
  const BloomFilter b = build(42);
  const BloomFilter c = build(43);
  EXPECT_TRUE(a.BitsEqual(b));
  EXPECT_FALSE(a.BitsEqual(c)) << "different seeds must scatter differently";
}

TEST(BloomFilter, SerializationRoundTrip) {
  BloomFilter original(2'000, 0.005, 0x5eed);
  for (Value k = -500; k < 1'500; ++k) original.Add(k * 7);
  const std::string bytes = original.Serialize();

  BloomFilter decoded;
  ASSERT_TRUE(BloomFilter::Deserialize(bytes, &decoded));
  EXPECT_TRUE(decoded.BitsEqual(original));
  EXPECT_EQ(decoded.entries_added(), original.entries_added());
  EXPECT_EQ(decoded.hashes_per_key(), original.hashes_per_key());
  EXPECT_EQ(decoded.seed(), original.seed());
  for (Value k = -500; k < 1'500; ++k) {
    ASSERT_TRUE(decoded.MayContain(k * 7));
  }

  BloomFilter garbage;
  EXPECT_FALSE(BloomFilter::Deserialize("not a filter", &garbage));
  EXPECT_FALSE(BloomFilter::Deserialize(bytes.substr(0, bytes.size() - 1),
                                        &garbage));
}

// ---------------------------------------------------------------------------
// Steady-state allocation discipline: once the scratch structures are
// warmed, a full kernel pipeline over 200k rows must perform ZERO heap
// allocations — the batch engine's no-per-tuple-memory contract.
// ---------------------------------------------------------------------------

TEST(VectorizedSteadyState, WarmedKernelsAllocateNothing) {
  const int64_t kRows = 200'000;
  const auto column = SyntheticColumn(kRows, 3, 4'000, 0.05);
  std::vector<RowId> all_rows;
  kernels::SelectAll(kRows, &all_rows);

  query::BoundPredicate range;
  range.kind = query::Predicate::Kind::kRange;
  range.lo = 500;
  range.hi = 3'200;

  std::vector<RowId> selected;
  kernels::ValueSet set;
  kernels::JoinHashTable table;
  BloomFilter bloom;

  auto pipeline = [&]() -> int64_t {
    selected.clear();
    kernels::SelectPredicate(column.data(), kRows, range, &selected);
    set.Build(column.data(), all_rows.data(), kRows);
    set.FillBloom(&bloom, 0.01, 42);
    kernels::RefineBySet(column.data(), set, &bloom, &selected);
    table.Build(column.data(), selected.data(),
                static_cast<int64_t>(selected.size()));
    int64_t pairs = 0;
    for (const RowId r : all_rows) {
      const Value v = column[static_cast<size_t>(r)];
      if (v == storage::kNullValue) continue;
      pairs += table.Probe(v).count;
    }
    return pairs;
  };

  const int64_t warm = pipeline();
  ASSERT_GT(warm, 0);

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const int64_t steady = pipeline();
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(steady, warm);
  EXPECT_EQ(after - before, 0u)
      << "warmed kernel pipeline must not touch the heap";
}

}  // namespace
}  // namespace lqolab::exec
