// Tests for the sql/ frontend (lexer, parser, binder, template
// normalization): the 113-query JOB-lite round trip, the corpus-driven
// golden diagnostics in tests/sql_corpus/, the .sql workload loaders, and
// adversarial inputs (deep nesting, megabyte literals, truncation at every
// byte) that must fail cleanly instead of crashing.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "catalog/imdb_schema.h"
#include "catalog/tpch_schema.h"
#include "exec/oracle.h"
#include "gtest/gtest.h"
#include "query/job_workload.h"
#include "query/sql_workload.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "sql/template.h"

namespace lqolab {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

std::vector<std::filesystem::path> CorpusFiles(const char* subdir) {
  std::vector<std::filesystem::path> files;
  const std::filesystem::path dir =
      std::filesystem::path(LQOLAB_SQL_CORPUS_DIR) / subdir;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".sql") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  EXPECT_FALSE(files.empty()) << dir;
  return files;
}

// Every valid corpus statement binds, and the bound query round-trips:
// render -> parse+bind -> identical fingerprint and byte-identical
// re-render.
TEST(SqlCorpus, ValidStatementsBindAndRoundTrip) {
  const catalog::Schema schema = catalog::BuildImdbSchema();
  for (const auto& path : CorpusFiles("valid")) {
    const std::string sql = ReadFile(path);
    query::Query q;
    const util::Status status = sql::ParseAndBindSql(sql, schema, &q);
    ASSERT_TRUE(status.ok()) << path << ": " << status.message();
    const std::string rendered = q.ToSql(schema);
    query::Query rebound;
    const util::Status again =
        sql::ParseAndBindSql(rendered, schema, &rebound);
    ASSERT_TRUE(again.ok()) << path << ": " << again.message();
    EXPECT_EQ(exec::QueryFingerprint(q), exec::QueryFingerprint(rebound))
        << path;
    EXPECT_EQ(rendered, rebound.ToSql(schema)) << path;
  }
}

// Every invalid corpus file carries its exact expected diagnostic in a
// leading `-- expect:` line; the frontend must reproduce it verbatim
// (golden error messages, including the line:col anchor and any "did you
// mean" suggestion).
TEST(SqlCorpus, InvalidStatementsReproduceGoldenDiagnostics) {
  const catalog::Schema schema = catalog::BuildImdbSchema();
  const std::string kPrefix = "-- expect: ";
  for (const auto& path : CorpusFiles("invalid")) {
    const std::string text = ReadFile(path);
    const size_t newline = text.find('\n');
    ASSERT_NE(newline, std::string::npos) << path;
    const std::string header = text.substr(0, newline);
    ASSERT_EQ(header.rfind(kPrefix, 0), 0u)
        << path << ": first line must be '-- expect: <diagnostic>'";
    const std::string expected = header.substr(kPrefix.size());
    const std::string sql = text.substr(newline + 1);
    query::Query q;
    const util::Status status = sql::ParseAndBindSql(sql, schema, &q);
    ASSERT_FALSE(status.ok()) << path;
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument) << path;
    EXPECT_EQ(status.message(), expected) << path;
  }
}

// The tentpole acceptance check: all 113 built-in JOB-lite queries render
// to SQL, re-bind through the frontend, and come back byte-identical.
TEST(SqlRoundTrip, AllJobLiteQueriesRoundTripByteIdentically) {
  const catalog::Schema schema = catalog::BuildImdbSchema();
  const auto workload = query::BuildJobLiteWorkload(schema);
  ASSERT_EQ(workload.size(), 113u);
  for (const query::Query& q : workload) {
    const std::string sql = q.ToSql(schema);
    query::Query rebound;
    const util::Status status = sql::ParseAndBindSql(sql, schema, &rebound);
    ASSERT_TRUE(status.ok()) << q.id << ": " << status.message();
    sql::AssignQueryId(q.id, &rebound);
    EXPECT_EQ(rebound.template_id, q.template_id) << q.id;
    EXPECT_EQ(rebound.variant, q.variant) << q.id;
    EXPECT_EQ(exec::QueryFingerprint(q), exec::QueryFingerprint(rebound))
        << q.id;
    EXPECT_EQ(sql, rebound.ToSql(schema)) << q.id;
  }
}

// The two .sql workload files load through the frontend with the family
// structure the split samplers need.
TEST(SqlWorkloadFiles, JobComplexLiteLoads) {
  const catalog::Schema schema = catalog::BuildImdbSchema();
  std::vector<query::Query> workload;
  const util::Status status = query::LoadSqlWorkloadFile(
      std::string(LQOLAB_WORKLOADS_DIR) + "/job_complex_lite.sql", schema,
      &workload);
  ASSERT_TRUE(status.ok()) << status.message();
  std::set<int32_t> families;
  for (const query::Query& q : workload) {
    families.insert(q.template_id);
    EXPECT_GE(static_cast<int>(q.relations.size()), 2) << q.id;
  }
  EXPECT_GE(workload.size(), 60u);
  EXPECT_GE(families.size(), 30u);
  // The 'c' prefix maps onto the extended-JOB template-id range.
  EXPECT_EQ(workload.front().id, "c1a");
  EXPECT_EQ(workload.front().template_id, 101);
  EXPECT_EQ(workload.front().variant, 'a');
}

TEST(SqlWorkloadFiles, TpchLiteLoads) {
  const catalog::Schema schema = catalog::BuildTpchSchema();
  std::vector<query::Query> workload;
  const util::Status status = query::LoadSqlWorkloadFile(
      std::string(LQOLAB_WORKLOADS_DIR) + "/tpch_lite.sql", schema,
      &workload);
  ASSERT_TRUE(status.ok()) << status.message();
  std::set<int32_t> families;
  for (const query::Query& q : workload) families.insert(q.template_id);
  EXPECT_GE(workload.size(), 30u);
  EXPECT_GE(families.size(), 15u);
  EXPECT_EQ(workload.front().id, "h1a");
  EXPECT_EQ(workload.front().template_id, 101);
}

TEST(SqlWorkloadFiles, MissingFileReportsInvalidArgument) {
  const catalog::Schema schema = catalog::BuildImdbSchema();
  std::vector<query::Query> workload;
  const util::Status status =
      query::LoadSqlWorkloadFile("does_not_exist.sql", schema, &workload);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

// Template normalization: constants strip to `?`, IN lists collapse
// arity-independently, keywords and identifiers canonicalize — the
// properties the serve-path template cache key relies on.
TEST(SqlTemplate, LiteralsNormalizeAway) {
  const std::string a =
      "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990";
  const std::string b =
      "select count(*) from title t where t.production_year > 2005;";
  EXPECT_EQ(sql::NormalizeSqlTemplate(a), sql::NormalizeSqlTemplate(b));
  EXPECT_EQ(sql::SqlTemplateFingerprint(a), sql::SqlTemplateFingerprint(b));
}

TEST(SqlTemplate, InListArityIsNormalizedAway) {
  const std::string one =
      "SELECT COUNT(*) FROM title t WHERE t.kind_id IN (1)";
  const std::string three =
      "SELECT COUNT(*) FROM title t WHERE t.kind_id IN (1, 2, 3)";
  EXPECT_EQ(sql::NormalizeSqlTemplate(one),
            sql::NormalizeSqlTemplate(three));
}

TEST(SqlTemplate, DifferentStructureKeepsDistinctTemplates) {
  const std::string range =
      "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990";
  const std::string other_column =
      "SELECT COUNT(*) FROM title t WHERE t.kind_id > 1990";
  EXPECT_NE(sql::SqlTemplateFingerprint(range),
            sql::SqlTemplateFingerprint(other_column));
}

TEST(SqlBinder, AssignQueryIdMapsWorkloadNaming) {
  query::Query q;
  sql::AssignQueryId("13a", &q);
  EXPECT_EQ(q.template_id, 13);
  EXPECT_EQ(q.variant, 'a');
  sql::AssignQueryId("c1a", &q);
  EXPECT_EQ(q.template_id, 101);
  EXPECT_EQ(q.variant, 'a');
  sql::AssignQueryId("h16b", &q);
  EXPECT_EQ(q.template_id, 116);
  EXPECT_EQ(q.variant, 'b');
  sql::AssignQueryId("adhoc", &q);
  EXPECT_EQ(q.template_id, 0);
}

// --- Adversarial inputs: reject cleanly, never crash (the suite runs
// under the LQOLAB_SANITIZE matrix). ---

std::string NestedQuery(int depth) {
  std::string sql = "SELECT COUNT(*) FROM title t WHERE ";
  sql.append(static_cast<size_t>(depth), '(');
  sql += "t.production_year > 2000";
  sql.append(static_cast<size_t>(depth), ')');
  return sql;
}

TEST(SqlAdversarial, GroupNestingIsDepthCapped) {
  const catalog::Schema schema = catalog::BuildImdbSchema();
  query::Query q;
  EXPECT_TRUE(
      sql::ParseAndBindSql(NestedQuery(sql::kMaxGroupDepth), schema, &q)
          .ok());
  const util::Status over =
      sql::ParseAndBindSql(NestedQuery(sql::kMaxGroupDepth + 1), schema, &q);
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.message().find("nested deeper"), std::string::npos);
  // Far past the cap: still a clean diagnostic, no stack exhaustion.
  EXPECT_FALSE(sql::ParseAndBindSql(NestedQuery(20000), schema, &q).ok());
}

TEST(SqlAdversarial, MegabyteLiteralsAreHandled) {
  const catalog::Schema schema = catalog::BuildImdbSchema();
  const std::string huge(1 << 20, 'x');
  query::Query q;
  // A 1 MB equality literal binds (it simply matches nothing).
  EXPECT_TRUE(sql::ParseAndBindSql(
                  "SELECT COUNT(*) FROM title t WHERE t.title = '" + huge +
                      "'",
                  schema, &q)
                  .ok());
  // A 1 MB identifier is an unknown table with a bounded diagnostic.
  const util::Status status = sql::ParseAndBindSql(
      "SELECT COUNT(*) FROM " + huge, schema, &q);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(SqlAdversarial, TruncationAtEveryByteNeverCrashes) {
  const catalog::Schema schema = catalog::BuildImdbSchema();
  const std::string sample =
      "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id = "
      "mk.movie_id AND mk.keyword_id IN (1, 2) AND t.title LIKE 'pre%';";
  for (size_t n = 0; n < sample.size(); ++n) {
    query::Query q;
    // Most prefixes fail; all must return instead of crashing.
    sql::ParseAndBindSql(sample.substr(0, n), schema, &q);
  }
  // Unterminated tokens specifically.
  query::Query q;
  EXPECT_FALSE(sql::ParseAndBindSql("SELECT COUNT(*) FROM title t WHERE "
                                    "t.title = 'open",
                                    schema, &q)
                   .ok());
  EXPECT_FALSE(sql::ParseAndBindSql("SELECT", schema, &q).ok());
  EXPECT_FALSE(sql::ParseAndBindSql("", schema, &q).ok());
}

}  // namespace
}  // namespace lqolab
