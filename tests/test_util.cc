// Unit and property tests for util: RNG, statistics, formatting.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/statistics.h"
#include "util/table_printer.h"
#include "util/virtual_clock.h"

namespace lqolab::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 12);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  std::vector<double> samples(20000);
  for (auto& s : samples) s = rng.Gaussian();
  EXPECT_NEAR(Mean(samples), 0.0, 0.03);
  EXPECT_NEAR(StdDev(samples), 1.0, 0.03);
}

TEST(Rng, ZipfSkewsTowardHead) {
  Rng rng(17);
  ZipfTable table(100, 1.0);
  std::vector<int64_t> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[static_cast<size_t>(table.Sample(&rng))];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(19);
  std::vector<int64_t> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[static_cast<size_t>(rng.Zipf(10, 0.0))];
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LT(static_cast<double>(*max_it) / static_cast<double>(*min_it), 1.3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(values, shuffled);
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(Statistics, MeanVarianceKnownValues) {
  const std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_NEAR(Variance(values), 32.0 / 7.0, 1e-12);
}

TEST(Statistics, MeanOfEmptyIsZero) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
  EXPECT_EQ(Variance({1.0}), 0.0);
}

TEST(Statistics, PercentileInterpolates) {
  const std::vector<double> values = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 25);
}

TEST(Statistics, ConfidenceIntervalShrinksWithN) {
  std::vector<double> small;
  std::vector<double> large;
  Rng rng(37);
  for (int i = 0; i < 10; ++i) small.push_back(rng.Gaussian());
  for (int i = 0; i < 1000; ++i) large.push_back(rng.Gaussian());
  EXPECT_GT(ConfidenceInterval95(small), ConfidenceInterval95(large));
}

TEST(Statistics, MannWhitneyIdenticalSamplesNotSignificant) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const TestResult result = MannWhitneyU(a, a);
  EXPECT_FALSE(result.significant);
  EXPECT_GT(result.p_value, 0.9);
}

TEST(Statistics, MannWhitneyDetectsShift) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(41);
  for (int i = 0; i < 40; ++i) {
    a.push_back(rng.Gaussian(0.0, 1.0));
    b.push_back(rng.Gaussian(2.0, 1.0));
  }
  const TestResult result = MannWhitneyU(a, b);
  EXPECT_TRUE(result.significant);
  EXPECT_LT(result.p_value, 0.001);
}

TEST(Statistics, MannWhitneyOneSidedDirection) {
  std::vector<double> low;
  std::vector<double> high;
  Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    low.push_back(rng.Gaussian(0.0, 1.0));
    high.push_back(rng.Gaussian(1.5, 1.0));
  }
  EXPECT_TRUE(MannWhitneyULess(low, high).significant);
  EXPECT_FALSE(MannWhitneyULess(high, low).significant);
}

TEST(Statistics, MannWhitneyHandlesTies) {
  const std::vector<double> a = {1, 1, 1, 2, 2, 3};
  const std::vector<double> b = {1, 2, 2, 2, 3, 3};
  const TestResult result = MannWhitneyU(a, b);
  EXPECT_GE(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
}

TEST(Statistics, MannWhitneyEmptySampleDegenerate) {
  const TestResult result = MannWhitneyU({}, {1.0, 2.0});
  EXPECT_FALSE(result.significant);
  EXPECT_EQ(result.p_value, 1.0);
}

TEST(Statistics, WelchDetectsDifference) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(47);
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.Gaussian(10.0, 1.0));
    b.push_back(rng.Gaussian(12.0, 2.0));
  }
  EXPECT_TRUE(WelchTTest(a, b).significant);
  EXPECT_FALSE(WelchTTest(a, a).significant);
}

TEST(Statistics, OlsRecoversPerfectLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  const OlsFit fit = OrdinaryLeastSquares(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Statistics, RSquaredNegativeForBadPredictor) {
  // A predictor worse than the mean yields negative R^2 — the effect the
  // paper reports in Fig. 2 (R^2 = -0.11 for joins -> runtime).
  const std::vector<double> observed = {1, 2, 3, 4};
  const std::vector<double> predicted = {4, 3, 2, 1};
  EXPECT_LT(RSquared(observed, predicted), 0.0);
}

TEST(Statistics, LeaveOneOutR2OnNoise) {
  Rng rng(53);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 60; ++i) {
    xs.push_back(rng.Uniform());
    ys.push_back(rng.Uniform());  // unrelated
  }
  // Cross-validated R^2 of an unrelated regressor is near or below zero.
  EXPECT_LT(LeaveOneOutR2(xs, ys), 0.15);
}

TEST(Statistics, NormalCdfKnownPoints) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(VirtualClock, AccumulatesCharges) {
  VirtualClock clock;
  clock.Charge(100);
  clock.Charge(50);
  EXPECT_EQ(clock.now(), 150);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"a", "long_header"});
  table.AddRow({"x", "1"});
  table.AddRow({"yyyy", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("yyyy"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Format, Durations) {
  EXPECT_EQ(FormatDuration(500), "500 ns");
  EXPECT_EQ(FormatDuration(2'500), "2.5 us");
  EXPECT_EQ(FormatDuration(3'500'000), "3.5 ms");
  EXPECT_EQ(FormatDuration(2'340'000'000), "2.34 s");
  EXPECT_EQ(FormatDuration(600ll * 1'000'000'000), "10.0 min");
  EXPECT_EQ(FormatDuration(7'200ll * 1'000'000'000), "2.0 h");
}

TEST(Format, FactorAndDouble) {
  EXPECT_EQ(FormatFactor(5.53), "5.5x");
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
}

/// Property sweep: Mann-Whitney U p-values stay in [0, 1] and the test is
/// symmetric under swapping samples, across sample-size combinations.
class MannWhitneyProperty : public ::testing::TestWithParam<int> {};

TEST_P(MannWhitneyProperty, SymmetricAndBounded) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 997 + 1);
  const int n_a = 3 + GetParam() % 40;
  const int n_b = 3 + (GetParam() * 7) % 40;
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < n_a; ++i) a.push_back(rng.Gaussian());
  for (int i = 0; i < n_b; ++i) b.push_back(rng.Gaussian(0.5, 1.5));
  const TestResult ab = MannWhitneyU(a, b);
  const TestResult ba = MannWhitneyU(b, a);
  EXPECT_GE(ab.p_value, 0.0);
  EXPECT_LE(ab.p_value, 1.0);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MannWhitneyProperty, ::testing::Range(0, 25));

/// Property sweep: percentiles are monotone in p for random samples.
class PercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperty, MonotoneInP) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1234);
  std::vector<double> values(1 + GetParam() * 3);
  for (auto& v : values) v = rng.Gaussian(0, 10);
  double previous = Percentile(values, 0);
  for (double p = 5; p <= 100; p += 5) {
    const double current = Percentile(values, p);
    EXPECT_GE(current, previous - 1e-12);
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileProperty, ::testing::Range(1, 20));

}  // namespace
}  // namespace lqolab::util
