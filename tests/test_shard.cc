// Table-sharding suite (ctest label: shard): storage::ShardedTableSet
// partition invariants, the k-way shard merge, byte-identity of sharded
// execution against the unsharded layout, copy-on-write isolation of worker
// replicas over the shared sharded state (run under -DLQOLAB_SANITIZE=thread
// for the race check), per-shard buffer-pool routing, and chaos-style fault
// injection through the per-shard pools.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "benchkit/parallel_runner.h"
#include "engine/database.h"
#include "exec/kernels.h"
#include "faultlib/faultlib.h"
#include "query/job_workload.h"
#include "storage/sharded_table.h"
#include "util/status.h"

namespace lqolab {
namespace {

using engine::Database;
using storage::RowId;
using storage::ShardedTableSet;

/// Unsharded database shared by the suite; sharded twins adopt its tables.
Database* BaseDb() {
  static std::unique_ptr<Database> db = [] {
    Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    return Database::CreateImdb(options);
  }();
  return db.get();
}

std::unique_ptr<Database> ShardedTwin(int32_t shards) {
  Database::Options options;
  options.config = BaseDb()->config();
  options.config.table_shards = shards;
  return Database::FromTables(options, BaseDb()->context().tables());
}

const std::vector<query::Query>& Workload() {
  static const std::vector<query::Query> workload =
      query::BuildJobLiteWorkload(BaseDb()->schema());
  return workload;
}

TEST(ShardedTableSet, EveryRowInExactlyOneShardWithConsistentMaps) {
  const auto& tables = BaseDb()->context().tables();
  const ShardedTableSet set(tables, 4);
  ASSERT_EQ(set.num_shards(), 4);
  for (size_t t = 0; t < tables.size(); ++t) {
    const auto table_id = static_cast<catalog::TableId>(t);
    const storage::Table& table = *tables[t];
    std::set<RowId> seen;
    int64_t total_rows = 0;
    for (int32_t s = 0; s < set.num_shards(); ++s) {
      const ShardedTableSet::Shard& shard = set.shard(table_id, s);
      total_rows += shard.row_count();
      RowId prev = -1;
      for (size_t i = 0; i < shard.row_ids.size(); ++i) {
        const RowId row = shard.row_ids[i];
        EXPECT_GT(row, prev) << "row_ids must ascend";
        prev = row;
        EXPECT_TRUE(seen.insert(row).second) << "row owned twice";
        EXPECT_EQ(set.shard_of_row(table_id, row), s);
        EXPECT_EQ(ShardedTableSet::ShardOfRow(table_id, row, 4), s);
        EXPECT_EQ(set.local_page(table_id, row),
                  static_cast<int64_t>(i) / storage::kRowsPerPage);
      }
    }
    EXPECT_EQ(total_rows, table.row_count());
    EXPECT_GE(set.total_pages(table_id), table.page_count());
    EXPECT_LE(set.total_pages(table_id),
              table.page_count() + set.num_shards() - 1);
  }
}

TEST(ShardedTableSet, SegmentsMirrorTheSourceColumns) {
  const auto& tables = BaseDb()->context().tables();
  const ShardedTableSet set(tables, 3);
  const auto table_id = static_cast<catalog::TableId>(0);
  const storage::Table& table = *tables[0];
  for (int32_t s = 0; s < set.num_shards(); ++s) {
    const ShardedTableSet::Shard& shard = set.shard(table_id, s);
    ASSERT_EQ(shard.columns.size(),
              static_cast<size_t>(table.column_count()));
    for (catalog::ColumnId c = 0; c < table.column_count(); ++c) {
      const storage::Value* segment = shard.column_data(c);
      for (size_t i = 0; i < shard.row_ids.size(); ++i) {
        ASSERT_EQ(segment[i], table.column(c).at(shard.row_ids[i]))
            << "shard " << s << " column " << c << " local row " << i;
      }
    }
  }
}

TEST(ShardedTableSet, AssignmentIsDeterministicAndSpreadsRows) {
  // Same inputs, same partition — across instances.
  const auto& tables = BaseDb()->context().tables();
  const ShardedTableSet a(tables, 8);
  const ShardedTableSet b(tables, 8);
  // Spread is only meaningful on a big table; pick the largest.
  catalog::TableId table_id = 0;
  for (size_t t = 1; t < tables.size(); ++t) {
    if (tables[t]->row_count() >
        tables[static_cast<size_t>(table_id)]->row_count()) {
      table_id = static_cast<catalog::TableId>(t);
    }
  }
  for (int32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(a.shard(table_id, s).row_ids, b.shard(table_id, s).row_ids);
  }
  // The hash spreads rows: no shard of a reasonably sized table owns more
  // than twice its fair share.
  const storage::Table& table = *tables[static_cast<size_t>(table_id)];
  ASSERT_GT(table.row_count(), 500);
  for (int32_t s = 0; s < 8; ++s) {
    EXPECT_LT(a.shard(table_id, s).row_count(), table.row_count() / 4)
        << "shard " << s << " is pathologically overloaded";
  }
}

TEST(ShardKernels, MergeShardRowsReassemblesTheUnshardedList) {
  // Disjoint ascending lists in interleaved order.
  const std::vector<std::vector<RowId>> lists = {
      {0, 3, 9, 12}, {1, 4, 5}, {}, {2, 6, 7, 8, 10, 11}};
  std::vector<RowId> merged = {999};  // must be cleared by the kernel
  exec::kernels::MergeShardRows(lists, &merged);
  const std::vector<RowId> expected = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_EQ(merged, expected);

  exec::kernels::MergeShardRows({}, &merged);
  EXPECT_TRUE(merged.empty());
}

TEST(ShardKernels, ShardedSelectionIsByteIdenticalToUnsharded) {
  // Run SelectPredicate over the full column and shard-at-a-time over the
  // partition; the merged shard result must be byte-identical.
  const auto& tables = BaseDb()->context().tables();
  const ShardedTableSet set(tables, 5);
  const auto table_id = static_cast<catalog::TableId>(5);
  const storage::Table& table = *tables[static_cast<size_t>(table_id)];
  query::BoundPredicate pred;
  pred.column = 0;
  pred.kind = query::Predicate::Kind::kNotNull;

  std::vector<RowId> unsharded;
  exec::kernels::SelectPredicate(table.column(0).data(), table.row_count(),
                                 pred, &unsharded);

  std::vector<std::vector<RowId>> per_shard(
      static_cast<size_t>(set.num_shards()));
  std::vector<RowId> local;
  for (int32_t s = 0; s < set.num_shards(); ++s) {
    const ShardedTableSet::Shard& shard = set.shard(table_id, s);
    local.clear();
    exec::kernels::SelectPredicate(shard.column_data(0), shard.row_count(),
                                   pred, &local);
    for (const RowId lr : local) {
      per_shard[static_cast<size_t>(s)].push_back(
          shard.row_ids[static_cast<size_t>(lr)]);
    }
  }
  std::vector<RowId> merged;
  exec::kernels::MergeShardRows(per_shard, &merged);
  EXPECT_EQ(merged, unsharded);
}

TEST(ShardedExecution, PlansAndResultsMatchTheUnshardedDatabase) {
  // Sharding is invisible above storage: identical plans, costs, result
  // rows and true per-node cardinalities on every query. (Virtual latencies
  // may differ — per-shard pools partition the LRU space — and are
  // deliberately not compared.)
  const auto sharded = ShardedTwin(4);
  ASSERT_NE(sharded->context().shards(), nullptr);
  ASSERT_EQ(BaseDb()->context().shards(), nullptr);
  for (size_t i = 0; i < Workload().size(); i += 7) {
    const query::Query& q = Workload()[i];
    const auto base_planned = BaseDb()->PlanQuery(q);
    const auto shard_planned = sharded->PlanQuery(q);
    EXPECT_EQ(base_planned.plan.ToString(q), shard_planned.plan.ToString(q));
    EXPECT_DOUBLE_EQ(base_planned.estimated_cost,
                     shard_planned.estimated_cost);
    EXPECT_EQ(base_planned.planning_ns, shard_planned.planning_ns);

    const auto base_replica = BaseDb()->CloneContextForWorker();
    base_replica->BeginQueryReplay(42, q);
    const engine::QueryRun base_run =
        base_replica->ExecutePlan(q, base_planned.plan, 0);
    const auto shard_replica = sharded->CloneContextForWorker();
    shard_replica->BeginQueryReplay(42, q);
    const engine::QueryRun shard_run =
        shard_replica->ExecutePlan(q, shard_planned.plan, 0);
    ASSERT_TRUE(base_run.status.ok()) << q.id;
    ASSERT_TRUE(shard_run.status.ok()) << q.id;
    EXPECT_EQ(base_run.result_rows, shard_run.result_rows) << q.id;
    EXPECT_EQ(base_run.node_rows, shard_run.node_rows) << q.id;
  }
}

TEST(ShardedExecution, ShardCountDoesNotChangeResults) {
  const auto two = ShardedTwin(2);
  const auto nine = ShardedTwin(9);
  for (size_t i = 0; i < Workload().size(); i += 19) {
    const query::Query& q = Workload()[i];
    const auto planned = two->PlanQuery(q);
    const auto a = two->CloneContextForWorker();
    a->BeginQueryReplay(7, q);
    const auto b = nine->CloneContextForWorker();
    b->BeginQueryReplay(7, q);
    const engine::QueryRun run_a = a->ExecutePlan(q, planned.plan, 0);
    const engine::QueryRun run_b = b->ExecutePlan(q, planned.plan, 0);
    EXPECT_EQ(run_a.result_rows, run_b.result_rows) << q.id;
    EXPECT_EQ(run_a.node_rows, run_b.node_rows) << q.id;
  }
}

TEST(ShardedConfig, TableShardsIsPinnedAfterBuild) {
  const auto sharded = ShardedTwin(4);
  const storage::ShardedTableSet* before = sharded->context().shards();
  ASSERT_NE(before, nullptr);
  // Presets carry table_shards = 1; applying one to a live database must
  // not tear down the physical layout (TrySetConfig pins the built value).
  engine::DbConfig config = engine::DbConfig::Bao();
  ASSERT_TRUE(sharded->TrySetConfig(config).ok());
  EXPECT_EQ(sharded->config().table_shards, 4);
  EXPECT_EQ(sharded->context().shards(), before);
  // And the planner switch took effect regardless.
  EXPECT_EQ(sharded->config().enable_bushy, config.enable_bushy);
}

TEST(ShardedConfig, MemoryResizeKeepsPerShardPools) {
  const auto sharded = ShardedTwin(4);
  engine::DbConfig config = sharded->config();
  config.shared_buffers_mb /= 2;
  ASSERT_TRUE(sharded->TrySetConfig(config).ok());
  EXPECT_EQ(sharded->config().table_shards, 4);
  // The sharded scan path still runs after the resize.
  const query::Query& q = Workload()[0];
  const auto planned = sharded->PlanQuery(q);
  const auto replica = sharded->CloneContextForWorker();
  replica->BeginQueryReplay(42, q);
  const engine::QueryRun run = replica->ExecutePlan(q, planned.plan, 0);
  EXPECT_TRUE(run.status.ok());
  EXPECT_GT(run.pages_accessed, 0);
}

TEST(ShardedCow, WorkerMutationNeverLeaksToParentOrSiblings) {
  const auto sharded = ShardedTwin(4);
  // Replicas adopt the parent's SharedContext by pointer: same tables, same
  // shard set — no per-worker copies of immutable state.
  const auto a = sharded->CloneContextForWorker();
  const auto b = sharded->CloneContextForWorker();
  EXPECT_EQ(&a->context().table(0), &sharded->context().table(0));
  EXPECT_EQ(a->context().shards(), sharded->context().shards());
  EXPECT_EQ(a->context().shards(), b->context().shards());

  // Parent and sibling buffer counters are invisible to a worker's runs.
  const int64_t parent_hits = sharded->context().buffer_shared_hits();
  const int64_t parent_reads = sharded->context().buffer_disk_reads();
  const query::Query& q = Workload()[3];
  const auto planned = sharded->PlanQuery(q);
  b->BeginQueryReplay(42, q);
  const engine::QueryRun first = b->ExecutePlan(q, planned.plan, 0);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(sharded->context().buffer_shared_hits(), parent_hits);
  EXPECT_EQ(sharded->context().buffer_disk_reads(), parent_reads);

  // Heavy churn on sibling `a` must not perturb `b`'s replay determinism.
  for (int i = 0; i < 3; ++i) {
    a->BeginQueryReplay(99, Workload()[i]);
    const auto other = a->PlanQuery(Workload()[i]);
    a->ExecutePlan(Workload()[i], other.plan, 0);
  }
  b->BeginQueryReplay(42, q);
  const engine::QueryRun second = b->ExecutePlan(q, planned.plan, 0);
  EXPECT_EQ(first.result_rows, second.result_rows);
  EXPECT_EQ(first.execution_ns, second.execution_ns);
  EXPECT_EQ(first.pages_accessed, second.pages_accessed);
}

// Concurrent replicas over one shared sharded context; run under
// -DLQOLAB_SANITIZE=thread this is the data-race check for SharedContext
// and ShardedTableSet. Results must match the serial path bit for bit.
TEST(ShardedCow, ParallelMeasurementOverSharedShardsIsDeterministic) {
  const auto sharded = ShardedTwin(4);
  std::vector<query::Query> queries(Workload().begin(),
                                    Workload().begin() + 24);
  benchkit::Protocol protocol;
  protocol.runs = 2;
  protocol.take = 1;
  benchkit::RunnerOptions serial;
  serial.parallelism = 1;
  benchkit::RunnerOptions wide;
  wide.parallelism = 4;
  const auto expected = benchkit::MeasureWorkload(sharded.get(), nullptr,
                                                  queries, protocol, serial);
  const auto actual = benchkit::MeasureWorkload(sharded.get(), nullptr,
                                                queries, protocol, wide);
  ASSERT_EQ(expected.queries.size(), actual.queries.size());
  for (size_t i = 0; i < expected.queries.size(); ++i) {
    EXPECT_EQ(expected.queries[i].execution_ns, actual.queries[i].execution_ns);
    EXPECT_EQ(expected.queries[i].result_rows, actual.queries[i].result_rows);
    EXPECT_EQ(expected.queries[i].run_execution_ns,
              actual.queries[i].run_execution_ns);
    EXPECT_EQ(expected.queries[i].node_rows, actual.queries[i].node_rows);
  }
}

// Chaos arm: a read fault injected through the per-shard buffer pools is
// contained as a typed status, and the clean replay afterwards reproduces
// the canonical run — shard pools degrade exactly like the main pool.
TEST(ShardedChaos, FaultThroughShardPoolsIsContainedAndRecoverable) {
  const auto sharded = ShardedTwin(4);
  const query::Query& q = Workload()[0];
  const auto planned = sharded->PlanQuery(q);
  const auto replica = sharded->CloneContextForWorker();
  replica->BeginQueryReplay(42, q);
  const engine::QueryRun clean = replica->ExecutePlan(q, planned.plan, 0);
  ASSERT_TRUE(clean.status.ok());

  faultlib::FaultPlan plan;
  faultlib::FaultRule rule;
  rule.point = "buffer.read_page";
  rule.kind = faultlib::FaultKind::kError;
  rule.every_nth = 1;
  plan.Add(rule);
  faultlib::FaultInjector injector(plan);
  replica->BeginQueryReplay(42, q);
  engine::QueryRun faulted;
  {
    faultlib::ScopedFaultInjection inject(&injector);
    faulted = replica->ExecutePlan(q, planned.plan, 0);
  }
  EXPECT_EQ(faulted.status.code(), util::StatusCode::kUnavailable);
  EXPECT_GT(injector.fires("buffer.read_page"), 0);

  replica->BeginQueryReplay(42, q);
  const engine::QueryRun after = replica->ExecutePlan(q, planned.plan, 0);
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(after.result_rows, clean.result_rows);
  EXPECT_EQ(after.execution_ns, clean.execution_ns);
}

// Latency chaos through the shard pools degrades, never corrupts.
TEST(ShardedChaos, LatencySpikesOnShardPoolsPreserveResults) {
  const auto sharded = ShardedTwin(8);
  const query::Query& q = Workload()[5];
  const auto planned = sharded->PlanQuery(q);
  const auto replica = sharded->CloneContextForWorker();
  replica->BeginQueryReplay(42, q);
  const engine::QueryRun clean = replica->ExecutePlan(q, planned.plan, 0);
  ASSERT_TRUE(clean.status.ok());

  faultlib::FaultPlan plan;
  faultlib::FaultRule rule;
  rule.point = "buffer.read_page";
  rule.kind = faultlib::FaultKind::kLatency;
  rule.latency_ns = 25'000;
  rule.every_nth = 50;
  plan.Add(rule);
  faultlib::FaultInjector injector(plan);
  replica->BeginQueryReplay(42, q);
  engine::QueryRun slow;
  {
    faultlib::ScopedFaultInjection inject(&injector);
    slow = replica->ExecutePlan(q, planned.plan, 0);
  }
  EXPECT_TRUE(slow.status.ok());
  EXPECT_EQ(slow.result_rows, clean.result_rows);
  EXPECT_GT(slow.execution_ns, clean.execution_ns);
}

}  // namespace
}  // namespace lqolab
