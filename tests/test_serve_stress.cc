// Concurrency stress tests for the serve/ subsystem, built to run under
// ThreadSanitizer (-DLQOLAB_SANITIZE=thread, ctest -L stress): hammer the
// sharded plan cache from many threads, check the hot-swap slot never
// serves a torn snapshot, and swap models under live serving load.

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "lqo/native_passthrough.h"
#include "obs/metrics.h"
#include "query/job_workload.h"
#include "serve/hot_swap.h"
#include "serve/plan_cache.h"
#include "serve/query_server.h"
#include "util/rng.h"

namespace lqolab {
namespace {

using serve::CachedPlan;
using serve::PlanCache;
using serve::PlanCacheOptions;
using serve::QueryServer;
using serve::RouteMode;
using serve::ServedQuery;
using serve::ServerOptions;

TEST(ServeStress, PlanCacheConcurrentInsertLookup) {
  PlanCacheOptions options;
  options.shards = 4;
  options.capacity_per_shard = 8;
  PlanCache cache(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr uint64_t kKeySpace = 96;  // 3x capacity: constant eviction churn

  std::vector<obs::MetricsRegistry> registries(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      obs::MetricsScope scope(&registries[static_cast<size_t>(t)]);
      util::Rng rng(util::MixSeed(42, static_cast<uint64_t>(t)));
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint64_t key = rng.Next() % kKeySpace;
        if (const auto hit = cache.Lookup(key)) {
          // Payload integrity: a plan fetched under churn still carries the
          // marker its inserter wrote for this key.
          EXPECT_EQ(hit->estimated_cost, static_cast<double>(key));
        } else {
          CachedPlan marked;
          marked.estimated_cost = static_cast<double>(key);
          cache.Insert(key,
                       std::make_shared<const CachedPlan>(std::move(marked)));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_LE(cache.size(), 4 * 8);
  obs::MetricsRegistry merged;
  for (const auto& registry : registries) merged.MergeFrom(registry);
  // Every lookup was either a hit or a miss, and every miss inserted.
  EXPECT_EQ(merged.Get(obs::Counter::kPlanCacheHits) +
                merged.Get(obs::Counter::kPlanCacheMisses),
            kThreads * kOpsPerThread);
  EXPECT_GT(merged.Get(obs::Counter::kPlanCacheEvictions), 0);
}

TEST(ServeStress, HotSwapSnapshotsAreNeverTorn) {
  // The payload encodes its own version; a torn read (pointer from one
  // publish, version from another) would break the equality.
  struct Payload {
    uint64_t a;
    uint64_t b;
  };
  serve::HotSwapSlot<const Payload> slot;

  constexpr int kReaders = 4;
  constexpr uint64_t kPublishes = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snapshot = slot.Acquire();
        if (snapshot.value == nullptr) continue;
        EXPECT_EQ(snapshot.value->a, snapshot.value->b);
        EXPECT_EQ(snapshot.value->a, snapshot.version);
        // Versions only move forward for any single reader.
        EXPECT_GE(snapshot.version, last_version);
        last_version = snapshot.version;
      }
    });
  }
  for (uint64_t i = 1; i <= kPublishes; ++i) {
    const uint64_t version =
        slot.Publish(std::make_shared<const Payload>(Payload{i, i}));
    EXPECT_EQ(version, i);
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(slot.version(), kPublishes);
}

TEST(ServeStress, ModelSwapUnderServingLoad) {
  engine::Database::Options db_options;
  db_options.profile = datagen::ScaleProfile::Small();
  db_options.seed = 42;
  const auto db = engine::Database::CreateImdb(db_options);
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  // Per-query oracle answers, computed on an isolated replica with the same
  // replay protocol the server uses.
  std::unordered_map<std::string, int64_t> expected_rows;
  {
    const auto replica = db->CloneContextForWorker();
    for (size_t i = 0; i < workload.size(); i += 4) {
      const query::Query& q = workload[i];
      const auto planned = replica->PlanQuery(q);
      replica->BeginQueryReplay(db->seed(), q, /*salt=*/0);
      expected_rows[q.id] =
          replica->ExecutePlan(q, planned.plan, planned.planning_ns)
              .result_rows;
    }
  }

  ServerOptions options;
  options.workers = 4;
  options.route = RouteMode::kLqo;
  QueryServer server(db.get(), options);
  server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());

  // Swap models continuously while queries stream through the server.
  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    while (!stop_swapping.load(std::memory_order_acquire)) {
      server.PublishModel(std::make_shared<lqo::NativePassthroughOptimizer>());
      std::this_thread::yield();
    }
  });

  std::vector<std::pair<std::string, std::future<ServedQuery>>> futures;
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (size_t i = 0; i < workload.size(); i += 4) {
      futures.emplace_back(workload[i].id, server.Submit(workload[i]));
    }
  }
  for (auto& [id, future] : futures) {
    const ServedQuery served = future.get();
    // Every query must return the oracle answer no matter which model
    // snapshot planned it (the passthrough always plans natively, and
    // result rows are noise-independent).
    EXPECT_EQ(served.result_rows, expected_rows.at(id)) << id;
    EXPECT_FALSE(served.fell_back);
  }
  stop_swapping.store(true, std::memory_order_release);
  swapper.join();
  server.Drain();

  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeQueries),
            static_cast<int64_t>(futures.size()));
  EXPECT_GT(server.model_version(), 1u);
}

TEST(ServeStress, ShutdownRacingSubmittersResolvesEveryFuture) {
  engine::Database::Options db_options;
  db_options.profile = datagen::ScaleProfile::Small();
  db_options.seed = 42;
  const auto db = engine::Database::CreateImdb(db_options);
  const auto workload = query::BuildJobLiteWorkload(db->schema());

  ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 16;  // Small queue: submitters block mid-race.
  QueryServer server(db.get(), options);

  constexpr int kSubmitters = 6;
  constexpr int kPerSubmitter = 40;
  std::vector<std::vector<std::future<ServedQuery>>> futures(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      auto& mine = futures[static_cast<size_t>(t)];
      mine.reserve(kPerSubmitter);
      for (int i = 0; i < kPerSubmitter; ++i) {
        mine.push_back(server.Submit(
            workload[static_cast<size_t>(t * kPerSubmitter + i) %
                     workload.size()]));
      }
    });
  }
  // Shut down while submitters are still pushing: some queries complete,
  // some drain, some are refused at admission — but every future must
  // resolve, with either a real answer or an explicit kShutdown.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server.Shutdown();
  for (auto& thread : submitters) thread.join();

  int64_t completed = 0;
  int64_t refused = 0;
  for (auto& lane : futures) {
    for (auto& future : lane) {
      const ServedQuery served = future.get();
      if (served.status.ok()) {
        ++completed;
        EXPECT_GE(served.result_rows, 0);
      } else {
        ASSERT_EQ(served.status.code(), util::StatusCode::kShutdown)
            << served.status.ToString();
        ++refused;
        EXPECT_EQ(served.result_rows, 0);
      }
    }
  }
  EXPECT_EQ(completed + refused, kSubmitters * kPerSubmitter);

  // Ticket accounting: every admitted query was either processed once or
  // surfaced as an explicit shutdown drop — none vanished.
  const obs::MetricsRegistry metrics = server.SnapshotMetrics();
  EXPECT_EQ(metrics.Get(obs::Counter::kServeQueries) +
                metrics.Get(obs::Counter::kServeShutdownDropped),
            kSubmitters * kPerSubmitter);

  // Shutdown is idempotent, and late admissions still resolve.
  server.Shutdown();
  EXPECT_EQ(server.Submit(workload[0]).get().status.code(),
            util::StatusCode::kShutdown);
}

}  // namespace
}  // namespace lqolab
