// Tests for the learned-query-optimizer layer: encodings (incl. the
// invariance property of §4.1), value networks, plan search, and the four
// method reimplementations.

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "lqo/balsa.h"
#include "lqo/bao.h"
#include "lqo/encoding.h"
#include "lqo/leon.h"
#include "lqo/neo.h"
#include "lqo/plan_search.h"
#include "lqo/value_net.h"
#include "query/job_workload.h"

namespace lqolab::lqo {
namespace {

using engine::Database;
using engine::DbConfig;
using optimizer::JoinAlgo;
using optimizer::PhysicalPlan;
using optimizer::ScanType;
using query::Query;

class LqoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    db_ = Database::CreateImdb(options).release();
    workload_ =
        new std::vector<Query>(query::BuildJobLiteWorkload(db_->schema()));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
    db_ = nullptr;
    workload_ = nullptr;
  }
  /// A small train set (first variant of the first 12 templates).
  static std::vector<Query> SmallTrainSet() {
    std::vector<Query> train;
    std::set<int32_t> seen;
    for (const Query& q : *workload_) {
      if (seen.insert(q.template_id).second && q.relation_count() <= 9) {
        train.push_back(q);
      }
      if (train.size() >= 12) break;
    }
    return train;
  }
  static Database* db_;
  static std::vector<Query>* workload_;
};

Database* LqoTest::db_ = nullptr;
std::vector<Query>* LqoTest::workload_ = nullptr;

TEST_F(LqoTest, QueryEncoderShapeAndContent) {
  const QueryEncoder encoder(&db_->context(), &db_->planner().estimator());
  const Query& q = (*workload_)[0];
  const auto features = encoder.Encode(q);
  ASSERT_EQ(static_cast<int32_t>(features.size()), encoder.dim());
  // Table-count slots: exactly the query's tables are non-zero.
  const int32_t tables = db_->schema().table_count();
  int32_t nonzero = 0;
  for (int32_t t = 0; t < tables; ++t) {
    if (features[static_cast<size_t>(t)] > 0) ++nonzero;
  }
  std::set<catalog::TableId> distinct;
  for (const auto& rel : q.relations) distinct.insert(rel.table);
  EXPECT_EQ(nonzero, static_cast<int32_t>(distinct.size()));
}

TEST_F(LqoTest, PlanEncoderDims) {
  const PlanEncoder full(&db_->context(), &db_->planner().estimator(),
                         PlanEncodingStyle::kWithTableIdentity);
  const PlanEncoder bao(&db_->context(), &db_->planner().estimator(),
                        PlanEncodingStyle::kCardinalityOnly);
  EXPECT_EQ(full.node_dim(), 9 + db_->schema().table_count());
  EXPECT_EQ(bao.node_dim(), 10);
}

TEST_F(LqoTest, BaoEncodingViolatesInvariance) {
  // The paper's §4.1 thought experiment: two scans of DIFFERENT tables with
  // (near-)identical cardinalities encode identically under Bao's
  // cardinality-only encoding but differently under the full encoding.
  Query q;
  q.id = "invariance_test";
  q.relations = {{catalog::imdb::kMovieInfo, "mi"},
                 {catalog::imdb::kTitle, "t"},
                 {catalog::imdb::kCastInfo, "ci"}};
  q.edges = {{1, 0, 0, 1}, {1, 0, 2, 2}};
  PhysicalPlan scan_mi;
  scan_mi.AddScan(0, ScanType::kSeq);
  PhysicalPlan scan_t;
  scan_t.AddScan(1, ScanType::kSeq);

  const PlanEncoder bao(&db_->context(), &db_->planner().estimator(),
                        PlanEncodingStyle::kCardinalityOnly);
  const PlanEncoder full(&db_->context(), &db_->planner().estimator(),
                         PlanEncodingStyle::kWithTableIdentity);
  const auto bao_mi = bao.EncodeNode(q, scan_mi, 0);
  const auto bao_t = bao.EncodeNode(q, scan_t, 0);
  const auto full_mi = full.EncodeNode(q, scan_mi, 0);
  const auto full_t = full.EncodeNode(q, scan_t, 0);
  // Bao: only the cardinality slot differs (same operator one-hots, no
  // table identity). Full: the table one-hot differs structurally.
  int bao_diffs = 0;
  for (size_t i = 0; i < bao_mi.size(); ++i) {
    if (bao_mi[i] != bao_t[i]) ++bao_diffs;
  }
  EXPECT_LE(bao_diffs, 2);  // at most the two cardinality-derived slots
  bool full_identity_differs = false;
  for (size_t i = 9; i < full_mi.size(); ++i) {
    if (full_mi[i] != full_t[i]) full_identity_differs = true;
  }
  EXPECT_TRUE(full_identity_differs);
}

TEST_F(LqoTest, LatencyTargetRoundTrip) {
  for (util::VirtualNanos ns :
       {int64_t{1'000'000}, int64_t{50'000'000}, int64_t{3'000'000'000}}) {
    const float target = LatencyToTarget(ns);
    const util::VirtualNanos back = TargetToLatency(target);
    EXPECT_NEAR(static_cast<double>(back), static_cast<double>(ns),
                0.02 * static_cast<double>(ns));
  }
  EXPECT_LT(LatencyToTarget(1'000'000), LatencyToTarget(1'000'000'000));
}

TEST_F(LqoTest, ValueNetTrainsTowardTargets) {
  const PlanEncoder encoder(&db_->context(), &db_->planner().estimator(),
                            PlanEncodingStyle::kWithTableIdentity);
  const QueryEncoder qencoder(&db_->context(), &db_->planner().estimator());
  TreeValueNet net(encoder.node_dim(), qencoder.dim(), 32, 7);
  ml::Adam adam(net.Params(), 1e-3);
  const Query& q = (*workload_)[0];
  const auto planned = db_->PlanQuery(q);
  const auto qenc = qencoder.Encode(q);
  const float target = 0.8f;
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 60; ++step) {
    const double loss = net.TrainRegression(qenc, q, planned.plan, encoder,
                                            target, &adam);
    if (step == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
  EXPECT_NEAR(net.Score(qenc, q, planned.plan, encoder), target, 0.3);
  EXPECT_GT(net.eval_count(), 0);
}

TEST_F(LqoTest, ValueNetPairwiseLearnsOrder) {
  const PlanEncoder encoder(&db_->context(), &db_->planner().estimator(),
                            PlanEncodingStyle::kWithTableIdentity);
  const QueryEncoder qencoder(&db_->context(), &db_->planner().estimator());
  TreeValueNet net(encoder.node_dim(), qencoder.dim(), 32, 8);
  ml::Adam adam(net.Params(), 2e-3);
  const Query& q = (*workload_)[10];
  const auto planned = db_->PlanQuery(q);
  uint64_t rng_state = 5;
  const PhysicalPlan random =
      RandomPlan(q, db_->planner().cost_model(), &rng_state);
  const auto qenc = qencoder.Encode(q);
  for (int step = 0; step < 80; ++step) {
    net.TrainPairwise(qenc, q, planned.plan, random, encoder, &adam);
  }
  EXPECT_LT(net.Score(qenc, q, planned.plan, encoder),
            net.Score(qenc, q, random, encoder));
}

TEST_F(LqoTest, CombinePlansRebasesIndices) {
  PhysicalPlan left;
  left.AddScan(0, ScanType::kSeq);
  PhysicalPlan right;
  const int32_t a = right.AddScan(1, ScanType::kSeq);
  const int32_t b = right.AddScan(2, ScanType::kSeq);
  right.AddJoin(JoinAlgo::kHash, a, b);
  const PhysicalPlan combined = CombinePlans(left, right, JoinAlgo::kMerge);
  EXPECT_EQ(combined.nodes.size(), 5u);
  EXPECT_EQ(combined.node(combined.root).mask, 0b111u);
  EXPECT_EQ(combined.node(combined.root).algo, JoinAlgo::kMerge);
}

TEST_F(LqoTest, GreedySearchProducesValidPlans) {
  for (size_t i = 0; i < workload_->size(); i += 19) {
    const Query& q = (*workload_)[i];
    const SearchResult result = GreedyBottomUpSearch(
        q, db_->planner().cost_model(), [&](const PhysicalPlan& plan) {
          return db_->planner().EstimatePlanCost(q, plan);
        });
    result.plan.Validate(q);
    EXPECT_GT(result.evals, 0) << q.id;
  }
}

TEST_F(LqoTest, GreedySearchWithCostScorerNearDpQuality) {
  // Greedy search guided by the true cost model should be within a modest
  // factor of DP's estimated cost on small queries.
  const Query q = query::BuildJobQuery(db_->schema(), 3, 'a');
  const SearchResult greedy = GreedyBottomUpSearch(
      q, db_->planner().cost_model(), [&](const PhysicalPlan& plan) {
        return db_->planner().EstimatePlanCost(q, plan);
      });
  const auto dp = db_->planner().PlanDynamicProgramming(q, true);
  const double greedy_cost = db_->planner().EstimatePlanCost(q, greedy.plan);
  EXPECT_LT(greedy_cost, dp.estimated_cost * 20.0);
}

TEST_F(LqoTest, RandomPlanValidAndDiverse) {
  const Query& q = (*workload_)[30];
  uint64_t state = 11;
  std::set<std::string> shapes;
  for (int i = 0; i < 10; ++i) {
    const PhysicalPlan plan =
        RandomPlan(q, db_->planner().cost_model(), &state);
    plan.Validate(q);
    shapes.insert(plan.ToString(q));
  }
  EXPECT_GT(shapes.size(), 3u);
}

TEST_F(LqoTest, BaoHintSetsRestoreConfig) {
  const DbConfig before = db_->config();
  BaoOptimizer bao;
  const Query& q = (*workload_)[2];
  const Prediction prediction = bao.Plan(q, db_);
  prediction.plan.Validate(q);
  EXPECT_EQ(db_->config().enable_nestloop, before.enable_nestloop);
  EXPECT_EQ(db_->config().enable_hashjoin, before.enable_hashjoin);
  // Bao reports its time inside planning (DBMS integration).
  EXPECT_EQ(prediction.inference_ns, 0);
  EXPECT_GT(prediction.planning_ns, 0);
}

TEST_F(LqoTest, DefaultHintSetsDisableDistinctOperators) {
  const auto sets = DefaultHintSets();
  ASSERT_EQ(sets.size(), 6u);
  std::set<std::string> names;
  for (const auto& hs : sets) names.insert(hs.name);
  EXPECT_EQ(names.size(), sets.size());
  EXPECT_TRUE(sets[0].enable_nestloop && sets[0].enable_hashjoin);
  EXPECT_FALSE(sets[1].enable_nestloop);
}

TEST_F(LqoTest, BaoTrainsAndPlans) {
  BaoOptimizer::Options options;
  options.epochs = 2;
  options.train_epochs = 4;
  BaoOptimizer bao(options);
  const auto train = SmallTrainSet();
  const TrainReport report = bao.Train(train, db_);
  EXPECT_EQ(report.plans_executed,
            static_cast<int64_t>(train.size()) * options.epochs);
  EXPECT_GT(report.nn_updates, 0);
  EXPECT_GT(report.training_time_ns, 0);
  const Prediction prediction = bao.Plan((*workload_)[40], db_);
  prediction.plan.Validate((*workload_)[40]);
}

TEST_F(LqoTest, NeoTrainsAndPlans) {
  NeoOptimizer::Options options;
  options.iterations = 1;
  options.train_epochs = 3;
  NeoOptimizer neo(options);
  const auto train = SmallTrainSet();
  const TrainReport report = neo.Train(train, db_);
  // Bootstrap + one on-policy pass.
  EXPECT_EQ(report.plans_executed, static_cast<int64_t>(train.size()) * 2);
  EXPECT_GT(report.nn_evals, 0);
  const Query& test = (*workload_)[50];
  const Prediction prediction = neo.Plan(test, db_);
  prediction.plan.Validate(test);
  EXPECT_GT(prediction.inference_ns, 0);
}

TEST_F(LqoTest, BalsaTrainsWithoutExpertPlans) {
  BalsaOptimizer::Options options;
  options.pretrain_samples_per_query = 3;
  options.pretrain_epochs = 1;
  options.iterations = 1;
  options.train_epochs = 2;
  BalsaOptimizer balsa(options);
  const auto train = SmallTrainSet();
  const TrainReport report = balsa.Train(train, db_);
  // Pretraining consults the cost model, not the executor.
  EXPECT_EQ(report.planner_calls,
            static_cast<int64_t>(train.size()) *
                options.pretrain_samples_per_query);
  EXPECT_GT(report.plans_executed, 0);
  const Query& test = (*workload_)[60];
  const Prediction prediction = balsa.Plan(test, db_);
  prediction.plan.Validate(test);
}

TEST_F(LqoTest, LeonEnumeratesAndRanks) {
  LeonOptimizer::Options options;
  options.beam_masks = 6;
  options.topk_per_mask = 2;
  options.exec_per_query = 2;
  options.pair_epochs = 2;
  LeonOptimizer leon(options);
  std::vector<Query> train = {(*workload_)[0], (*workload_)[4]};
  const TrainReport report = leon.Train(train, db_);
  EXPECT_GT(report.planner_calls, 100);  // subplan cost calls dominate
  const Query& test = (*workload_)[8];
  const Prediction prediction = leon.Plan(test, db_);
  prediction.plan.Validate(test);
  // LEON's inference is dominated by per-subplan cost calls.
  EXPECT_GT(prediction.inference_ns, 1'000'000'000);
}

TEST_F(LqoTest, LeonRespectsTrainingBudget) {
  // The budget is checked before each query: with a 1 ns budget only the
  // first query is processed before training stops.
  LeonOptimizer::Options options;
  options.beam_masks = 6;
  options.topk_per_mask = 2;
  options.exec_per_query = 2;
  options.train_budget_ns = 1;
  LeonOptimizer leon(options);
  std::vector<Query> train = {(*workload_)[0], (*workload_)[4],
                              (*workload_)[8]};
  const TrainReport report = leon.Train(train, db_);
  EXPECT_LE(report.plans_executed, options.exec_per_query);
  EXPECT_GT(report.plans_executed, 0);
}

TEST_F(LqoTest, Table1HasEightRows) {
  const auto rows = Table1EncodingSpecs();
  ASSERT_EQ(rows.size(), 8u);
  std::set<std::string> names;
  for (const auto& row : rows) names.insert(row.name);
  EXPECT_TRUE(names.count("Neo"));
  EXPECT_TRUE(names.count("Bao"));
  EXPECT_TRUE(names.count("Balsa"));
  EXPECT_TRUE(names.count("LEON"));
  EXPECT_TRUE(names.count("RTOS"));
  EXPECT_TRUE(names.count("Lero"));
  EXPECT_TRUE(names.count("LOGER"));
  EXPECT_TRUE(names.count("HybridQO"));
  // Bao's distinguishing properties from Table 1.
  for (const auto& row : rows) {
    if (row.name == "Bao") {
      EXPECT_EQ(row.table_identifier, "-");
      EXPECT_EQ(row.model_output, "Hint set");
      EXPECT_EQ(row.dbms_integration, "yes");
    }
  }
}

TEST_F(LqoTest, TrainingDeterministicForSeed) {
  // Identical options + database state snapshots produce identical plans.
  Database::Options options;
  options.profile = datagen::ScaleProfile::Small();
  options.seed = 42;
  auto db1 = Database::CreateImdb(options);
  auto db2 = Database::CreateImdb(options);
  BaoOptimizer::Options bao_options;
  bao_options.epochs = 1;
  bao_options.train_epochs = 2;
  BaoOptimizer bao1(bao_options);
  BaoOptimizer bao2(bao_options);
  const auto train = SmallTrainSet();
  bao1.Train(train, db1.get());
  bao2.Train(train, db2.get());
  const Query& q = (*workload_)[45];
  EXPECT_EQ(bao1.Plan(q, db1.get()).plan.ToString(q),
            bao2.Plan(q, db2.get()).plan.ToString(q));
}

}  // namespace
}  // namespace lqolab::lqo
