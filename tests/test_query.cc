// Tests for the query model, predicate binding, and the JOB-lite workload.

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "catalog/imdb_schema.h"
#include "exec/oracle.h"
#include "query/job_workload.h"
#include "query/predicate_binding.h"
#include "query/query.h"

namespace lqolab::query {
namespace {

class QueryModelTest : public ::testing::Test {
 protected:
  QueryModelTest() : schema_(catalog::BuildImdbSchema()) {
    // A 4-relation chain: A - B - C with an extra edge A - C and a dangler D.
    q_.id = "test";
    q_.relations = {{catalog::imdb::kTitle, "t"},
                    {catalog::imdb::kMovieKeyword, "mk"},
                    {catalog::imdb::kKeyword, "k"},
                    {catalog::imdb::kMovieInfo, "mi"}};
    q_.edges = {{0, 0, 1, 1},   // t.id = mk.movie_id
                {1, 2, 2, 0},   // mk.keyword_id = k.id
                {0, 0, 3, 1}};  // t.id = mi.movie_id
  }
  catalog::Schema schema_;
  Query q_;
};

TEST_F(QueryModelTest, MaskHelpers) {
  EXPECT_EQ(MaskOf(0), 1u);
  EXPECT_EQ(MaskOf(3), 8u);
  EXPECT_EQ(q_.FullMask(), 0b1111u);
  EXPECT_EQ(q_.join_count(), 3);
}

TEST_F(QueryModelTest, Adjacency) {
  EXPECT_EQ(q_.AdjacencyMask(0), MaskOf(1) | MaskOf(3));
  EXPECT_EQ(q_.AdjacencyMask(2), MaskOf(1));
}

TEST_F(QueryModelTest, Connectivity) {
  EXPECT_TRUE(q_.IsConnected(0b1111));
  EXPECT_TRUE(q_.IsConnected(0b0011));
  EXPECT_TRUE(q_.IsConnected(0b1001));  // t-mi
  EXPECT_FALSE(q_.IsConnected(0b1100)); // k and mi are not adjacent
  EXPECT_FALSE(q_.IsConnected(0b0101)); // t and k are not adjacent
  EXPECT_TRUE(q_.IsConnected(0b0001));  // singleton
  EXPECT_FALSE(q_.IsConnected(0));
}

TEST_F(QueryModelTest, EdgesBetweenNormalizesDirection) {
  const auto edges = q_.EdgesBetween(MaskOf(2), MaskOf(1));
  ASSERT_EQ(edges.size(), 1u);
  // Left side must be within the first mask (k).
  EXPECT_EQ(edges[0].left_alias, 2);
  EXPECT_EQ(edges[0].right_alias, 1);
}

TEST_F(QueryModelTest, HasEdgeBetween) {
  EXPECT_TRUE(q_.HasEdgeBetween(0b0001, 0b0010));
  EXPECT_FALSE(q_.HasEdgeBetween(0b0001, 0b0100));
  EXPECT_TRUE(q_.HasEdgeBetween(0b0011, 0b0100));
}

TEST_F(QueryModelTest, ToSqlMentionsEverything) {
  Predicate p;
  p.alias = 0;
  p.column = 3;  // production_year
  p.kind = Predicate::Kind::kRange;
  p.int_values = {1990, 2000};
  q_.predicates.push_back(p);
  const std::string sql = q_.ToSql(schema_);
  EXPECT_NE(sql.find("SELECT COUNT(*)"), std::string::npos);
  EXPECT_NE(sql.find("title AS t"), std::string::npos);
  EXPECT_NE(sql.find("t.id = mk.movie_id"), std::string::npos);
  EXPECT_NE(sql.find("BETWEEN 1990 AND 2000"), std::string::npos);
}

TEST(PredicateBinding, ResolvesStringLiterals) {
  catalog::TableDef def;
  def.name = "d";
  def.columns = {{"id", catalog::ColumnType::kInt},
                 {"s", catalog::ColumnType::kString}};
  storage::Table table(0, def);
  const storage::Value hello = table.column(1).InternString("hello");
  table.AppendRow({1, hello});
  Predicate p;
  p.alias = 0;
  p.column = 1;
  p.kind = Predicate::Kind::kIn;
  p.str_values = {"hello", "missing"};
  const BoundPredicate bound = BindPredicate(p, table);
  ASSERT_EQ(bound.values.size(), 1u);  // "missing" resolves to nothing
  EXPECT_TRUE(bound.Matches(hello));
  EXPECT_FALSE(bound.Matches(hello + 1));
  EXPECT_FALSE(bound.Matches(storage::kNullValue));
}

TEST(PredicateBinding, NullPredicates) {
  catalog::TableDef def;
  def.name = "d";
  def.columns = {{"id", catalog::ColumnType::kInt},
                 {"v", catalog::ColumnType::kInt}};
  storage::Table table(0, def);
  Predicate is_null;
  is_null.kind = Predicate::Kind::kIsNull;
  is_null.column = 1;
  Predicate not_null;
  not_null.kind = Predicate::Kind::kNotNull;
  not_null.column = 1;
  EXPECT_TRUE(BindPredicate(is_null, table).Matches(storage::kNullValue));
  EXPECT_FALSE(BindPredicate(is_null, table).Matches(5));
  EXPECT_FALSE(BindPredicate(not_null, table).Matches(storage::kNullValue));
  EXPECT_TRUE(BindPredicate(not_null, table).Matches(5));
}

TEST(PredicateBinding, RangeSemantics) {
  catalog::TableDef def;
  def.name = "d";
  def.columns = {{"id", catalog::ColumnType::kInt},
                 {"v", catalog::ColumnType::kInt}};
  storage::Table table(0, def);
  Predicate p;
  p.column = 1;
  p.kind = Predicate::Kind::kRange;
  p.int_values = {10, 20};
  const BoundPredicate bound = BindPredicate(p, table);
  EXPECT_TRUE(bound.Matches(10));
  EXPECT_TRUE(bound.Matches(20));
  EXPECT_FALSE(bound.Matches(9));
  EXPECT_FALSE(bound.Matches(21));
  EXPECT_FALSE(bound.Matches(storage::kNullValue));
}

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : schema_(catalog::BuildImdbSchema()),
        workload_(BuildJobLiteWorkload(schema_)) {}
  catalog::Schema schema_;
  std::vector<Query> workload_;
};

TEST_F(WorkloadTest, Has113QueriesOver33Templates) {
  EXPECT_EQ(workload_.size(), static_cast<size_t>(kJobQueryCount));
  std::set<int32_t> templates;
  for (const auto& q : workload_) templates.insert(q.template_id);
  EXPECT_EQ(templates.size(), static_cast<size_t>(kJobTemplateCount));
}

TEST_F(WorkloadTest, VariantCountsMatchJob) {
  std::map<int32_t, int32_t> counts;
  for (const auto& q : workload_) ++counts[q.template_id];
  const auto& expected = JobVariantCounts();
  for (int32_t t = 1; t <= kJobTemplateCount; ++t) {
    EXPECT_EQ(counts[t], expected[static_cast<size_t>(t - 1)]) << t;
  }
}

TEST_F(WorkloadTest, IdsUnique) {
  std::set<std::string> ids;
  for (const auto& q : workload_) ids.insert(q.id);
  EXPECT_EQ(ids.size(), workload_.size());
}

TEST_F(WorkloadTest, AllConnected) {
  for (const auto& q : workload_) {
    EXPECT_TRUE(q.IsConnected(q.FullMask())) << q.id;
  }
}

TEST_F(WorkloadTest, JoinCountDistributionMatchesJob) {
  int32_t min_joins = 100;
  int32_t max_joins = 0;
  int32_t geqo_range = 0;  // queries with >= 12 FROM items
  for (const auto& q : workload_) {
    min_joins = std::min(min_joins, q.join_count());
    max_joins = std::max(max_joins, q.join_count());
    if (q.relation_count() >= 12) ++geqo_range;
  }
  EXPECT_EQ(min_joins, 3);   // smallest JOB queries have 3 joins
  EXPECT_EQ(max_joins, 16);  // JOB 29 has 17 aliased tables
  EXPECT_GT(geqo_range, 10); // a meaningful set falls in GEQO territory
}

TEST_F(WorkloadTest, VariantsOfFamilyShareJoinStructure) {
  // Variants of one base query share tables and join graph; only filters
  // differ (paper §7.2).
  for (size_t i = 0; i + 1 < workload_.size(); ++i) {
    const Query& a = workload_[i];
    const Query& b = workload_[i + 1];
    if (a.template_id != b.template_id) continue;
    ASSERT_EQ(a.relations.size(), b.relations.size()) << a.id;
    for (size_t r = 0; r < a.relations.size(); ++r) {
      EXPECT_EQ(a.relations[r].table, b.relations[r].table) << a.id;
    }
    ASSERT_EQ(a.edges.size(), b.edges.size()) << a.id;
  }
}

TEST_F(WorkloadTest, VariantsDifferInPredicates) {
  int differing_pairs = 0;
  for (size_t i = 0; i + 1 < workload_.size(); ++i) {
    const Query& a = workload_[i];
    const Query& b = workload_[i + 1];
    if (a.template_id != b.template_id) continue;
    std::string sig_a;
    std::string sig_b;
    for (const auto& p : a.predicates) sig_a += p.Signature();
    for (const auto& p : b.predicates) sig_b += p.Signature();
    if (sig_a != sig_b) ++differing_pairs;
  }
  EXPECT_GT(differing_pairs, 60);
}

TEST_F(WorkloadTest, EveryAliasReachable) {
  for (const auto& q : workload_) {
    for (AliasId a = 0; a < q.relation_count(); ++a) {
      EXPECT_NE(q.AdjacencyMask(a), 0u) << q.id << " alias " << a;
    }
  }
}

TEST_F(WorkloadTest, AliasNamesUniqueWithinQuery) {
  for (const auto& q : workload_) {
    std::set<std::string> names;
    for (const auto& rel : q.relations) names.insert(rel.alias);
    EXPECT_EQ(names.size(), q.relations.size()) << q.id;
  }
}

TEST_F(WorkloadTest, FingerprintsUniqueAndStable) {
  std::unordered_set<uint64_t> fingerprints;
  for (const auto& q : workload_) {
    fingerprints.insert(exec::QueryFingerprint(q));
  }
  EXPECT_EQ(fingerprints.size(), workload_.size());
  // Stable across rebuilds of the same workload.
  const auto again = BuildJobLiteWorkload(schema_);
  for (size_t i = 0; i < workload_.size(); ++i) {
    EXPECT_EQ(exec::QueryFingerprint(workload_[i]),
              exec::QueryFingerprint(again[i]));
  }
}

TEST_F(WorkloadTest, BuildSingleQueryMatchesWorkloadEntry) {
  const Query q = BuildJobQuery(schema_, 13, 'b');
  const auto it = std::find_if(workload_.begin(), workload_.end(),
                               [](const Query& w) { return w.id == "13b"; });
  ASSERT_NE(it, workload_.end());
  EXPECT_EQ(exec::QueryFingerprint(q), exec::QueryFingerprint(*it));
}

}  // namespace
}  // namespace lqolab::query
