// Tests for the ML substrate: matrices, autodiff (numerical gradient
// checks), layers, optimizers, losses.

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "ml/autodiff.h"
#include "ml/matrix.h"
#include "ml/nn.h"
#include "util/rng.h"

namespace lqolab::ml {
namespace {

TEST(Matrix, BasicAccess) {
  Matrix m(2, 3);
  m.at(1, 2) = 5.0f;
  EXPECT_EQ(m.at(1, 2), 5.0f);
  EXPECT_EQ(m.at(0, 0), 0.0f);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
}

TEST(Matrix, RowVector) {
  const Matrix v = Matrix::RowVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(v.rows(), 1);
  EXPECT_EQ(v.cols(), 3);
  EXPECT_EQ(v.at(0, 1), 2.0f);
}

TEST(Matrix, KaimingBounded) {
  util::Rng rng(3);
  const Matrix m = Matrix::KaimingUniform(10, 10, 10, &rng);
  const float bound = std::sqrt(6.0f / 10.0f);
  for (float x : m.data()) {
    EXPECT_LE(std::fabs(x), bound);
  }
}

TEST(Autodiff, ForwardMatMul) {
  Graph g;
  Matrix a(1, 2);
  a.at(0, 0) = 1.0f;
  a.at(0, 1) = 2.0f;
  Matrix b(2, 2);
  b.at(0, 0) = 3.0f;
  b.at(0, 1) = 4.0f;
  b.at(1, 0) = 5.0f;
  b.at(1, 1) = 6.0f;
  const NodeId out = g.MatMul(g.Input(a), g.Input(b));
  EXPECT_EQ(g.value(out).at(0, 0), 13.0f);
  EXPECT_EQ(g.value(out).at(0, 1), 16.0f);
}

/// Numerical gradient check: builds the graph twice per parameter entry
/// with +/- epsilon perturbations and compares with the analytic gradient.
void GradientCheck(
    const std::function<NodeId(Graph*, const Matrix*, Matrix*)>& build,
    Matrix param, double tolerance = 2e-2) {
  Matrix grad(param.rows(), param.cols());
  {
    Graph g;
    const NodeId loss = build(&g, &param, &grad);
    g.Backward(loss);
  }
  const float eps = 1e-3f;
  for (int64_t i = 0; i < param.size(); ++i) {
    const size_t idx = static_cast<size_t>(i);
    Matrix plus = param;
    plus.data()[idx] += eps;
    Matrix minus = param;
    minus.data()[idx] -= eps;
    Matrix unused_grad(param.rows(), param.cols());
    Graph gp;
    const double fp = gp.scalar(build(&gp, &plus, &unused_grad));
    Graph gm;
    const double fm = gm.scalar(build(&gm, &minus, &unused_grad));
    const double numeric = (fp - fm) / (2.0 * eps);
    const double analytic = grad.data()[idx];
    EXPECT_NEAR(analytic, numeric,
                tolerance * std::max(1.0, std::fabs(numeric)))
        << "entry " << i;
  }
}

TEST(Autodiff, GradientMatMul) {
  util::Rng rng(11);
  Matrix w = Matrix::KaimingUniform(3, 2, 3, &rng);
  GradientCheck(
      [](Graph* g, const Matrix* p, Matrix* grad) {
        Matrix x(1, 3);
        x.at(0, 0) = 0.5f;
        x.at(0, 1) = -1.0f;
        x.at(0, 2) = 2.0f;
        return g->Sum(g->MatMul(g->Input(x), g->Parameter(p, grad)));
      },
      w);
}

TEST(Autodiff, GradientReluChain) {
  util::Rng rng(13);
  Matrix w = Matrix::KaimingUniform(4, 4, 4, &rng);
  GradientCheck(
      [](Graph* g, const Matrix* p, Matrix* grad) {
        Matrix x(1, 4);
        for (int i = 0; i < 4; ++i) x.at(0, i) = 0.3f * (i - 1);
        const NodeId h = g->Relu(g->MatMul(g->Input(x), g->Parameter(p, grad)));
        return g->Mean(g->Mul(h, h));
      },
      w);
}

TEST(Autodiff, GradientTanhSigmoidSoftplus) {
  util::Rng rng(17);
  Matrix w = Matrix::KaimingUniform(2, 3, 2, &rng);
  GradientCheck(
      [](Graph* g, const Matrix* p, Matrix* grad) {
        Matrix x(1, 2);
        x.at(0, 0) = 0.7f;
        x.at(0, 1) = -0.4f;
        const NodeId h = g->MatMul(g->Input(x), g->Parameter(p, grad));
        return g->Sum(g->Softplus(g->Sigmoid(g->Tanh(h))));
      },
      w);
}

TEST(Autodiff, GradientBroadcastAddAndConcat) {
  util::Rng rng(19);
  Matrix bias = Matrix::KaimingUniform(1, 3, 1, &rng);
  GradientCheck(
      [](Graph* g, const Matrix* p, Matrix* grad) {
        Matrix x(2, 3);
        for (int r = 0; r < 2; ++r) {
          for (int c = 0; c < 3; ++c) x.at(r, c) = 0.1f * (r + c);
        }
        const NodeId broadcast = g->Add(g->Input(x), g->Parameter(p, grad));
        const NodeId cat = g->ConcatCols(broadcast, g->Input(x));
        return g->Mean(g->Mul(cat, cat));
      },
      bias);
}

TEST(Autodiff, GradientSubMeanRows) {
  util::Rng rng(23);
  Matrix w = Matrix::KaimingUniform(3, 3, 3, &rng);
  GradientCheck(
      [](Graph* g, const Matrix* p, Matrix* grad) {
        Matrix x(3, 3);
        for (int r = 0; r < 3; ++r) {
          for (int c = 0; c < 3; ++c) x.at(r, c) = 0.2f * (r - c);
        }
        const NodeId h = g->MatMul(g->Input(x), g->Parameter(p, grad));
        const NodeId centered = g->Sub(h, g->Input(x));
        return g->Sum(g->MeanRows(g->Mul(centered, centered)));
      },
      w);
}

TEST(Autodiff, GradientAccumulatesOverUses) {
  // Using the same parameter twice must add gradient contributions.
  Matrix p(1, 1);
  p.at(0, 0) = 3.0f;
  Matrix grad(1, 1);
  Graph g;
  const NodeId node = g.Parameter(&p, &grad);
  const NodeId loss = g.Sum(g.Mul(node, node));  // p^2 -> d/dp = 2p = 6
  g.Backward(loss);
  EXPECT_NEAR(grad.at(0, 0), 6.0f, 1e-4);
}

TEST(Mlp, ShapesAndForward) {
  util::Rng rng(29);
  Mlp mlp({4, 8, 1}, &rng);
  Graph g;
  const NodeId out = mlp.Apply(&g, g.Input(Matrix::RowVector({1, 2, 3, 4})));
  EXPECT_EQ(g.value(out).rows(), 1);
  EXPECT_EQ(g.value(out).cols(), 1);
  EXPECT_EQ(mlp.Params().size(), 4u);  // 2 layers x (weight, bias)
}

TEST(Adam, LearnsLinearFunction) {
  // Fit y = 2x - 1 with a single linear layer.
  util::Rng rng(31);
  Linear layer(1, 1, &rng);
  std::vector<Param*> params;
  layer.CollectParams(&params);
  Adam adam(params, 0.05);
  double last_loss = 1e9;
  for (int step = 0; step < 300; ++step) {
    const float x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    const float y = 2.0f * x - 1.0f;
    Graph g;
    const NodeId pred = layer.Apply(&g, g.Input(Matrix::RowVector({x})));
    const NodeId loss = MseLoss(&g, pred, g.Input(Matrix::RowVector({y})));
    last_loss = g.scalar(loss);
    g.Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last_loss, 0.01);
  EXPECT_NEAR(layer.weight.value.at(0, 0), 2.0f, 0.2f);
  EXPECT_NEAR(layer.bias.value.at(0, 0), -1.0f, 0.2f);
}

TEST(Adam, StepZeroesGradients) {
  util::Rng rng(37);
  Linear layer(2, 2, &rng);
  std::vector<Param*> params;
  layer.CollectParams(&params);
  Adam adam(params);
  Graph g;
  const NodeId out =
      g.Sum(layer.Apply(&g, g.Input(Matrix::RowVector({1, 1}))));
  g.Backward(out);
  adam.Step();
  for (const Param* p : params) {
    for (float gradient : p->grad.data()) EXPECT_EQ(gradient, 0.0f);
  }
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(Losses, PairwiseRankOrdering) {
  // Loss is smaller when the better plan already scores lower.
  Graph g;
  const NodeId good_order = PairwiseRankLoss(
      &g, g.Input(Matrix::RowVector({-1.0f})),
      g.Input(Matrix::RowVector({1.0f})));
  const NodeId bad_order = PairwiseRankLoss(
      &g, g.Input(Matrix::RowVector({1.0f})),
      g.Input(Matrix::RowVector({-1.0f})));
  EXPECT_LT(g.scalar(good_order), g.scalar(bad_order));
}

TEST(Losses, MseZeroAtTarget) {
  Graph g;
  const NodeId loss = MseLoss(&g, g.Input(Matrix::RowVector({0.5f})),
                              g.Input(Matrix::RowVector({0.5f})));
  EXPECT_EQ(g.scalar(loss), 0.0f);
}

TEST(Determinism, SameSeedSameNetwork) {
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  Mlp a({3, 5, 1}, &rng_a);
  Mlp b({3, 5, 1}, &rng_b);
  Graph ga;
  Graph gb;
  const Matrix x = Matrix::RowVector({0.1f, 0.2f, 0.3f});
  const float ya = ga.value(a.Apply(&ga, ga.Input(x))).at(0, 0);
  const float yb = gb.value(b.Apply(&gb, gb.Input(x))).at(0, 0);
  EXPECT_EQ(ya, yb);
}

/// Property sweep: gradient checks over random MLP shapes.
class MlpGradientProperty : public ::testing::TestWithParam<int> {};

TEST_P(MlpGradientProperty, EndToEndGradient) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int32_t in = 2 + GetParam() % 3;
  const int32_t hidden = 3 + GetParam() % 4;
  Mlp mlp({in, hidden, 1}, &rng);
  // Check the first layer's weight matrix.
  std::vector<Param*> params = mlp.Params();
  Matrix original = params[0]->value;
  Matrix x(1, in);
  for (int i = 0; i < in; ++i) {
    x.at(0, i) = static_cast<float>(rng.Uniform() - 0.5);
  }
  GradientCheck(
      [&](Graph* g, const Matrix* p, Matrix* grad) {
        // Temporarily swap in the perturbed matrix.
        params[0]->value = *p;
        Graph& graph = *g;
        const NodeId pred = [&] {
          // Rebuild manually: parameter node for layer-0 weight.
          const NodeId w0 = graph.Parameter(p, grad);
          const NodeId b0 = graph.Input(params[1]->value);
          const NodeId h =
              graph.Relu(graph.Add(graph.MatMul(graph.Input(x), w0), b0));
          const NodeId w1 = graph.Input(params[2]->value);
          const NodeId b1 = graph.Input(params[3]->value);
          return graph.Add(graph.MatMul(h, w1), b1);
        }();
        return graph.Mean(graph.Mul(pred, pred));
      },
      original, 5e-2);
  params[0]->value = original;
}

INSTANTIATE_TEST_SUITE_P(Shapes, MlpGradientProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace lqolab::ml
