// Unit tests for the costmodel/ subsystem: q-error semantics, the plan
// featurizer, the deterministic replay buffer, analytic calibration,
// bit-deterministic MLP training, trace round-trip with corrupt-line
// hardening, the promotion gate (including refusing a poisoned candidate),
// drift detection tripping the serving breaker, and the end-to-end
// harvest->refresh determinism contract across serve worker counts.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "costmodel/cost_model.h"
#include "costmodel/features.h"
#include "costmodel/guided_optimizer.h"
#include "costmodel/learned_model.h"
#include "costmodel/online_refresh.h"
#include "costmodel/replay_buffer.h"
#include "costmodel/trace_ingest.h"
#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/plan_hint.h"
#include "query/job_workload.h"
#include "serve/query_server.h"

namespace lqolab::costmodel {
namespace {

/// One small database shared by every test in this binary (read-only from
/// the tests' perspective; servers execute on worker replicas).
engine::Database* SharedDb() {
  static std::unique_ptr<engine::Database> db = [] {
    engine::Database::Options options;
    options.profile = datagen::ScaleProfile::Small();
    options.seed = 42;
    return engine::Database::CreateImdb(options);
  }();
  return db.get();
}

const std::vector<query::Query>& Workload() {
  static const std::vector<query::Query> workload =
      query::BuildJobLiteWorkload(SharedDb()->schema());
  return workload;
}

PlanFeaturizer MakeFeaturizer() {
  return PlanFeaturizer(&SharedDb()->context(),
                        &SharedDb()->planner().estimator());
}

/// Native plan + analytic cost for a workload query.
struct PlannedSample {
  query::Query q;
  optimizer::PhysicalPlan plan;
  double analytic_cost = 0.0;
};

PlannedSample PlanOf(size_t index) {
  PlannedSample out;
  out.q = Workload()[index];
  out.plan = SharedDb()->PlanQuery(out.q).plan;
  out.analytic_cost = SharedDb()->planner().EstimatePlanCost(out.q, out.plan);
  return out;
}

// ---------------------------------------------------------------------------
// QError

TEST(QError, SymmetricAndScaleFree) {
  EXPECT_DOUBLE_EQ(QError(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(20.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(10.0, 20.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(1.0, 1000.0), 1000.0);
}

TEST(QError, DegenerateInputsAreMaximallyWrong) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(QError(0.0, 10.0), inf);
  EXPECT_EQ(QError(-5.0, 10.0), inf);
  EXPECT_EQ(QError(10.0, 0.0), inf);
  EXPECT_EQ(QError(std::nan(""), 10.0), inf);
  EXPECT_EQ(QError(inf, 10.0), inf);
}

TEST(QError, MedianOverEmptySamplesIsInfinite) {
  AnalyticCostModel model(&SharedDb()->planner());
  EXPECT_EQ(MedianSampleQError(model, {}),
            std::numeric_limits<double>::infinity());
}

// ---------------------------------------------------------------------------
// PlanFeaturizer

TEST(PlanFeaturizerTest, FixedWidthDeterministicAndFinite) {
  const PlanFeaturizer featurizer = MakeFeaturizer();
  EXPECT_GT(featurizer.dim(), PlanFeaturizer::kShapeFeatures);

  const PlannedSample a = PlanOf(0);
  const std::vector<float> fa = featurizer.Featurize(a.q, a.plan);
  ASSERT_EQ(static_cast<int32_t>(fa.size()), featurizer.dim());
  for (const float v : fa) EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(featurizer.Featurize(a.q, a.plan), fa);

  // A structurally different query maps to a different point.
  const PlannedSample b = PlanOf(40);
  EXPECT_NE(featurizer.Featurize(b.q, b.plan), fa);
}

// ---------------------------------------------------------------------------
// ReplayBuffer

CostSample SeqSample(uint64_t sequence, double actual = 100.0) {
  CostSample s;
  s.sequence = sequence;
  s.query_id = "q" + std::to_string(sequence);
  s.features = {1.0f, 2.0f};
  s.actual_ns = static_cast<util::VirtualNanos>(actual);
  s.analytic_cost = actual / 2.0;
  return s;
}

TEST(ReplayBufferTest, BoundedKeepsLargestSequences) {
  ReplayBufferOptions options;
  options.capacity = 4;
  ReplayBuffer buffer(options);
  for (uint64_t seq = 1; seq <= 10; ++seq) buffer.Add(SeqSample(seq));
  EXPECT_EQ(buffer.size(), 4);
  EXPECT_EQ(buffer.added(), 10);
  EXPECT_EQ(buffer.dropped(), 6);
  const std::vector<CostSample> snapshot = buffer.SnapshotSorted();
  ASSERT_EQ(snapshot.size(), 4u);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].sequence, 7 + i);
  }
}

TEST(ReplayBufferTest, RetainedSetIsInsertionOrderIndependent) {
  // The worker-count-determinism keystone: the retained set and its
  // snapshot order depend only on WHICH sequences were admitted, never on
  // the completion order they arrived in.
  ReplayBufferOptions options;
  options.capacity = 8;
  std::vector<uint64_t> sequences;
  for (uint64_t seq = 1; seq <= 20; ++seq) sequences.push_back(seq);

  ReplayBuffer forward(options);
  for (const uint64_t seq : sequences) forward.Add(SeqSample(seq));

  std::mt19937_64 rng(7);
  std::shuffle(sequences.begin(), sequences.end(), rng);
  ReplayBuffer shuffled(options);
  for (const uint64_t seq : sequences) shuffled.Add(SeqSample(seq));

  const auto a = forward.SnapshotSorted();
  const auto b = shuffled.SnapshotSorted();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sequence, b[i].sequence);
  }
}

TEST(ReplayBufferTest, RepeatedSequenceReplacesInPlace) {
  ReplayBufferOptions options;
  options.capacity = 4;
  ReplayBuffer buffer(options);
  buffer.Add(SeqSample(5, 100.0));
  buffer.Add(SeqSample(5, 999.0));
  EXPECT_EQ(buffer.size(), 1);
  EXPECT_EQ(buffer.dropped(), 0);
  EXPECT_EQ(buffer.SnapshotSorted()[0].actual_ns, 999);
}

// ---------------------------------------------------------------------------
// AnalyticCostModel

TEST(AnalyticCostModelTest, CalibrationFitsMedianNsPerUnit) {
  AnalyticCostModel model(&SharedDb()->planner());
  EXPECT_FALSE(model.calibrated());

  // actual = 3 * cost for every sample: the median ratio is exactly 3.
  std::vector<CostSample> samples;
  for (uint64_t seq = 1; seq <= 9; ++seq) {
    CostSample s = SeqSample(seq);
    s.analytic_cost = 100.0 * static_cast<double>(seq);
    s.actual_ns = static_cast<util::VirtualNanos>(300.0 * seq);
    samples.push_back(s);
  }
  model.Calibrate(samples);
  EXPECT_TRUE(model.calibrated());
  EXPECT_DOUBLE_EQ(model.ns_per_unit(), 3.0);
  EXPECT_DOUBLE_EQ(model.PredictSampleNs(samples[0]), 300.0);
  EXPECT_DOUBLE_EQ(MedianSampleQError(model, samples), 1.0);
}

TEST(AnalyticCostModelTest, PredictNsMatchesPlannerEstimate) {
  AnalyticCostModel model(&SharedDb()->planner());
  model.set_ns_per_unit(2.0);
  const PlannedSample p = PlanOf(10);
  EXPECT_DOUBLE_EQ(model.PredictNs(p.q, p.plan), 2.0 * p.analytic_cost);
}

TEST(SelectBackendTest, ResolvesConfiguredBackend) {
  const auto analytic =
      std::make_shared<AnalyticCostModel>(&SharedDb()->planner());
  const PlanFeaturizer featurizer = MakeFeaturizer();
  const auto learned =
      std::make_shared<LearnedCostModel>(&featurizer, LearnedModelOptions());

  engine::DbConfig config = engine::DbConfig::OurFramework();
  config.cost_model_backend = engine::CostModelBackend::kAnalytic;
  EXPECT_EQ(SelectBackend(config, analytic, learned).get(), analytic.get());
  config.cost_model_backend = engine::CostModelBackend::kLearnedMlp;
  EXPECT_EQ(SelectBackend(config, analytic, learned).get(), learned.get());
}

// ---------------------------------------------------------------------------
// LearnedCostModel training determinism

/// Featurized samples from real plans with synthetic (deterministic)
/// latency labels.
std::vector<CostSample> TrainingCorpus(const PlanFeaturizer& featurizer,
                                       size_t count) {
  std::vector<CostSample> samples;
  for (size_t i = 0; i < count; ++i) {
    const PlannedSample p = PlanOf((i * 3) % Workload().size());
    CostSample s;
    s.sequence = i;
    s.query_id = p.q.id;
    s.features = featurizer.Featurize(p.q, p.plan);
    s.analytic_cost = p.analytic_cost;
    s.actual_ns = static_cast<util::VirtualNanos>(50.0 * p.analytic_cost);
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(LearnedCostModelTest, TrainingIsBitDeterministic) {
  const PlanFeaturizer featurizer = MakeFeaturizer();
  const std::vector<CostSample> corpus = TrainingCorpus(featurizer, 24);

  LearnedModelOptions options;
  options.epochs = 10;
  LearnedCostModel a(&featurizer, options);
  LearnedCostModel b(&featurizer, options);
  EXPECT_EQ(a.WeightsDigest(), b.WeightsDigest());

  const double loss_a = a.Train(corpus);
  const double loss_b = b.Train(corpus);
  EXPECT_EQ(loss_a, loss_b);
  EXPECT_EQ(a.WeightsDigest(), b.WeightsDigest());
  EXPECT_EQ(a.train_steps(), b.train_steps());
  EXPECT_EQ(a.PredictSampleNs(corpus[0]), b.PredictSampleNs(corpus[0]));

  // A different init seed must land on different weights.
  LearnedModelOptions reseeded = options;
  reseeded.seed = options.seed + 1;
  LearnedCostModel c(&featurizer, reseeded);
  c.Train(corpus);
  EXPECT_NE(c.WeightsDigest(), a.WeightsDigest());
}

TEST(LearnedCostModelTest, SkipsDegenerateSamples) {
  const PlanFeaturizer featurizer = MakeFeaturizer();
  LearnedCostModel model(&featurizer, LearnedModelOptions());
  CostSample bad_width = SeqSample(1);
  bad_width.features = {1.0f};  // wrong dimension
  CostSample bad_actual = SeqSample(2);
  bad_actual.features = std::vector<float>(featurizer.dim(), 0.5f);
  bad_actual.actual_ns = 0;
  EXPECT_EQ(model.Train({bad_width, bad_actual}), 0.0);
  EXPECT_EQ(model.train_steps(), 0);
}

// ---------------------------------------------------------------------------
// Trace round trip

TEST(TraceIngestTest, RoundTripsSamplesAndSkipsCorruptLines) {
  obs::MetricsRegistry metrics;
  obs::MetricsScope scope(&metrics);
  const PlanFeaturizer featurizer = MakeFeaturizer();
  const std::string path =
      ::testing::TempDir() + "lqolab_costmodel_trace_test.jsonl";

  std::unordered_map<std::string, query::Query> by_id;
  std::vector<ServeSampleRecord> written;
  {
    obs::TraceWriter trace(path);
    ASSERT_TRUE(trace.ok());
    for (size_t i = 0; i < 6; ++i) {
      const PlannedSample p = PlanOf(i * 11);
      by_id.emplace(p.q.id, p.q);
      ServeSampleRecord record;
      record.sequence = 100 + i;
      record.query_id = p.q.id;
      record.plan_hint = optimizer::RenderPlanHint(p.plan, p.q);
      record.actual_ns = 1000 + static_cast<int64_t>(i);
      record.analytic_cost = p.analytic_cost;
      // The first record mimics a pre-calibration harvest: NaN prediction,
      // which the trace layer must render as null (and ingest must accept).
      record.predicted_ns =
          i == 0 ? std::numeric_limits<double>::quiet_NaN() : 42.0;
      WriteServeSample(record, &trace);
      written.push_back(record);
    }
  }
  {
    // Three corrupt lines: a pre-fix bare-nan record (invalid JSON), a
    // truncated record, and a well-formed record with an unparsable hint.
    std::ofstream out(path, std::ios::app);
    out << "{\"type\":\"serve_sample\",\"seq\":900,\"query\":\""
        << written[0].query_id << "\",\"plan\":\"" << written[0].plan_hint
        << "\",\"execution_ns\":nan,\"analytic_cost\":1.0}\n";
    out << "{\"type\":\"serve_sample\",\"seq\":901\n";
    out << "{\"type\":\"serve_sample\",\"seq\":902,\"query\":\""
        << written[0].query_id
        << "\",\"plan\":\"Leading(bogus)\",\"execution_ns\":5,"
        << "\"analytic_cost\":1.0,\"predicted_ns\":1.0}\n";
  }

  ReplayBufferOptions buffer_options;
  buffer_options.capacity = 64;
  ReplayBuffer buffer(buffer_options);
  const IngestStats stats = IngestServeTrace(path, by_id, featurizer, &buffer);
  EXPECT_EQ(stats.lines, 9);
  EXPECT_EQ(stats.ingested, 6);
  EXPECT_EQ(stats.skipped_malformed, 2);
  EXPECT_EQ(stats.skipped_bad_plan, 1);
  EXPECT_EQ(stats.skipped(), 3);
  EXPECT_EQ(metrics.Get(obs::Counter::kCostmodelTraceSkipped), 3);

  // The ingested samples reproduce sequence, label, and features (the hint
  // re-parses to the same plan, so the featurization is identical).
  const std::vector<CostSample> snapshot = buffer.SnapshotSorted();
  ASSERT_EQ(snapshot.size(), written.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].sequence, written[i].sequence);
    EXPECT_EQ(snapshot[i].query_id, written[i].query_id);
    EXPECT_EQ(snapshot[i].actual_ns, written[i].actual_ns);
    const query::Query& q = by_id.at(written[i].query_id);
    const PlannedSample p = PlanOf(i * 11);
    EXPECT_EQ(snapshot[i].features, featurizer.Featurize(q, p.plan));
  }

  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(TraceIngestTest, UnknownQueryIsSkippedNotFatal) {
  const PlanFeaturizer featurizer = MakeFeaturizer();
  const std::string path =
      ::testing::TempDir() + "lqolab_costmodel_unknown_query.jsonl";
  {
    obs::TraceWriter trace(path);
    const PlannedSample p = PlanOf(0);
    ServeSampleRecord record;
    record.sequence = 1;
    record.query_id = p.q.id;
    record.plan_hint = optimizer::RenderPlanHint(p.plan, p.q);
    record.actual_ns = 10;
    WriteServeSample(record, &trace);
  }
  ReplayBufferOptions buffer_options;
  ReplayBuffer buffer(buffer_options);
  const IngestStats stats =
      IngestServeTrace(path, /*queries_by_id=*/{}, featurizer, &buffer);
  EXPECT_EQ(stats.ingested, 0);
  EXPECT_EQ(stats.skipped_unknown_query, 1);
  EXPECT_EQ(buffer.size(), 0);
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

// ---------------------------------------------------------------------------
// OnlineRefresher: gate, promotion, drift, determinism

RefreshOptions TestRefreshOptions() {
  RefreshOptions options;
  options.buffer.capacity = 4096;
  options.min_samples = 32;
  options.refresh_every = 1 << 30;  // manual Refresh() only
  options.drift_window = 8;
  return options;
}

serve::ServerOptions ObserverServerOptions(int32_t workers,
                                           serve::ServedPlanObserver* obs) {
  serve::ServerOptions options;
  options.workers = workers;
  options.route = serve::RouteMode::kLqo;
  options.observer = obs;
  options.breaker.failure_threshold = std::numeric_limits<int32_t>::max();
  return options;
}

/// Feeds `count` real (query, plan) pairs with synthetic linear latencies
/// straight into the refresher (no server needed).
void FeedLinearSamples(OnlineRefresher* refresher, size_t count,
                       double ns_per_cost = 10.0) {
  for (size_t i = 0; i < count; ++i) {
    const PlannedSample p = PlanOf((i * 5) % Workload().size());
    const auto actual = static_cast<util::VirtualNanos>(
        std::max(1.0, ns_per_cost * p.analytic_cost));
    refresher->OnPlanExecuted(p.q, p.plan, actual, /*sequence=*/i);
  }
}

TEST(OnlineRefresherTest, RefreshRequiresMinimumSamples) {
  OnlineRefresher refresher(SharedDb(), TestRefreshOptions());
  FeedLinearSamples(&refresher, 8);
  const RefreshOutcome out = refresher.Refresh();
  EXPECT_FALSE(out.attempted);
  EXPECT_EQ(out.reason, "insufficient_samples");
  EXPECT_EQ(refresher.refreshes(), 0);
}

TEST(OnlineRefresherTest, GateRefusesPoisonedCandidate) {
  obs::MetricsRegistry metrics;
  obs::MetricsScope scope(&metrics);
  OnlineRefresher refresher(SharedDb(), TestRefreshOptions());
  FeedLinearSamples(&refresher, 48);

  serve::QueryServer server(SharedDb(), ObserverServerOptions(1, &refresher));
  refresher.AttachServer(&server);
  const uint64_t version_before = server.model_version();

  // A poisoned candidate: trained on labels inverted against reality, its
  // predictions are maximally wrong and its holdout median blows the
  // absolute ceiling no matter how the incumbent scores.
  std::vector<CostSample> poisoned = refresher.buffer().SnapshotSorted();
  for (CostSample& s : poisoned) {
    s.actual_ns = static_cast<util::VirtualNanos>(
        1e15 / std::max<double>(1.0, static_cast<double>(s.actual_ns)));
  }
  auto candidate = std::make_shared<LearnedCostModel>(
      &refresher.featurizer(), TestRefreshOptions().model);
  candidate->Train(poisoned);

  const auto incumbent_before = refresher.incumbent();
  const RefreshOutcome out = refresher.ScoreAndMaybePromote(candidate);
  EXPECT_TRUE(out.attempted);
  EXPECT_FALSE(out.promoted);
  EXPECT_EQ(out.reason, "gate_absolute");
  EXPECT_GT(out.candidate_median_qerror,
            TestRefreshOptions().max_median_qerror);
  EXPECT_EQ(refresher.incumbent().get(), incumbent_before.get());
  EXPECT_EQ(server.model_version(), version_before);
  EXPECT_EQ(refresher.promotions(), 0);
  EXPECT_EQ(refresher.rejections(), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kCostmodelRejections), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kCostmodelPromotions), 0);
}

TEST(OnlineRefresherTest, GatePromotesPastWeakIncumbentAndPublishes) {
  obs::MetricsRegistry metrics;
  obs::MetricsScope scope(&metrics);
  OnlineRefresher refresher(SharedDb(), TestRefreshOptions());
  FeedLinearSamples(&refresher, 48);

  serve::QueryServer server(SharedDb(), ObserverServerOptions(1, &refresher));
  refresher.AttachServer(&server);
  EXPECT_EQ(server.model_version(), 0u);

  // Fabricate a badly mis-calibrated incumbent, then gate a candidate
  // trained on the real labels: it must clear both gate legs and publish a
  // CostGuidedOptimizer through the server's hot-swap slot.
  refresher.analytic_model()->set_ns_per_unit(1e7);
  auto candidate = std::make_shared<LearnedCostModel>(
      &refresher.featurizer(), TestRefreshOptions().model);
  candidate->Train(refresher.buffer().SnapshotSorted());

  const RefreshOutcome out = refresher.ScoreAndMaybePromote(candidate);
  EXPECT_TRUE(out.promoted);
  EXPECT_EQ(out.reason, "promoted");
  EXPECT_LT(out.candidate_median_qerror, out.incumbent_median_qerror);
  EXPECT_EQ(out.published_version, 1u);
  EXPECT_EQ(server.model_version(), 1u);
  EXPECT_EQ(refresher.incumbent().get(), candidate.get());
  EXPECT_EQ(refresher.promotions(), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kCostmodelPromotions), 1);

  // The published optimizer serves valid plans.
  const serve::ServedQuery served = server.Submit(Workload()[2]).get();
  EXPECT_TRUE(served.status.ok());
  EXPECT_FALSE(served.plan.empty());
}

TEST(OnlineRefresherTest, DriftAlarmTripsServerBreaker) {
  obs::MetricsRegistry metrics;
  obs::MetricsScope scope(&metrics);
  const RefreshOptions options = TestRefreshOptions();
  OnlineRefresher refresher(SharedDb(), options);
  serve::QueryServer server(SharedDb(), ObserverServerOptions(1, &refresher));
  refresher.AttachServer(&server);

  // Calibrate the incumbent on consistent traffic...
  FeedLinearSamples(&refresher, 32);
  EXPECT_EQ(refresher.drift_alarms(), 0);
  EXPECT_EQ(server.breaker().state(), serve::CircuitBreaker::State::kClosed);

  // ...then shift the regime: actuals collapse to ~nothing, so the rolling
  // median q-error explodes past the threshold within one window.
  const PlannedSample p = PlanOf(0);
  for (int64_t i = 0; i < options.drift_window; ++i) {
    refresher.OnPlanExecuted(p.q, p.plan, /*execution_ns=*/1,
                             /*sequence=*/1000 + i);
  }
  EXPECT_EQ(refresher.drift_alarms(), 1);
  EXPECT_EQ(metrics.Get(obs::Counter::kCostmodelDriftAlarms), 1);
  EXPECT_EQ(server.breaker().state(), serve::CircuitBreaker::State::kOpen);
}

/// One harvest+refresh cycle at the given worker count; the determinism
/// probe of the serve-path loop.
RefreshOutcome HarvestAndRefresh(int32_t workers, int64_t* harvested) {
  OnlineRefresher refresher(SharedDb(), TestRefreshOptions());
  serve::QueryServer server(SharedDb(),
                            ObserverServerOptions(workers, &refresher));
  refresher.AttachServer(&server);
  std::vector<std::future<serve::ServedQuery>> futures;
  for (int epoch = 0; epoch < 2; ++epoch) {
    // Struct-route Submit: per-query cache keys keep the executed plans
    // scheduling-independent (the SQL route's template-shared entries are
    // first-planner-wins by design).
    for (size_t i = 0; i < Workload().size(); i += 4) {
      futures.push_back(server.Submit(Workload()[i]));
    }
  }
  for (auto& f : futures) f.get();
  server.Drain();
  *harvested = refresher.buffer().added();
  return refresher.Refresh();
}

TEST(OnlineRefresherTest, RefreshIsIdenticalAcrossWorkerCounts) {
  int64_t harvested_serial = 0;
  int64_t harvested_parallel = 0;
  const RefreshOutcome serial = HarvestAndRefresh(1, &harvested_serial);
  const RefreshOutcome parallel = HarvestAndRefresh(3, &harvested_parallel);

  EXPECT_EQ(harvested_serial, harvested_parallel);
  ASSERT_TRUE(serial.attempted);
  ASSERT_TRUE(parallel.attempted);
  EXPECT_EQ(serial.train_samples, parallel.train_samples);
  EXPECT_EQ(serial.holdout_samples, parallel.holdout_samples);
  // Bit-identical retrained weights and the same verdict: the whole point
  // of sequence-keyed harvesting.
  EXPECT_EQ(serial.weights_digest, parallel.weights_digest);
  EXPECT_EQ(serial.train_loss, parallel.train_loss);
  EXPECT_EQ(serial.promoted, parallel.promoted);
  EXPECT_EQ(serial.candidate_median_qerror, parallel.candidate_median_qerror);
  EXPECT_EQ(serial.incumbent_median_qerror, parallel.incumbent_median_qerror);
}

// ---------------------------------------------------------------------------
// Candidate generation / CostGuidedOptimizer

TEST(GenerateCandidatePlansTest, DeterministicDedupedAndExecutable) {
  const query::Query& q = Workload()[8];
  const std::vector<PlanCandidate> candidates =
      GenerateCandidatePlans(SharedDb(), q);
  ASSERT_FALSE(candidates.empty());

  // Deduplicated by structural equality.
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      EXPECT_NE(candidates[i].plan, candidates[j].plan);
    }
  }
  // Deterministic for a fixed (db, q).
  const std::vector<PlanCandidate> again = GenerateCandidatePlans(SharedDb(), q);
  ASSERT_EQ(candidates.size(), again.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i].plan, again[i].plan);
    EXPECT_EQ(candidates[i].source, again[i].source);
  }

  // Every candidate is a valid plan: executing it yields the same answer
  // as the native plan (plans change latency, never results).
  const auto replica = SharedDb()->CloneContextForWorker();
  const auto native = replica->PlanQuery(q);
  replica->BeginQueryReplay(SharedDb()->seed(), q, /*salt=*/0);
  const engine::QueryRun baseline =
      replica->ExecutePlan(q, native.plan, native.planning_ns);
  ASSERT_TRUE(baseline.status.ok());
  for (const PlanCandidate& candidate : candidates) {
    replica->BeginQueryReplay(SharedDb()->seed(), q, /*salt=*/0);
    const engine::QueryRun run =
        replica->ExecutePlan(q, candidate.plan, candidate.planning_ns);
    ASSERT_TRUE(run.status.ok()) << candidate.source;
    EXPECT_EQ(run.result_rows, baseline.result_rows) << candidate.source;
  }
}

TEST(CostGuidedOptimizerTest, PicksCheapestPredictedCandidate) {
  auto model = std::make_shared<AnalyticCostModel>(&SharedDb()->planner());
  model->set_ns_per_unit(1.0);
  CostGuidedOptimizer optimizer(model);
  const query::Query& q = Workload()[8];

  const lqo::Prediction prediction = optimizer.Plan(q, SharedDb());
  ASSERT_FALSE(prediction.plan.nodes.empty());

  // Under the analytic model the pick must be the analytically-cheapest
  // candidate of the sweep.
  const std::vector<PlanCandidate> candidates =
      GenerateCandidatePlans(SharedDb(), q);
  double best = std::numeric_limits<double>::infinity();
  const optimizer::PhysicalPlan* best_plan = nullptr;
  for (const PlanCandidate& candidate : candidates) {
    const double cost =
        SharedDb()->planner().EstimatePlanCost(q, candidate.plan);
    if (cost < best) {
      best = cost;
      best_plan = &candidate.plan;
    }
  }
  ASSERT_NE(best_plan, nullptr);
  EXPECT_EQ(prediction.plan, *best_plan);
}

}  // namespace
}  // namespace lqolab::costmodel
