-- TPC-H-lite: 16 join templates over the synthetic TPC-H star/snowflake
-- (catalog/tpch_schema.h). Shapes follow the classic TPC-H questions (Q3
-- order shipping, Q5 local supplier volume, Q7 bi-nation flows, Q12
-- shipmode, Q19 brand/quantity) restated as COUNT(*) joins. Dates are
-- YYYYMMDD integers in 1992..1998; prices are integer cents. Two variants
-- per family keep kLeaveOneOut splits family-covering. See docs/sql.md.

-- h1a
SELECT COUNT(*) FROM customer c, orders o, lineitem l
WHERE o.customer_id = c.id AND l.order_id = o.id
AND c.mktsegment = 'BUILDING' AND o.orderdate < 19950315
AND l.shipdate > 19950315;

-- h1b
SELECT COUNT(*) FROM customer c, orders o, lineitem l
WHERE o.customer_id = c.id AND l.order_id = o.id
AND c.mktsegment = 'MACHINERY' AND o.orderdate < 19970601
AND l.shipdate > 19970601;

-- h2a
SELECT COUNT(*) FROM region r, nation n, customer c, orders o, lineitem l,
supplier s
WHERE n.region_id = r.id AND c.nation_id = n.id AND o.customer_id = c.id
AND l.order_id = o.id AND l.supplier_id = s.id AND s.nation_id = n.id
AND r.name = 'ASIA' AND o.orderdate BETWEEN 19940101 AND 19941231;

-- h2b
SELECT COUNT(*) FROM region r, nation n, customer c, orders o, lineitem l,
supplier s
WHERE n.region_id = r.id AND c.nation_id = n.id AND o.customer_id = c.id
AND l.order_id = o.id AND l.supplier_id = s.id AND s.nation_id = n.id
AND r.name = 'EUROPE' AND o.orderdate BETWEEN 19960101 AND 19971231;

-- h3a
SELECT COUNT(*) FROM orders o, lineitem l
WHERE l.order_id = o.id
AND l.shipmode IN ('MAIL', 'SHIP') AND o.orderpriority = '1-URGENT'
AND l.shipdate BETWEEN 19940101 AND 19941231;

-- h3b
SELECT COUNT(*) FROM orders o, lineitem l
WHERE l.order_id = o.id
AND l.shipmode IN ('AIR', 'REG AIR') AND o.orderpriority = '5-LOW'
AND l.shipdate > 19970101;

-- h4a
SELECT COUNT(*) FROM part p, lineitem l, orders o
WHERE l.part_id = p.id AND l.order_id = o.id
AND p.brand = 'Brand#12' AND p.container IN ('SM CASE', 'SM BOX')
AND l.quantity BETWEEN 1 AND 11;

-- h4b
SELECT COUNT(*) FROM part p, lineitem l, orders o
WHERE l.part_id = p.id AND l.order_id = o.id
AND p.brand LIKE 'Brand#2%' AND p.container IN ('LG CASE', 'LG BOX')
AND l.quantity BETWEEN 20 AND 40;

-- h5a
SELECT COUNT(*) FROM partsupp ps, part p, supplier s, nation n, region r
WHERE ps.part_id = p.id AND ps.supplier_id = s.id AND s.nation_id = n.id
AND n.region_id = r.id
AND r.name = 'AMERICA' AND p.size = 15 AND p.type LIKE 'PROMO%';

-- h5b
SELECT COUNT(*) FROM partsupp ps, part p, supplier s, nation n, region r
WHERE ps.part_id = p.id AND ps.supplier_id = s.id AND s.nation_id = n.id
AND n.region_id = r.id
AND r.name = 'AFRICA' AND p.size BETWEEN 1 AND 10
AND p.type LIKE 'ECONOMY%';

-- h6a
SELECT COUNT(*) FROM customer c, orders o, lineitem l, nation n
WHERE o.customer_id = c.id AND l.order_id = o.id AND c.nation_id = n.id
AND l.returnflag = 'R' AND o.orderdate BETWEEN 19930701 AND 19930930;

-- h6b
SELECT COUNT(*) FROM customer c, orders o, lineitem l, nation n
WHERE o.customer_id = c.id AND l.order_id = o.id AND c.nation_id = n.id
AND l.returnflag = 'A' AND n.name = 'UNITED STATES'
AND o.orderdate > 19960101;

-- h7a
SELECT COUNT(*) FROM supplier s, lineitem l, orders o, customer c,
nation n1, nation n2
WHERE l.supplier_id = s.id AND l.order_id = o.id AND o.customer_id = c.id
AND s.nation_id = n1.id AND c.nation_id = n2.id
AND n1.name = 'FRANCE' AND n2.name = 'GERMANY'
AND l.shipdate BETWEEN 19950101 AND 19961231;

-- h7b
SELECT COUNT(*) FROM supplier s, lineitem l, orders o, customer c,
nation n1, nation n2
WHERE l.supplier_id = s.id AND l.order_id = o.id AND o.customer_id = c.id
AND s.nation_id = n1.id AND c.nation_id = n2.id
AND n1.name = 'CHINA' AND n2.name IN ('JAPAN', 'INDIA')
AND l.shipdate > 19960601;

-- h8a
SELECT COUNT(*) FROM region r, nation n, customer c, orders o, lineitem l,
supplier s, part p
WHERE n.region_id = r.id AND c.nation_id = n.id AND o.customer_id = c.id
AND l.order_id = o.id AND l.supplier_id = s.id AND l.part_id = p.id
AND r.name = 'AMERICA' AND p.type LIKE 'STANDARD%'
AND o.orderdate BETWEEN 19950101 AND 19961231;

-- h8b
SELECT COUNT(*) FROM region r, nation n, customer c, orders o, lineitem l,
supplier s, part p
WHERE n.region_id = r.id AND c.nation_id = n.id AND o.customer_id = c.id
AND l.order_id = o.id AND l.supplier_id = s.id AND l.part_id = p.id
AND r.name = 'MIDDLE EAST' AND p.brand = 'Brand#22'
AND o.orderdate > 19970101;

-- h9a
SELECT COUNT(*) FROM part p, partsupp ps, supplier s, lineitem l, orders o,
nation n
WHERE ps.part_id = p.id AND ps.supplier_id = s.id AND l.part_id = p.id
AND l.supplier_id = s.id AND l.order_id = o.id AND s.nation_id = n.id
AND p.brand LIKE 'Brand#1%' AND n.name = 'CANADA';

-- h9b
SELECT COUNT(*) FROM part p, partsupp ps, supplier s, lineitem l, orders o,
nation n
WHERE ps.part_id = p.id AND ps.supplier_id = s.id AND l.part_id = p.id
AND l.supplier_id = s.id AND l.order_id = o.id AND s.nation_id = n.id
AND p.type LIKE 'LARGE%' AND n.name IN ('BRAZIL', 'ARGENTINA', 'PERU')
AND o.orderdate > 19950101;

-- h10a
SELECT COUNT(*) FROM lineitem l, part p, supplier s
WHERE l.part_id = p.id AND l.supplier_id = s.id
AND p.container = 'JUMBO PKG' AND l.discount BETWEEN 5 AND 7
AND l.quantity < 25;

-- h10b
SELECT COUNT(*) FROM lineitem l, part p, supplier s
WHERE l.part_id = p.id AND l.supplier_id = s.id
AND p.container IN ('MED BOX', 'MED BAG') AND l.discount > 8
AND l.quantity >= 30;

-- h11a
SELECT COUNT(*) FROM partsupp ps, part p, supplier s, nation n
WHERE ps.part_id = p.id AND ps.supplier_id = s.id AND s.nation_id = n.id
AND n.name = 'GERMANY' AND ps.supplycost < 50000;

-- h11b
SELECT COUNT(*) FROM partsupp ps, part p, supplier s, nation n
WHERE ps.part_id = p.id AND ps.supplier_id = s.id AND s.nation_id = n.id
AND n.name IN ('RUSSIA', 'ROMANIA') AND ps.availqty > 5000
AND p.size > 25;

-- h12a
SELECT COUNT(*) FROM customer c, orders o, lineitem l, part p
WHERE o.customer_id = c.id AND l.order_id = o.id AND l.part_id = p.id
AND c.mktsegment = 'AUTOMOBILE' AND o.orderpriority = '2-HIGH'
AND p.brand = 'Brand#15';

-- h12b
SELECT COUNT(*) FROM customer c, orders o, lineitem l, part p
WHERE o.customer_id = c.id AND l.order_id = o.id AND l.part_id = p.id
AND c.mktsegment = 'HOUSEHOLD' AND o.orderpriority IN ('1-URGENT', '2-HIGH')
AND p.type LIKE 'MEDIUM%';

-- h13a
SELECT COUNT(*) FROM orders o, customer c, nation n, region r
WHERE o.customer_id = c.id AND c.nation_id = n.id AND n.region_id = r.id
AND r.name = 'EUROPE' AND o.orderstatus = 'F'
AND o.totalprice > 20000000;

-- h13b
SELECT COUNT(*) FROM orders o, customer c, nation n, region r
WHERE o.customer_id = c.id AND c.nation_id = n.id AND n.region_id = r.id
AND r.name = 'ASIA' AND o.orderstatus IN ('O', 'P')
AND o.orderdate > 19980101;

-- h14a
SELECT COUNT(*) FROM lineitem l, orders o, part p
WHERE l.order_id = o.id AND l.part_id = p.id
AND p.type LIKE 'PROMO%' AND l.shipdate BETWEEN 19950901 AND 19950930;

-- h14b
SELECT COUNT(*) FROM lineitem l, orders o, part p
WHERE l.order_id = o.id AND l.part_id = p.id
AND p.type LIKE 'SMALL%' AND l.shipdate BETWEEN 19970301 AND 19970630
AND l.linestatus = 'F';

-- h15a
SELECT COUNT(*) FROM lineitem l, supplier s, nation n, region r
WHERE l.supplier_id = s.id AND s.nation_id = n.id AND n.region_id = r.id
AND r.name = 'ASIA' AND l.shipdate BETWEEN 19960101 AND 19960331
AND l.shipmode = 'TRUCK';

-- h15b
SELECT COUNT(*) FROM lineitem l, supplier s, nation n, region r
WHERE l.supplier_id = s.id AND s.nation_id = n.id AND n.region_id = r.id
AND r.name = 'AFRICA' AND l.shipdate > 19971001
AND l.shipmode IN ('SHIP', 'FOB');

-- h16a
SELECT COUNT(*) FROM customer c, nation n, orders o, lineitem l, supplier s
WHERE c.nation_id = n.id AND o.customer_id = c.id AND l.order_id = o.id
AND l.supplier_id = s.id
AND c.acctbal > 500000 AND s.acctbal < 0
AND o.orderdate BETWEEN 19940101 AND 19951231;

-- h16b
SELECT COUNT(*) FROM customer c, nation n, orders o, lineitem l, supplier s
WHERE c.nation_id = n.id AND o.customer_id = c.id AND l.order_id = o.id
AND l.supplier_id = s.id
AND c.acctbal < 100000 AND s.acctbal > 800000
AND n.name = 'UNITED KINGDOM' AND o.orderdate > 19960101;
