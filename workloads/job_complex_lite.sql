-- JOB-Complex-lite: 30 harder join templates over the synthetic IMDB
-- database (6-12 relations; self-joins, double-fact patterns, LIKE-prefix
-- and NULL filters). Two variants per family so kLeaveOneOut splits keep
-- every family represented on the training side. Loaded through the SQL
-- frontend (src/sql/); see docs/sql.md for the grammar.

-- c1a
SELECT COUNT(*) FROM title t, kind_type kt, movie_info mi, info_type it1,
movie_keyword mk, keyword k
WHERE t.kind_id = kt.id AND mi.movie_id = t.id AND mi.info_type_id = it1.id
AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND kt.kind = 'movie' AND it1.info = 'genres' AND mi.info = 'drama'
AND t.production_year BETWEEN 1995 AND 2010;

-- c1b
SELECT COUNT(*) FROM title t, kind_type kt, movie_info mi, info_type it1,
movie_keyword mk, keyword k
WHERE t.kind_id = kt.id AND mi.movie_id = t.id AND mi.info_type_id = it1.id
AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND kt.kind = 'episode' AND it1.info = 'genres' AND mi.info = 'comedy'
AND t.production_year > 2005;

-- c2a
SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn,
company_type ct, movie_info mi, info_type it1
WHERE mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id
AND cn.country_code = '[us]' AND ct.kind = 'production companies'
AND it1.info = 'genres' AND mi.info IN ('action', 'thriller')
AND t.production_year > 2000;

-- c2b
SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn,
company_type ct, movie_info mi, info_type it1
WHERE mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id
AND cn.country_code IN ('[de]', '[fr]', '[it]') AND ct.kind = 'distributors'
AND it1.info = 'genres' AND mi.info = 'documentary'
AND t.production_year BETWEEN 1980 AND 2000;

-- c3a
SELECT COUNT(*) FROM title t, cast_info ci, name n, role_type rt,
char_name chn, kind_type kt
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.role_id = rt.id
AND ci.person_role_id = chn.id AND t.kind_id = kt.id
AND rt.role = 'actress' AND n.gender = 'f' AND kt.kind = 'movie'
AND t.production_year > 1990;

-- c3b
SELECT COUNT(*) FROM title t, cast_info ci, name n, role_type rt,
char_name chn, kind_type kt
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.role_id = rt.id
AND ci.person_role_id = chn.id AND t.kind_id = kt.id
AND rt.role = 'actor' AND ci.note = '(voice)' AND kt.kind = 'video movie'
AND t.production_year BETWEEN 1985 AND 2015;

-- c4a
SELECT COUNT(*) FROM title t, cast_info ci, name n, person_info pi1,
info_type it1, role_type rt
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND pi1.person_id = n.id
AND pi1.info_type_id = it1.id AND ci.role_id = rt.id
AND it1.info = 'birth date' AND pi1.info LIKE 'born_1%'
AND rt.role = 'director' AND t.production_year > 1995;

-- c4b
SELECT COUNT(*) FROM title t, cast_info ci, name n, person_info pi1,
info_type it1, role_type rt
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND pi1.person_id = n.id
AND pi1.info_type_id = it1.id AND ci.role_id = rt.id
AND it1.info = 'height' AND n.gender = 'm'
AND rt.role IN ('producer', 'writer') AND t.production_year > 1980;

-- c5a
SELECT COUNT(*) FROM title t, movie_info mi, info_type it1,
movie_info_idx midx, info_type it2, movie_keyword mk, keyword k
WHERE mi.movie_id = t.id AND mi.info_type_id = it1.id
AND midx.movie_id = t.id AND midx.info_type_id = it2.id
AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND it1.info = 'genres' AND mi.info = 'thriller'
AND it2.info = 'rating' AND midx.info IN ('rating_8', 'rating_9')
AND k.keyword LIKE 'kw_1%';

-- c5b
SELECT COUNT(*) FROM title t, movie_info mi, info_type it1,
movie_info_idx midx, info_type it2, movie_keyword mk, keyword k
WHERE mi.movie_id = t.id AND mi.info_type_id = it1.id
AND midx.movie_id = t.id AND midx.info_type_id = it2.id
AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND it1.info = 'genres' AND mi.info IN ('horror', 'crime')
AND it2.info = 'votes' AND midx.info LIKE 'votes_1%'
AND k.phonetic_code = 'pc_3';

-- c6a
SELECT COUNT(*) FROM title t, kind_type kt, movie_companies mc,
company_name cn, company_type ct, movie_info mi, info_type it1
WHERE t.kind_id = kt.id AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id
AND kt.kind IN ('movie', 'tv movie') AND cn.country_code = '[gb]'
AND ct.kind = 'production companies' AND it1.info = 'countries'
AND t.production_year > 1998;

-- c6b
SELECT COUNT(*) FROM title t, kind_type kt, movie_companies mc,
company_name cn, company_type ct, movie_info mi, info_type it1
WHERE t.kind_id = kt.id AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id
AND kt.kind = 'tv series' AND cn.country_code = '[jp]'
AND ct.kind = 'distributors' AND it1.info = 'languages'
AND t.production_year BETWEEN 1990 AND 2020;

-- c7a
SELECT COUNT(*) FROM title t, cast_info ci, name n, aka_name an,
role_type rt, kind_type kt
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND an.person_id = n.id
AND ci.role_id = rt.id AND t.kind_id = kt.id
AND rt.role = 'actor' AND n.name_pcode_cf LIKE 'np_2%'
AND kt.kind = 'movie' AND t.production_year > 2000;

-- c7b
SELECT COUNT(*) FROM title t, cast_info ci, name n, aka_name an,
role_type rt, kind_type kt
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND an.person_id = n.id
AND ci.role_id = rt.id AND t.kind_id = kt.id
AND rt.role = 'actress' AND n.gender = 'f'
AND kt.kind IN ('movie', 'episode') AND t.production_year BETWEEN 1970 AND 2005;

-- c8a
SELECT COUNT(*) FROM title t, complete_cast cc, comp_cast_type cct1,
comp_cast_type cct2, movie_keyword mk, keyword k, kind_type kt
WHERE cc.movie_id = t.id AND cc.subject_id = cct1.id
AND cc.status_id = cct2.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND t.kind_id = kt.id
AND cct1.kind = 'cast' AND cct2.kind = 'complete'
AND k.keyword LIKE 'kw_2%' AND kt.kind = 'movie';

-- c8b
SELECT COUNT(*) FROM title t, complete_cast cc, comp_cast_type cct1,
comp_cast_type cct2, movie_keyword mk, keyword k, kind_type kt
WHERE cc.movie_id = t.id AND cc.subject_id = cct1.id
AND cc.status_id = cct2.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND t.kind_id = kt.id
AND cct1.kind = 'crew' AND cct2.kind = 'complete+verified'
AND k.phonetic_code IN ('pc_0', 'pc_1') AND kt.kind = 'episode';

-- c9a
SELECT COUNT(*) FROM title t, movie_link ml, title t2, link_type lt1,
movie_info mi, info_type it1, kind_type kt
WHERE ml.movie_id = t.id AND ml.linked_movie_id = t2.id
AND ml.link_type_id = lt1.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id AND t.kind_id = kt.id
AND lt1.link IN ('follows', 'followed by') AND it1.info = 'genres'
AND mi.info = 'drama' AND kt.kind = 'movie'
AND t2.production_year > 2000;

-- c9b
SELECT COUNT(*) FROM title t, movie_link ml, title t2, link_type lt1,
movie_info mi, info_type it1, kind_type kt
WHERE ml.movie_id = t.id AND ml.linked_movie_id = t2.id
AND ml.link_type_id = lt1.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id AND t.kind_id = kt.id
AND lt1.link IN ('remake of', 'remade as') AND it1.info = 'countries'
AND kt.kind IN ('movie', 'tv movie')
AND t2.production_year BETWEEN 1960 AND 1995;

-- c10a
SELECT COUNT(*) FROM title t, cast_info ci, name n, role_type rt,
movie_companies mc, company_name cn, company_type ct, kind_type kt
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.role_id = rt.id
AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND t.kind_id = kt.id
AND rt.role = 'director' AND cn.country_code = '[us]'
AND ct.kind = 'production companies' AND kt.kind = 'movie'
AND t.production_year > 2005;

-- c10b
SELECT COUNT(*) FROM title t, cast_info ci, name n, role_type rt,
movie_companies mc, company_name cn, company_type ct, kind_type kt
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.role_id = rt.id
AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND t.kind_id = kt.id
AND rt.role IN ('composer', 'editor') AND cn.country_code = '[fr]'
AND ct.kind = 'distributors' AND kt.kind IN ('movie', 'video movie')
AND t.production_year BETWEEN 1975 AND 2010;

-- c11a
SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k, movie_info mi,
info_type it1, movie_info_idx midx, info_type it2, kind_type kt
WHERE mk.movie_id = t.id AND mk.keyword_id = k.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id AND midx.movie_id = t.id
AND midx.info_type_id = it2.id AND t.kind_id = kt.id
AND k.keyword = 'kw_7' AND it1.info = 'genres' AND mi.info = 'sci-fi'
AND it2.info = 'rating' AND midx.info LIKE 'rating_%' AND kt.kind = 'movie';

-- c11b
SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k, movie_info mi,
info_type it1, movie_info_idx midx, info_type it2, kind_type kt
WHERE mk.movie_id = t.id AND mk.keyword_id = k.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id AND midx.movie_id = t.id
AND midx.info_type_id = it2.id AND t.kind_id = kt.id
AND k.keyword LIKE 'kw_3%' AND it1.info = 'genres'
AND mi.info IN ('fantasy', 'animation') AND it2.info = 'votes'
AND midx.info = 'votes_11' AND kt.kind IN ('movie', 'episode');

-- c12a
SELECT COUNT(*) FROM title t, cast_info ci, name n, person_info pi1,
info_type it1, movie_info mi, info_type it2, role_type rt
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND pi1.person_id = n.id
AND pi1.info_type_id = it1.id AND mi.movie_id = t.id
AND mi.info_type_id = it2.id AND ci.role_id = rt.id
AND it1.info = 'mini biography' AND it2.info = 'genres'
AND mi.info = 'biography' AND rt.role = 'actor'
AND t.production_year > 1990;

-- c12b
SELECT COUNT(*) FROM title t, cast_info ci, name n, person_info pi1,
info_type it1, movie_info mi, info_type it2, role_type rt
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND pi1.person_id = n.id
AND pi1.info_type_id = it1.id AND mi.movie_id = t.id
AND mi.info_type_id = it2.id AND ci.role_id = rt.id
AND it1.info = 'birth date' AND pi1.info = 'born_2'
AND it2.info = 'genres' AND mi.info IN ('war', 'history')
AND rt.role IN ('actor', 'actress');

-- c13a
SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn,
company_type ct, movie_info mi, info_type it1, movie_info_idx midx,
info_type it2, kind_type kt
WHERE mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id AND midx.movie_id = t.id
AND midx.info_type_id = it2.id AND t.kind_id = kt.id
AND cn.country_code = '[us]' AND ct.kind = 'production companies'
AND it1.info = 'genres' AND mi.info = 'drama' AND it2.info = 'rating'
AND midx.info IN ('rating_7', 'rating_8', 'rating_9')
AND kt.kind = 'movie' AND t.production_year > 2000;

-- c13b
SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn,
company_type ct, movie_info mi, info_type it1, movie_info_idx midx,
info_type it2, kind_type kt
WHERE mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id AND midx.movie_id = t.id
AND midx.info_type_id = it2.id AND t.kind_id = kt.id
AND cn.country_code IN ('[gb]', '[ca]', '[au]') AND ct.kind = 'distributors'
AND it1.info = 'languages' AND it2.info = 'votes'
AND midx.info LIKE 'votes_%' AND kt.kind IN ('movie', 'tv movie')
AND t.production_year BETWEEN 1985 AND 2015;

-- c14a
SELECT COUNT(*) FROM title t, cast_info ci, name n, char_name chn,
role_type rt, movie_keyword mk, keyword k, kind_type kt, movie_info mi
WHERE ci.movie_id = t.id AND ci.person_id = n.id
AND ci.person_role_id = chn.id AND ci.role_id = rt.id
AND mk.movie_id = t.id AND mk.keyword_id = k.id AND t.kind_id = kt.id
AND mi.movie_id = t.id
AND rt.role = 'actress' AND k.keyword LIKE 'kw_5%'
AND kt.kind = 'movie' AND mi.info_type_id = 1
AND t.production_year > 1995;

-- c14b
SELECT COUNT(*) FROM title t, cast_info ci, name n, char_name chn,
role_type rt, movie_keyword mk, keyword k, kind_type kt, movie_info mi
WHERE ci.movie_id = t.id AND ci.person_id = n.id
AND ci.person_role_id = chn.id AND ci.role_id = rt.id
AND mk.movie_id = t.id AND mk.keyword_id = k.id AND t.kind_id = kt.id
AND mi.movie_id = t.id
AND rt.role = 'actor' AND ci.note IS NULL AND k.phonetic_code = 'pc_2'
AND kt.kind IN ('movie', 'episode') AND mi.info_type_id = 2
AND t.production_year BETWEEN 1990 AND 2010;

-- c15a
SELECT COUNT(*) FROM title t, complete_cast cc, comp_cast_type cct1,
comp_cast_type cct2, movie_companies mc, company_name cn, company_type ct,
movie_info mi, info_type it1
WHERE cc.movie_id = t.id AND cc.subject_id = cct1.id
AND cc.status_id = cct2.id AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id
AND cct1.kind = 'cast' AND cct2.kind = 'complete'
AND cn.country_code = '[us]' AND ct.kind = 'production companies'
AND it1.info = 'genres' AND mi.info = 'action';

-- c15b
SELECT COUNT(*) FROM title t, complete_cast cc, comp_cast_type cct1,
comp_cast_type cct2, movie_companies mc, company_name cn, company_type ct,
movie_info mi, info_type it1
WHERE cc.movie_id = t.id AND cc.subject_id = cct1.id
AND cc.status_id = cct2.id AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id
AND cct1.kind IN ('cast', 'crew') AND cct2.kind = 'complete+verified'
AND cn.country_code IN ('[de]', '[nl]') AND ct.kind = 'distributors'
AND it1.info = 'countries';

-- c16a
SELECT COUNT(*) FROM title t, movie_link ml, title t2, link_type lt1,
movie_companies mc, company_name cn, company_type ct, kind_type kt,
movie_info mi
WHERE ml.movie_id = t.id AND ml.linked_movie_id = t2.id
AND ml.link_type_id = lt1.id AND mc.movie_id = t.id
AND mc.company_id = cn.id AND mc.company_type_id = ct.id
AND t.kind_id = kt.id AND mi.movie_id = t2.id
AND lt1.link = 'features' AND cn.country_code = '[us]'
AND ct.kind = 'production companies' AND kt.kind = 'movie'
AND mi.info_type_id = 1 AND t2.production_year > 1990;

-- c16b
SELECT COUNT(*) FROM title t, movie_link ml, title t2, link_type lt1,
movie_companies mc, company_name cn, company_type ct, kind_type kt,
movie_info mi
WHERE ml.movie_id = t.id AND ml.linked_movie_id = t2.id
AND ml.link_type_id = lt1.id AND mc.movie_id = t.id
AND mc.company_id = cn.id AND mc.company_type_id = ct.id
AND t.kind_id = kt.id AND mi.movie_id = t2.id
AND lt1.link IN ('spin off', 'spin off from', 'followed by', 'follows')
AND cn.country_code IN ('[gb]', '[us]')
AND ct.kind IN ('production companies', 'distributors')
AND kt.kind IN ('tv series', 'movie') AND mi.info_type_id IN (1, 2, 3)
AND t2.production_year BETWEEN 1960 AND 2015;

-- c17a
SELECT COUNT(*) FROM title t, cast_info ci, name n, role_type rt,
movie_info mi, info_type it1, movie_info_idx midx, info_type it2,
movie_keyword mk, keyword k
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.role_id = rt.id
AND mi.movie_id = t.id AND mi.info_type_id = it1.id
AND midx.movie_id = t.id AND midx.info_type_id = it2.id
AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND rt.role = 'director' AND it1.info = 'genres' AND mi.info = 'thriller'
AND it2.info = 'rating' AND midx.info IN ('rating_8', 'rating_9')
AND k.keyword LIKE 'kw_1%' AND t.production_year > 2000;

-- c17b
SELECT COUNT(*) FROM title t, cast_info ci, name n, role_type rt,
movie_info mi, info_type it1, movie_info_idx midx, info_type it2,
movie_keyword mk, keyword k
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.role_id = rt.id
AND mi.movie_id = t.id AND mi.info_type_id = it1.id
AND midx.movie_id = t.id AND midx.info_type_id = it2.id
AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND rt.role IN ('actor', 'actress') AND n.gender IS NOT NULL
AND it1.info = 'genres' AND mi.info = 'crime' AND it2.info = 'votes'
AND midx.info LIKE 'votes_1%' AND k.phonetic_code = 'pc_5'
AND t.production_year BETWEEN 1990 AND 2015;

-- c18a
SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn,
company_type ct, cast_info ci, name n, role_type rt, char_name chn,
kind_type kt, movie_info mi
WHERE mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND ci.movie_id = t.id
AND ci.person_id = n.id AND ci.role_id = rt.id
AND ci.person_role_id = chn.id AND t.kind_id = kt.id AND mi.movie_id = t.id
AND cn.country_code = '[us]' AND ct.kind = 'production companies'
AND rt.role = 'actor' AND kt.kind = 'movie' AND mi.info_type_id = 1
AND t.production_year > 2008;

-- c18b
SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn,
company_type ct, cast_info ci, name n, role_type rt, char_name chn,
kind_type kt, movie_info mi
WHERE mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND ci.movie_id = t.id
AND ci.person_id = n.id AND ci.role_id = rt.id
AND ci.person_role_id = chn.id AND t.kind_id = kt.id AND mi.movie_id = t.id
AND cn.country_code IN ('[jp]', '[kr]', '[cn]') AND ct.kind = 'distributors'
AND rt.role = 'actress' AND n.gender = 'f' AND kt.kind IN ('movie', 'episode')
AND mi.info_type_id = 4 AND t.production_year BETWEEN 1995 AND 2020;

-- c19a
SELECT COUNT(*) FROM title t, complete_cast cc, comp_cast_type cct1,
comp_cast_type cct2, cast_info ci, name n, role_type rt, movie_keyword mk,
keyword k, kind_type kt
WHERE cc.movie_id = t.id AND cc.subject_id = cct1.id
AND cc.status_id = cct2.id AND ci.movie_id = t.id AND ci.person_id = n.id
AND ci.role_id = rt.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND t.kind_id = kt.id
AND cct1.kind = 'cast' AND cct2.kind = 'complete' AND rt.role = 'writer'
AND k.keyword LIKE 'kw_4%' AND kt.kind = 'movie'
AND t.production_year > 1985;

-- c19b
SELECT COUNT(*) FROM title t, complete_cast cc, comp_cast_type cct1,
comp_cast_type cct2, cast_info ci, name n, role_type rt, movie_keyword mk,
keyword k, kind_type kt
WHERE cc.movie_id = t.id AND cc.subject_id = cct1.id
AND cc.status_id = cct2.id AND ci.movie_id = t.id AND ci.person_id = n.id
AND ci.role_id = rt.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND t.kind_id = kt.id
AND cct1.kind = 'crew' AND cct2.kind IN ('complete', 'complete+verified')
AND rt.role = 'cinematographer' AND ci.note IS NOT NULL
AND k.phonetic_code IN ('pc_0', 'pc_4') AND kt.kind IN ('movie', 'tv movie');

-- c20a
SELECT COUNT(*) FROM title t, movie_link ml, title t2, link_type lt1,
movie_info mi, info_type it1, movie_keyword mk, keyword k,
movie_companies mc, company_name cn
WHERE ml.movie_id = t.id AND ml.linked_movie_id = t2.id
AND ml.link_type_id = lt1.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id AND mk.movie_id = t2.id
AND mk.keyword_id = k.id AND mc.movie_id = t.id AND mc.company_id = cn.id
AND lt1.link IN ('references', 'referenced in') AND it1.info = 'genres'
AND mi.info = 'drama' AND k.keyword LIKE 'kw_2%'
AND cn.country_code = '[us]' AND t.production_year > 1995;

-- c20b
SELECT COUNT(*) FROM title t, movie_link ml, title t2, link_type lt1,
movie_info mi, info_type it1, movie_keyword mk, keyword k,
movie_companies mc, company_name cn
WHERE ml.movie_id = t.id AND ml.linked_movie_id = t2.id
AND ml.link_type_id = lt1.id AND mi.movie_id = t.id
AND mi.info_type_id = it1.id AND mk.movie_id = t2.id
AND mk.keyword_id = k.id AND mc.movie_id = t.id AND mc.company_id = cn.id
AND lt1.link IN ('version of', 'similar to') AND it1.info = 'countries'
AND k.keyword LIKE 'kw_%' AND cn.country_code IN ('[us]', '[fr]', '[es]')
AND t.production_year BETWEEN 1960 AND 2015;

-- c21a
SELECT COUNT(*) FROM title t, aka_title akt, kind_type kt, movie_keyword mk,
keyword k, movie_info mi, info_type it1
WHERE akt.movie_id = t.id AND t.kind_id = kt.id AND mk.movie_id = t.id
AND mk.keyword_id = k.id AND mi.movie_id = t.id AND mi.info_type_id = it1.id
AND kt.kind = 'movie' AND akt.kind_id = 1 AND k.keyword LIKE 'kw_6%'
AND it1.info = 'genres' AND mi.info = 'romance'
AND t.production_year > 1990;

-- c21b
SELECT COUNT(*) FROM title t, aka_title akt, kind_type kt, movie_keyword mk,
keyword k, movie_info mi, info_type it1
WHERE akt.movie_id = t.id AND t.kind_id = kt.id AND mk.movie_id = t.id
AND mk.keyword_id = k.id AND mi.movie_id = t.id AND mi.info_type_id = it1.id
AND kt.kind = 'episode' AND akt.kind_id = 2 AND k.phonetic_code = 'pc_1'
AND it1.info = 'genres' AND mi.info IN ('family', 'animation')
AND t.production_year BETWEEN 1995 AND 2020;

-- c22a
SELECT COUNT(*) FROM name n, cast_info ci, title t, role_type rt,
person_info pi1, info_type it1, aka_name an, kind_type kt
WHERE ci.person_id = n.id AND ci.movie_id = t.id AND ci.role_id = rt.id
AND pi1.person_id = n.id AND pi1.info_type_id = it1.id
AND an.person_id = n.id AND t.kind_id = kt.id
AND rt.role = 'actor' AND it1.info = 'birth date'
AND pi1.info LIKE 'born_%' AND kt.kind = 'movie'
AND t.production_year > 2000;

-- c22b
SELECT COUNT(*) FROM name n, cast_info ci, title t, role_type rt,
person_info pi1, info_type it1, aka_name an, kind_type kt
WHERE ci.person_id = n.id AND ci.movie_id = t.id AND ci.role_id = rt.id
AND pi1.person_id = n.id AND pi1.info_type_id = it1.id
AND an.person_id = n.id AND t.kind_id = kt.id
AND rt.role = 'actress' AND n.name LIKE 'person_1%'
AND it1.info = 'mini biography' AND kt.kind IN ('movie', 'tv series')
AND t.production_year BETWEEN 1980 AND 2010;

-- c23a
SELECT COUNT(*) FROM title t, movie_info mi1, movie_info mi2,
info_type it1, info_type it2, kind_type kt
WHERE mi1.movie_id = t.id AND mi2.movie_id = t.id
AND mi1.info_type_id = it1.id AND mi2.info_type_id = it2.id
AND t.kind_id = kt.id
AND it1.info = 'genres' AND mi1.info = 'drama'
AND it2.info = 'countries' AND mi2.info = 'country_0'
AND kt.kind = 'movie' AND t.production_year > 1995;

-- c23b
SELECT COUNT(*) FROM title t, movie_info mi1, movie_info mi2,
info_type it1, info_type it2, kind_type kt
WHERE mi1.movie_id = t.id AND mi2.movie_id = t.id
AND mi1.info_type_id = it1.id AND mi2.info_type_id = it2.id
AND t.kind_id = kt.id
AND it1.info = 'genres' AND mi1.info IN ('comedy', 'romance')
AND it2.info = 'languages' AND mi2.info = 'lang_0'
AND kt.kind IN ('movie', 'tv movie')
AND t.production_year BETWEEN 1985 AND 2015;

-- c24a
SELECT COUNT(*) FROM title t, cast_info ci1, cast_info ci2, name n1,
name n2, role_type rt1, role_type rt2
WHERE ci1.movie_id = t.id AND ci2.movie_id = t.id
AND ci1.person_id = n1.id AND ci2.person_id = n2.id
AND ci1.role_id = rt1.id AND ci2.role_id = rt2.id
AND rt1.role = 'actor' AND rt2.role = 'director'
AND n1.gender = 'm' AND t.production_year > 2005;

-- c24b
SELECT COUNT(*) FROM title t, cast_info ci1, cast_info ci2, name n1,
name n2, role_type rt1, role_type rt2
WHERE ci1.movie_id = t.id AND ci2.movie_id = t.id
AND ci1.person_id = n1.id AND ci2.person_id = n2.id
AND ci1.role_id = rt1.id AND ci2.role_id = rt2.id
AND rt1.role = 'actress' AND rt2.role = 'producer'
AND n1.gender = 'f' AND n2.name_pcode_cf LIKE 'np_1%'
AND t.production_year BETWEEN 1990 AND 2015;

-- c25a
SELECT COUNT(*) FROM title t, cast_info ci1, cast_info ci2, name n1,
name n2, role_type rt1, role_type rt2, movie_companies mc, company_name cn,
company_type ct, kind_type kt
WHERE ci1.movie_id = t.id AND ci2.movie_id = t.id
AND ci1.person_id = n1.id AND ci2.person_id = n2.id
AND ci1.role_id = rt1.id AND ci2.role_id = rt2.id
AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND t.kind_id = kt.id
AND rt1.role = 'actor' AND rt2.role = 'actress'
AND cn.country_code = '[us]' AND ct.kind = 'production companies'
AND kt.kind = 'movie' AND t.production_year > 2000;

-- c25b
SELECT COUNT(*) FROM title t, cast_info ci1, cast_info ci2, name n1,
name n2, role_type rt1, role_type rt2, movie_companies mc, company_name cn,
company_type ct, kind_type kt
WHERE ci1.movie_id = t.id AND ci2.movie_id = t.id
AND ci1.person_id = n1.id AND ci2.person_id = n2.id
AND ci1.role_id = rt1.id AND ci2.role_id = rt2.id
AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND t.kind_id = kt.id
AND rt1.role = 'director' AND rt2.role = 'writer'
AND cn.country_code IN ('[gb]', '[ie]') AND ct.kind = 'distributors'
AND kt.kind IN ('movie', 'tv movie')
AND t.production_year BETWEEN 1980 AND 2012;

-- c26a
SELECT COUNT(*) FROM title t, movie_keyword mk1, movie_keyword mk2,
keyword k1, keyword k2, movie_info mi, info_type it1, kind_type kt
WHERE mk1.movie_id = t.id AND mk2.movie_id = t.id
AND mk1.keyword_id = k1.id AND mk2.keyword_id = k2.id
AND mi.movie_id = t.id AND mi.info_type_id = it1.id AND t.kind_id = kt.id
AND k1.keyword = 'kw_0' AND k2.keyword LIKE 'kw_1%'
AND it1.info = 'genres' AND mi.info = 'action' AND kt.kind = 'movie';

-- c26b
SELECT COUNT(*) FROM title t, movie_keyword mk1, movie_keyword mk2,
keyword k1, keyword k2, movie_info mi, info_type it1, kind_type kt
WHERE mk1.movie_id = t.id AND mk2.movie_id = t.id
AND mk1.keyword_id = k1.id AND mk2.keyword_id = k2.id
AND mi.movie_id = t.id AND mi.info_type_id = it1.id AND t.kind_id = kt.id
AND k1.keyword = 'kw_1' AND k2.phonetic_code IN ('pc_2', 'pc_3')
AND it1.info = 'genres' AND mi.info IN ('adventure', 'thriller')
AND kt.kind IN ('movie', 'episode');

-- c27a
SELECT COUNT(*) FROM title t, movie_info_idx midx1, movie_info_idx midx2,
movie_info mi, movie_keyword mk, keyword k, kind_type kt
WHERE midx1.movie_id = t.id AND midx2.movie_id = t.id
AND mi.movie_id = t.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND t.kind_id = kt.id
AND midx1.info_type_id = 99 AND midx1.info IN ('rating_8', 'rating_9')
AND midx2.info_type_id = 100 AND midx2.info LIKE 'votes_1%'
AND mi.info_type_id = 1 AND k.keyword LIKE 'kw_8%' AND kt.kind = 'movie';

-- c27b
SELECT COUNT(*) FROM title t, movie_info_idx midx1, movie_info_idx midx2,
movie_info mi, movie_keyword mk, keyword k, kind_type kt
WHERE midx1.movie_id = t.id AND midx2.movie_id = t.id
AND mi.movie_id = t.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
AND t.kind_id = kt.id
AND midx1.info_type_id = 99 AND midx1.info = 'rating_9'
AND midx2.info_type_id = 101 AND mi.info_type_id = 1
AND k.phonetic_code = 'pc_6' AND kt.kind IN ('movie', 'tv movie');

-- c28a
SELECT COUNT(*) FROM title t, movie_link ml, title t2, movie_keyword mk1,
movie_keyword mk2, keyword k1, keyword k2, link_type lt1, kind_type kt
WHERE ml.movie_id = t.id AND ml.linked_movie_id = t2.id
AND mk1.movie_id = t.id AND mk2.movie_id = t2.id
AND mk1.keyword_id = k1.id AND mk2.keyword_id = k2.id
AND ml.link_type_id = lt1.id AND t.kind_id = kt.id
AND k1.keyword LIKE 'kw_1%' AND k2.keyword LIKE 'kw_2%'
AND lt1.link = 'follows' AND kt.kind = 'movie'
AND t2.production_year > 1995;

-- c28b
SELECT COUNT(*) FROM title t, movie_link ml, title t2, movie_keyword mk1,
movie_keyword mk2, keyword k1, keyword k2, link_type lt1, kind_type kt
WHERE ml.movie_id = t.id AND ml.linked_movie_id = t2.id
AND mk1.movie_id = t.id AND mk2.movie_id = t2.id
AND mk1.keyword_id = k1.id AND mk2.keyword_id = k2.id
AND ml.link_type_id = lt1.id AND t.kind_id = kt.id
AND k1.keyword LIKE 'kw_%' AND k2.phonetic_code LIKE 'pc_1%'
AND lt1.link IN ('edited into', 'edited from') AND kt.kind IN ('movie', 'episode')
AND t2.production_year BETWEEN 1960 AND 2015;

-- c29a
SELECT COUNT(*) FROM title t, cast_info ci, name n, role_type rt,
char_name chn, person_info pi1, movie_companies mc, company_name cn,
company_type ct, movie_info mi, movie_info_idx midx
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.role_id = rt.id
AND ci.person_role_id = chn.id AND pi1.person_id = n.id
AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mi.movie_id = t.id
AND midx.movie_id = t.id
AND rt.role = 'actor' AND pi1.info_type_id = 21
AND cn.country_code = '[us]' AND ct.kind = 'production companies'
AND mi.info_type_id = 1 AND midx.info_type_id = 99
AND midx.info LIKE 'rating_%' AND t.production_year > 2000;

-- c29b
SELECT COUNT(*) FROM title t, cast_info ci, name n, role_type rt,
char_name chn, person_info pi1, movie_companies mc, company_name cn,
company_type ct, movie_info mi, movie_info_idx midx
WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.role_id = rt.id
AND ci.person_role_id = chn.id AND pi1.person_id = n.id
AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mi.movie_id = t.id
AND midx.movie_id = t.id
AND rt.role = 'actress' AND n.gender = 'f' AND pi1.info_type_id = 23
AND cn.country_code IN ('[fr]', '[de]', '[it]') AND ct.kind = 'distributors'
AND mi.info_type_id = 1 AND midx.info_type_id = 100
AND midx.info = 'votes_10' AND t.production_year BETWEEN 1985 AND 2015;

-- c30a
SELECT COUNT(*) FROM title t, kind_type kt, cast_info ci, name n,
role_type rt, movie_companies mc, company_name cn, company_type ct,
movie_keyword mk, keyword k, movie_info mi, movie_info_idx midx
WHERE t.kind_id = kt.id AND ci.movie_id = t.id AND ci.person_id = n.id
AND ci.role_id = rt.id AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mk.movie_id = t.id
AND mk.keyword_id = k.id AND mi.movie_id = t.id AND midx.movie_id = t.id
AND kt.kind = 'movie' AND rt.role = 'actor'
AND cn.country_code = '[us]' AND ct.kind = 'production companies'
AND k.keyword LIKE 'kw_1%' AND mi.info_type_id = 1
AND midx.info_type_id = 99 AND midx.info IN ('rating_8', 'rating_9')
AND t.production_year > 2005;

-- c30b
SELECT COUNT(*) FROM title t, kind_type kt, cast_info ci, name n,
role_type rt, movie_companies mc, company_name cn, company_type ct,
movie_keyword mk, keyword k, movie_info mi, movie_info_idx midx
WHERE t.kind_id = kt.id AND ci.movie_id = t.id AND ci.person_id = n.id
AND ci.role_id = rt.id AND mc.movie_id = t.id AND mc.company_id = cn.id
AND mc.company_type_id = ct.id AND mk.movie_id = t.id
AND mk.keyword_id = k.id AND mi.movie_id = t.id AND midx.movie_id = t.id
AND kt.kind IN ('movie', 'tv movie') AND rt.role IN ('director', 'producer')
AND cn.country_code IN ('[gb]', '[ca]') AND ct.kind = 'distributors'
AND k.phonetic_code = 'pc_7' AND mi.info_type_id = 2
AND midx.info_type_id = 100 AND midx.info LIKE 'votes_%'
AND t.production_year BETWEEN 1990 AND 2018;
